//! Property-based integration tests: randomized point sets and join
//! parameters, with brute force as the oracle.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj::all_algorithms;
use hdsj::bruteforce::BruteForce;
use hdsj::core::{verify, Dataset, JoinSpec, Metric, SimilarityJoin, VecSink};
use proptest::prelude::*;

/// A random dataset: dims in 1..=8, up to 120 points in [0,1).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=8).prop_flat_map(|dims| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, dims), 0..120)
            .prop_map(move |rows| {
                let clamped: Vec<Vec<f64>> = rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|v| v.min(1.0 - 1e-12)).collect())
                    .collect();
                if clamped.is_empty() {
                    Dataset::new(dims).unwrap()
                } else {
                    Dataset::from_rows(&clamped).unwrap()
                }
            })
    })
}

fn metric_strategy() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::L1),
        Just(Metric::L2),
        Just(Metric::Linf),
        (1.5f64..4.0).prop_map(Metric::Lp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_matches_brute_force(
        ds in dataset_strategy(),
        eps in 0.01f64..0.6,
        metric in metric_strategy(),
    ) {
        let spec = JoinSpec::new(eps, metric);
        let mut want = VecSink::default();
        BruteForce::default().self_join(&ds, &spec, &mut want).unwrap();
        for mut algo in all_algorithms() {
            let mut got = VecSink::default();
            match algo.self_join(&ds, &spec, &mut got) {
                Ok(_) => verify::assert_same_results(algo.name(), &want.pairs, &got.pairs),
                Err(hdsj::core::Error::Unsupported(_)) => {}
                Err(e) => panic!("{}: {e}", algo.name()),
            }
        }
    }

    #[test]
    fn two_set_join_matches_brute_force(
        a in dataset_strategy(),
        eps in 0.05f64..0.5,
    ) {
        // Second dataset with the same dims, fixed contents derived from a.
        let dims = a.dims();
        let b = hdsj::data::uniform(dims, 60, dims as u64 + 99).unwrap();
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut want = VecSink::default();
        BruteForce::default().join(&a, &b, &spec, &mut want).unwrap();
        for mut algo in all_algorithms() {
            let mut got = VecSink::default();
            match algo.join(&a, &b, &spec, &mut got) {
                Ok(_) => verify::assert_same_results(algo.name(), &want.pairs, &got.pairs),
                Err(hdsj::core::Error::Unsupported(_)) => {}
                Err(e) => panic!("{}: {e}", algo.name()),
            }
        }
    }

    #[test]
    fn self_join_pairs_are_canonical_and_unique(
        ds in dataset_strategy(),
        eps in 0.05f64..0.5,
    ) {
        for mut algo in all_algorithms() {
            let mut got = VecSink::default();
            if algo.self_join(&ds, &JoinSpec::l2(eps), &mut got).is_err() {
                continue;
            }
            let mut seen = std::collections::HashSet::new();
            for &(i, j) in &got.pairs {
                prop_assert!(i < j, "{}: pair ({i},{j}) not canonical", algo.name());
                prop_assert!(seen.insert((i, j)), "{}: duplicate ({i},{j})", algo.name());
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results(
        ds in dataset_strategy(),
        eps in 0.05f64..0.5,
        threads in 2usize..=8,
    ) {
        // `set_threads` is part of the SimilarityJoin contract: every
        // algorithm (parallel or not) must return the same result set at
        // every thread count. Exercised across all algorithms, with the
        // parallel ones (BF, MSJ) taking their worker-pool paths — and
        // swept across every SIMD dispatch tier the host supports, so
        // results provably depend on neither the worker count nor the
        // kernel tier (the serial-scalar run is the single baseline).
        use hdsj::core::simd;
        let spec = JoinSpec::l2(eps);
        let saved = simd::level();
        for (mut serial, parallel_name) in all_algorithms()
            .into_iter()
            .zip(all_algorithms().iter().map(|a| a.name().to_string()))
        {
            simd::set_level(simd::Level::Scalar);
            serial.set_threads(1);
            let mut want = VecSink::default();
            match serial.self_join(&ds, &spec, &mut want) {
                Ok(_) => {}
                Err(_) => continue,
            }
            for tier in simd::supported() {
                simd::set_level(tier);
                let mut parallel = all_algorithms()
                    .into_iter()
                    .find(|a| a.name() == parallel_name)
                    .unwrap();
                parallel.set_threads(threads);
                let mut got = VecSink::default();
                parallel.self_join(&ds, &spec, &mut got).unwrap();
                verify::assert_same_results(parallel.name(), &want.pairs, &got.pairs);
            }
        }
        simd::set_level(saved);
    }

    #[test]
    fn candidates_bound_results_and_dist_evals(
        ds in dataset_strategy(),
        eps in 0.05f64..0.5,
    ) {
        for mut algo in all_algorithms() {
            let mut got = VecSink::default();
            let stats = match algo.self_join(&ds, &JoinSpec::l2(eps), &mut got) {
                Ok(s) => s,
                Err(_) => continue,
            };
            prop_assert!(stats.results <= stats.candidates, "{}", algo.name());
            prop_assert!(stats.results <= stats.dist_evals, "{}", algo.name());
            prop_assert_eq!(stats.results as usize, got.pairs.len());
        }
    }
}

//! Kill-and-restart chaos harness: real `hdsj` child processes are killed
//! mid-join — by seeded crash faults (SIGABRT at a named checkpoint) and
//! by a bare SIGKILL — then resumed from their manifest, and the resumed
//! output must be byte-identical to an uninterrupted run.
//!
//! This is the cross-process end of the recovery test pyramid: the
//! in-process halt-injection property tests (`hdsj-storage::sort`,
//! `hdsj-msj`) cover many more crash points and seeds cheaply; this file
//! proves the same guarantees survive an actual process death, where no
//! destructor runs and the manifest tail may be torn.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn hdsj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdsj"))
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdsj-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(csv: &Path, n: usize, seed: u64) {
    let out = hdsj()
        .args(["generate", "--kind", "uniform", "--dims", "8"])
        .args(["--n", &n.to_string(), "--seed", &seed.to_string()])
        .args(["--out", csv.to_str().unwrap()])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One `hdsj join --algo msj` invocation; `resume` checkpoints to that
/// manifest, `faults` arms the crash plan. Returns the raw process output.
fn join(
    csv: &Path,
    out: &Path,
    resume: Option<&Path>,
    faults: Option<&str>,
) -> std::process::Output {
    let mut cmd = hdsj();
    cmd.args(["join", "--algo", "msj", "--eps", "0.25", "--quiet"])
        .args(["--input", csv.to_str().unwrap()])
        .args(["--out", out.to_str().unwrap()])
        .args(["--pool-pages", "128"])
        // Force multi-run external sorts so run/merge checkpoints fire
        // several times even on a 6k-record input.
        .args(["--sort-mem-records", "1000"]);
    if let Some(manifest) = resume {
        cmd.args(["--resume", manifest.to_str().unwrap()]);
    }
    if let Some(spec) = faults {
        cmd.args(["--inject-faults", spec]);
    }
    cmd.output().expect("join")
}

fn assert_completed(out: &std::process::Output) {
    assert!(
        out.status.success(),
        "join failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The crashed child must die from the abort, not exit cleanly.
fn assert_died(out: &std::process::Output, what: &str) {
    assert!(
        !out.status.success(),
        "{what}: expected the child to die, but it completed"
    );
    assert_ne!(out.status.code(), Some(0), "{what}");
}

/// Crash a child at each durable checkpoint in turn, resume, and require
/// the resumed pair file to match an uninterrupted run byte for byte.
#[test]
fn crash_at_every_checkpoint_then_resume_is_byte_identical() {
    let dir = work_dir("points");
    let csv = dir.join("pts.csv");
    generate(&csv, 6000, 5);

    let fresh = dir.join("fresh.csv");
    assert_completed(&join(&csv, &fresh, None, None));
    let fresh_bytes = std::fs::read(&fresh).unwrap();
    assert!(!fresh_bytes.is_empty(), "fresh run found no pairs");

    for (i, point) in [
        "msj.assign_sealed@1",
        "sort.run_sealed@1",
        "sort.run_sealed@3",
        "sort.merge_sealed@1",
        "msj.sort_sealed@1",
    ]
    .iter()
    .enumerate()
    {
        let manifest = dir.join(format!("crash{i}.manifest"));
        let out_path = dir.join(format!("crash{i}.csv"));
        let crashed = join(
            &csv,
            &out_path,
            Some(&manifest),
            Some(&format!("crash={point}")),
        );
        assert_died(&crashed, point);
        assert!(
            manifest.exists(),
            "{point}: crash fired before the manifest was created"
        );

        let resumed = join(&csv, &out_path, Some(&manifest), None);
        assert_completed(&resumed);
        assert_eq!(
            std::fs::read(&out_path).unwrap(),
            fresh_bytes,
            "{point}: resumed output differs from the uninterrupted run"
        );
    }
}

/// Repeated crashes — each resume dies at the next checkpoint of the same
/// name — must still converge to the uninterrupted result.
#[test]
fn repeated_crashes_converge() {
    let dir = work_dir("repeat");
    let csv = dir.join("pts.csv");
    generate(&csv, 6000, 7);

    let fresh = dir.join("fresh.csv");
    assert_completed(&join(&csv, &fresh, None, None));

    let manifest = dir.join("join.manifest");
    let out_path = dir.join("resumed.csv");
    let mut deaths = 0;
    for attempt in 0..10 {
        let out = join(
            &csv,
            &out_path,
            Some(&manifest),
            Some("crash=sort.run_sealed@1"),
        );
        if out.status.success() {
            // All runs were already sealed; the crash point never fired.
            assert!(attempt > 0, "first attempt cannot have every run sealed");
            break;
        }
        deaths += 1;
        assert!(attempt < 9, "join never converged after {deaths} crashes");
    }
    assert!(deaths >= 2, "expected several crashes, got {deaths}");
    assert_eq!(
        std::fs::read(&out_path).unwrap(),
        std::fs::read(&fresh).unwrap(),
        "converged output differs from the uninterrupted run"
    );
}

/// A bare SIGKILL — no abort handler, no destructors, mid-write tail —
/// is recovered by manifest replay exactly like a seeded crash.
#[test]
fn sigkill_mid_join_then_resume_is_byte_identical() {
    let dir = work_dir("sigkill");
    let csv = dir.join("pts.csv");
    // Large enough that the child is reliably still joining when killed.
    generate(&csv, 20_000, 11);

    let fresh = dir.join("fresh.csv");
    assert_completed(&join(&csv, &fresh, None, None));

    let manifest = dir.join("join.manifest");
    let out_path = dir.join("resumed.csv");
    let mut child = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.25", "--quiet"])
        .args(["--input", csv.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap()])
        .args(["--pool-pages", "128"])
        .args(["--sort-mem-records", "1000"])
        .args(["--resume", manifest.to_str().unwrap()])
        .spawn()
        .expect("spawn join");
    std::thread::sleep(std::time::Duration::from_millis(150));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    let resumed = join(&csv, &out_path, Some(&manifest), None);
    assert_completed(&resumed);
    assert_eq!(
        std::fs::read(&out_path).unwrap(),
        std::fs::read(&fresh).unwrap(),
        "post-SIGKILL resume differs from the uninterrupted run"
    );

    // The manifest + page file stay mutually consistent after success: a
    // further resumed run replays them cleanly and agrees again.
    let again = join(&csv, &out_path, Some(&manifest), None);
    assert_completed(&again);
    assert_eq!(
        std::fs::read(&out_path).unwrap(),
        std::fs::read(&fresh).unwrap()
    );
}

/// A manifest written for one query must refuse to resume a different one
/// instead of silently mixing checkpoints.
#[test]
fn resume_with_changed_parameters_is_rejected() {
    let dir = work_dir("fingerprint");
    let csv = dir.join("pts.csv");
    generate(&csv, 2000, 3);

    let manifest = dir.join("join.manifest");
    let out_path = dir.join("out.csv");
    assert_completed(&join(&csv, &out_path, Some(&manifest), None));

    let mut cmd = hdsj();
    cmd.args(["join", "--algo", "msj", "--eps", "0.30", "--quiet"])
        .args(["--input", csv.to_str().unwrap()])
        .args(["--resume", manifest.to_str().unwrap()]);
    let out = cmd.output().expect("join");
    assert_eq!(
        out.status.code(),
        Some(2),
        "fingerprint mismatch is InvalidInput"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different join"), "{stderr}");
}

//! Storage-stack integration: disk-based joins on file-backed engines,
//! pool-size independence of results, and failure injection end to end.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj::core::{verify, CountSink, JoinSpec, Metric, SimilarityJoin, VecSink};
use hdsj::data::uniform;
use hdsj::msj::Msj;
use hdsj::rtree::RsjJoin;
use hdsj::storage::StorageEngine;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hdsj-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn file_backed_msj_matches_in_memory() {
    let ds = uniform(6, 2_000, 77).unwrap();
    let spec = JoinSpec::new(0.15, Metric::L2);

    let mut mem_sink = VecSink::default();
    Msj::default().self_join(&ds, &spec, &mut mem_sink).unwrap();

    let dir = temp_dir("msj");
    let engine = StorageEngine::file_backed(&dir.join("pages.db"), 3).unwrap();
    let mut file_sink = VecSink::default();
    let stats = Msj::with_engine(engine)
        .self_join(&ds, &spec, &mut file_sink)
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();

    verify::assert_same_results("MSJ file-backed", &mem_sink.pairs, &file_sink.pairs);
    assert!(
        stats.io.reads > 0,
        "a 3-frame pool over real files must read"
    );
}

#[test]
fn file_backed_rsj_matches_in_memory() {
    let ds = uniform(5, 1_500, 78).unwrap();
    let spec = JoinSpec::new(0.12, Metric::L2);

    let mut mem_sink = VecSink::default();
    RsjJoin::default()
        .self_join(&ds, &spec, &mut mem_sink)
        .unwrap();

    let dir = temp_dir("rsj");
    let engine = StorageEngine::file_backed(&dir.join("pages.db"), 24).unwrap();
    let mut file_sink = VecSink::default();
    RsjJoin::with_engine(engine)
        .self_join(&ds, &spec, &mut file_sink)
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();

    verify::assert_same_results("RSJ file-backed", &mem_sink.pairs, &file_sink.pairs);
}

#[test]
fn pool_size_changes_io_but_never_results() {
    let ds = uniform(8, 3_000, 79).unwrap();
    let spec = JoinSpec::new(0.15, Metric::L2);
    let mut baseline: Option<Vec<(u32, u32)>> = None;
    let mut ios = Vec::new();
    for pool in [4usize, 64, 4096] {
        let engine = StorageEngine::in_memory(pool);
        let mut sink = VecSink::default();
        let stats = Msj::with_engine(engine)
            .self_join(&ds, &spec, &mut sink)
            .unwrap();
        ios.push(stats.io.total());
        match &baseline {
            None => baseline = Some(sink.pairs),
            Some(want) => {
                verify::assert_same_results(&format!("MSJ pool={pool}"), want, &sink.pairs)
            }
        }
    }
    assert!(
        ios.first() > ios.last(),
        "a tiny pool must do more I/O than a huge one: {ios:?}"
    );
}

#[test]
fn fault_injection_aborts_cleanly_everywhere() {
    let ds = uniform(4, 2_000, 80).unwrap();
    let spec = JoinSpec::new(0.1, Metric::L2);
    // Measure how many disk operations a clean run performs, then inject a
    // fault at the first, middle, and last of them; the join must return an
    // error (never panic, never wrong results).
    let engine = StorageEngine::in_memory(16);
    let mut sink = CountSink::default();
    let stats = Msj::with_engine(engine)
        .self_join(&ds, &spec, &mut sink)
        .unwrap();
    let ops = stats.io.reads + stats.io.writes + stats.io.allocs;
    assert!(ops >= 3, "pipeline must touch the disk, got {ops} ops");
    for fault_at in [1u64, ops / 2, ops] {
        let engine = StorageEngine::in_memory(16);
        engine.set_fault_after(Some(fault_at));
        let mut sink = CountSink::default();
        let res = Msj::with_engine(engine).self_join(&ds, &spec, &mut sink);
        assert!(res.is_err(), "fault at op {fault_at}/{ops} must surface");
    }
}

#[test]
fn rsj_fault_injection_aborts_cleanly() {
    let ds = uniform(4, 1_000, 81).unwrap();
    let spec = JoinSpec::new(0.1, Metric::L2);
    let engine = StorageEngine::in_memory(16);
    let mut sink = CountSink::default();
    let stats = RsjJoin::with_engine(engine)
        .self_join(&ds, &spec, &mut sink)
        .unwrap();
    let ops = stats.io.reads + stats.io.writes + stats.io.allocs;
    for fault_at in [1u64, ops / 2, ops] {
        let engine = StorageEngine::in_memory(16);
        engine.set_fault_after(Some(fault_at));
        let mut sink = CountSink::default();
        assert!(RsjJoin::with_engine(engine)
            .self_join(&ds, &spec, &mut sink)
            .is_err());
    }
}

#[test]
fn shared_engine_supports_sequential_joins() {
    // One engine reused across joins (as the buffer-sweep experiment does):
    // results stay correct and counters accumulate monotonically.
    let engine = StorageEngine::in_memory(128);
    let ds = uniform(4, 800, 82).unwrap();
    let spec = JoinSpec::new(0.12, Metric::L2);
    let mut first = VecSink::default();
    Msj::with_engine(engine.clone())
        .self_join(&ds, &spec, &mut first)
        .unwrap();
    let io_after_first = engine.io_counters();
    let mut second = VecSink::default();
    Msj::with_engine(engine.clone())
        .self_join(&ds, &spec, &mut second)
        .unwrap();
    verify::assert_same_results("MSJ shared engine", &first.pairs, &second.pairs);
    assert!(engine.io_counters().allocs >= io_after_first.allocs);
}

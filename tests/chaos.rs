//! Chaos integration suite: every disk-backed join runs under seeded fault
//! schedules, and must either fail with a *typed* storage-family error or
//! produce exactly the fault-free result set. Either way the buffer pool
//! must come back clean: no pinned frames, and (for MSJ, whose temp files
//! own pages) no leaked pages.
//!
//! Seeds are fixed so CI is reproducible; `HDSJ_CHAOS_SEED=n` narrows the
//! sweep to one seed (the CI chaos job fans out over several).
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj::core::{Dataset, Error, JoinSpec, Metric, SimilarityJoin, VecSink};
use hdsj::data::uniform;
use hdsj::msj::Msj;
use hdsj::rtree::RsjJoin;
use hdsj::storage::{FaultPlan, RetryPolicy, StorageEngine};

/// Tiny pool so runs actually hit the (faulty) disk instead of staying
/// resident.
const POOL_PAGES: usize = 4;

fn seeds() -> Vec<u64> {
    match std::env::var("HDSJ_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("HDSJ_CHAOS_SEED must be a u64")],
        Err(_) => vec![3, 17, 101],
    }
}

fn dataset() -> Dataset {
    uniform(8, 4000, 42).unwrap()
}

fn spec() -> JoinSpec {
    // ε chosen so 8-d uniform data yields a real (non-empty) result set
    // while the level files still span several times the pool capacity.
    JoinSpec::new(0.25, Metric::L2)
}

/// Unordered pairs in canonical order, for order-insensitive comparison.
fn canonical(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    for p in &mut pairs {
        if p.0 > p.1 {
            *p = (p.1, p.0);
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Constructor for an algorithm running on the given (possibly faulty)
/// engine.
type AlgoCtor = fn(StorageEngine) -> Box<dyn SimilarityJoin>;

/// The engine-backed algorithms: name plus a constructor taking the
/// (possibly faulty) engine to run on.
fn engine_algos() -> Vec<(&'static str, AlgoCtor)> {
    vec![
        ("msj", |e| Box::new(Msj::with_engine(e))),
        ("rsj", |e| Box::new(RsjJoin::with_engine(e))),
    ]
}

/// Fault profiles exercised per (algorithm, seed): each returns a
/// `FaultPlan` spec string for the given seed.
fn profiles(seed: u64) -> Vec<(&'static str, String)> {
    vec![
        ("transient-read", format!("seed={seed},read=0.2:transient")),
        ("transient-any", format!("seed={seed},any=0.1:transient")),
        (
            "persistent-write",
            format!("seed={seed},write=0.05:persistent"),
        ),
        ("corrupt-write", format!("seed={seed},write=0.05:corrupt")),
        ("torn-write", format!("seed={seed},write=0.05:torn")),
    ]
}

fn run_on(
    ctor: AlgoCtor,
    engine: StorageEngine,
    ds: &Dataset,
) -> (hdsj::core::Result<hdsj::core::JoinStats>, Vec<(u32, u32)>) {
    let mut algo = ctor(engine);
    let mut sink = VecSink::default();
    let out = algo.self_join(ds, &spec(), &mut sink);
    (out, sink.pairs)
}

#[test]
fn every_disk_backed_join_survives_seeded_fault_schedules() {
    let ds = dataset();
    for (name, ctor) in engine_algos() {
        // Fault-free baseline on the same tiny pool.
        let clean = StorageEngine::in_memory(POOL_PAGES);
        let (base_out, base_pairs) = run_on(ctor, clean.clone(), &ds);
        base_out.unwrap_or_else(|e| panic!("{name} baseline failed: {e}"));
        let baseline = canonical(base_pairs);
        assert_eq!(clean.pool().pinned_frames(), 0, "{name} baseline pins");

        for seed in seeds() {
            for (profile, spec_str) in profiles(seed) {
                let label = format!("{name}/{profile}/seed={seed}");
                let plan = FaultPlan::parse(&spec_str).expect("profile spec parses");
                let engine = StorageEngine::builder(POOL_PAGES)
                    .retry(RetryPolicy::backoff(6))
                    .faults(plan)
                    .in_memory();
                let (out, pairs) = run_on(ctor, engine.clone(), &ds);
                match out {
                    // Completed: results must be exactly the fault-free set.
                    Ok(_) => assert_eq!(canonical(pairs), baseline, "{label} diverged"),
                    // Aborted: only the storage error family is acceptable.
                    Err(Error::Storage(_)) | Err(Error::Corruption(_)) | Err(Error::Io(_)) => {}
                    Err(e) => panic!("{label}: untyped failure {e:?}"),
                }
                let pool = engine.pool();
                assert_eq!(pool.pinned_frames(), 0, "{label} left pinned frames");
                if name == "msj" {
                    // MSJ's temp run files own their pages and must free
                    // them on every path, including mid-join aborts.
                    assert_eq!(
                        pool.free_pages(),
                        pool.num_pages() as usize,
                        "{label} leaked pages"
                    );
                }
            }
        }
    }
}

/// The acceptance schedule from the issue: a transient fault plan that
/// aborts the join under the fail-fast policy must complete under bounded
/// retry, with the recovery visible in both the run stats and the trace.
#[test]
fn transient_schedule_recovers_under_retry_and_counts_it() {
    let ds = dataset();
    let spec_str = "seed=3,write=0.4:transient";

    // Fail fast: the schedule must actually bite.
    let engine = StorageEngine::builder(POOL_PAGES)
        .retry(RetryPolicy::none())
        .faults(FaultPlan::parse(spec_str).unwrap())
        .in_memory();
    let (out, _) = run_on(|e| Box::new(Msj::with_engine(e)), engine.clone(), &ds);
    match out {
        Err(Error::Storage(_)) | Err(Error::Io(_)) => {}
        other => panic!("expected a transient abort without retries, got {other:?}"),
    }
    assert_eq!(engine.pool().pinned_frames(), 0);
    assert!(engine.io_counters().faults > 0);

    // Same schedule, bounded backoff: completes and matches a fault-free
    // run, with the retries counted and traced.
    let clean = StorageEngine::in_memory(POOL_PAGES);
    let (base_out, base_pairs) = run_on(|e| Box::new(Msj::with_engine(e)), clean, &ds);
    base_out.unwrap();

    let (tracer, mem) = hdsj::obs::Tracer::memory();
    let engine = StorageEngine::builder(POOL_PAGES)
        .retry(RetryPolicy::backoff(8))
        .faults(FaultPlan::parse(spec_str).unwrap())
        .in_memory();
    let mut msj = Msj::with_engine(engine.clone());
    msj.set_tracer(tracer.clone());
    let mut sink = VecSink::default();
    let stats = msj
        .self_join(&ds, &spec(), &mut sink)
        .expect("retry policy should absorb the transient schedule");
    tracer.flush();
    assert_eq!(canonical(sink.pairs), canonical(base_pairs));
    assert!(stats.io.retries > 0, "recovery must be visible in stats");
    assert!(stats.io.faults > 0);
    let traced = mem.counter_value("pool.retries").unwrap_or(0);
    assert!(traced > 0, "pool.retries counter missing from the trace");
    assert_eq!(engine.pool().pinned_frames(), 0);
    assert_eq!(
        engine.pool().free_pages(),
        engine.pool().num_pages() as usize
    );
}

/// Detected corruption surfaces as `Error::Corruption` (not a wrong
/// answer) and is counted.
#[test]
fn corrupting_writes_yield_corruption_not_wrong_answers() {
    let ds = dataset();
    for seed in seeds() {
        let plan = FaultPlan::parse(&format!("seed={seed},write=0.3:corrupt")).unwrap();
        let engine = StorageEngine::builder(POOL_PAGES).faults(plan).in_memory();
        let (out, _) = run_on(|e| Box::new(Msj::with_engine(e)), engine.clone(), &ds);
        match out {
            Err(Error::Corruption(msg)) => {
                assert!(msg.contains("checksum"), "seed {seed}: {msg}");
                assert!(engine.io_counters().corruptions > 0);
            }
            // A seed may corrupt only pages that are never re-read (or
            // that stay resident); completing with correct results is the
            // other legal outcome.
            Ok(_) => {}
            other => panic!("seed {seed}: expected Corruption or success, got {other:?}"),
        }
        assert_eq!(engine.pool().pinned_frames(), 0);
    }
}

/// A panicking refinement worker is contained as a typed error and leaves
/// the shared engine reusable.
#[test]
fn refine_worker_panic_is_contained_and_engine_stays_usable() {
    let ds = dataset();
    let engine = StorageEngine::in_memory(POOL_PAGES);
    let mut msj = Msj::with_engine(engine.clone());
    msj.refine_threads = 3;
    msj.fail_refine_worker = Some(1);
    let mut sink = VecSink::default();
    let err = msj.self_join(&ds, &spec(), &mut sink).unwrap_err();
    // The exec pool contains worker panics as Error::Internal.
    assert!(matches!(err, Error::Internal(_)), "{err:?}");
    assert!(err.to_string().contains("panicked"), "{err}");
    assert!(
        err.to_string().contains("injected refine-worker failure"),
        "{err}"
    );
    assert_eq!(engine.pool().pinned_frames(), 0);
    assert_eq!(
        engine.pool().free_pages(),
        engine.pool().num_pages() as usize
    );

    // Same engine, failpoint off: the join completes normally.
    let mut msj = Msj::with_engine(engine);
    msj.refine_threads = 3;
    let mut sink = VecSink::default();
    msj.self_join(&ds, &spec(), &mut sink).unwrap();
    assert!(!sink.pairs.is_empty());
}

/// The in-memory algorithms have no storage surface: under the same
/// harness they are deterministic run-to-run, which is what "unaffected by
/// fault plans" means for them.
#[test]
fn memory_resident_algorithms_are_deterministic_under_the_harness() {
    let ds = uniform(4, 800, 7).unwrap();
    let spec = JoinSpec::new(0.15, Metric::L2);
    for mut algo in hdsj::all_algorithms() {
        let mut first = VecSink::default();
        match algo.self_join(&ds, &spec, &mut first) {
            Ok(_) => {}
            Err(Error::Unsupported(_)) => continue,
            Err(e) => panic!("{}: {e}", algo.name()),
        }
        let mut second = VecSink::default();
        algo.self_join(&ds, &spec, &mut second).unwrap();
        assert_eq!(
            canonical(first.pairs),
            canonical(second.pairs),
            "{} not deterministic",
            algo.name()
        );
    }
}

//! End-to-end tests of the `hdsj` command-line tool: generate → info →
//! join round trips through real files and real process invocations.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::Command;

fn hdsj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdsj"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdsj-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_info_join_round_trip() {
    let csv = tmp("uniform.csv");
    let out = hdsj()
        .args(["generate", "--kind", "uniform", "--dims", "4", "--n", "500"])
        .args(["--seed", "9", "--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let info = hdsj()
        .args(["info", "--input", csv.to_str().unwrap()])
        .output()
        .expect("run info");
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("points : 500"), "{text}");
    assert!(text.contains("dims   : 4"), "{text}");
    assert!(text.contains("[0,1)^d"), "{text}");

    let pairs_path = tmp("pairs.csv");
    let join = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.2", "--metric", "l2"])
        .args([
            "--input",
            csv.to_str().unwrap(),
            "--out",
            pairs_path.to_str().unwrap(),
        ])
        .output()
        .expect("run join");
    assert!(
        join.status.success(),
        "{}",
        String::from_utf8_lossy(&join.stderr)
    );
    let stdout = String::from_utf8_lossy(&join.stdout);
    assert!(stdout.contains("algorithm : MSJ"), "{stdout}");
    assert!(stdout.contains("pairs"), "{stdout}");

    // The pair file parses and matches the reported count.
    let reported: u64 = stdout
        .lines()
        .find(|l| l.starts_with("pairs"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("parse pair count");
    let lines = std::fs::read_to_string(&pairs_path).unwrap();
    assert_eq!(lines.lines().count() as u64, reported);
    for line in lines.lines().take(5) {
        let (i, j) = line.split_once(',').expect("i,j");
        let i: u32 = i.parse().unwrap();
        let j: u32 = j.parse().unwrap();
        assert!(i < j, "self-join pairs are canonical");
    }
}

#[test]
fn join_algorithms_agree_through_the_cli() {
    let csv = tmp("agree.csv");
    hdsj()
        .args([
            "generate", "--kind", "clusters", "--dims", "5", "--n", "400",
        ])
        .args(["--clusters", "6", "--sigma", "0.04", "--seed", "3"])
        .args(["--out", csv.to_str().unwrap()])
        .status()
        .expect("generate");
    let mut counts = Vec::new();
    for algo in ["bf", "sm1d", "grid", "ekdb", "rsj", "msj"] {
        let out = hdsj()
            .args(["join", "--algo", algo, "--eps", "0.08", "--quiet"])
            .args(["--input", csv.to_str().unwrap()])
            .output()
            .expect("join");
        assert!(out.status.success(), "{algo}");
        let text = String::from_utf8_lossy(&out.stdout);
        let n: u64 = text
            .lines()
            .find(|l| l.starts_with("pairs"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("{algo}: no pair count in {text}"));
        counts.push(n);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn errors_exit_nonzero_with_message() {
    // Unknown command.
    let out = hdsj().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing threshold (neither --eps nor --target-pairs).
    let ok_csv = tmp("ok.csv");
    std::fs::write(&ok_csv, "0.1,0.2\n0.3,0.4\n").unwrap();
    let out = hdsj()
        .args(["join", "--algo", "msj", "--input", ok_csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--eps"));

    // Out-of-domain data gets the rescale hint.
    let bad = tmp("bad.csv");
    std::fs::write(&bad, "5.0,2.0\n1.0,9.0\n").unwrap();
    let out = hdsj()
        .args([
            "join",
            "--algo",
            "bf",
            "--eps",
            "0.1",
            "--input",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("rescale"));
}

#[test]
fn two_set_join_via_cli() {
    let a = tmp("left.csv");
    let b = tmp("right.csv");
    for (path, seed) in [(&a, "1"), (&b, "2")] {
        hdsj()
            .args(["generate", "--kind", "uniform", "--dims", "3", "--n", "200"])
            .args(["--seed", seed, "--out", path.to_str().unwrap()])
            .status()
            .expect("generate");
    }
    let out = hdsj()
        .args(["join", "--algo", "rsj", "--eps", "0.15", "--quiet"])
        .args([
            "--input",
            a.to_str().unwrap(),
            "--other",
            b.to_str().unwrap(),
        ])
        .output()
        .expect("join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("algorithm : RSJ"));
}

#[test]
fn stats_block_goes_to_stderr_unless_quiet() {
    let csv = tmp("stderr-stats.csv");
    hdsj()
        .args(["generate", "--kind", "uniform", "--dims", "4", "--n", "300"])
        .args(["--seed", "17", "--out", csv.to_str().unwrap()])
        .status()
        .expect("generate");

    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.2"])
        .args(["--input", csv.to_str().unwrap()])
        .output()
        .expect("join");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("algorithm : MSJ"), "{stdout}");
    assert!(stdout.contains("pairs"), "{stdout}");
    for detail in ["candidates:", "time", "assign", "sort", "sweep"] {
        assert!(stderr.contains(detail), "stderr missing {detail}: {stderr}");
        assert!(
            !stdout.contains(detail),
            "{detail} leaked to stdout: {stdout}"
        );
    }

    let quiet = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.2", "--quiet"])
        .args(["--input", csv.to_str().unwrap()])
        .output()
        .expect("join quiet");
    assert!(quiet.status.success());
    let quiet_err = String::from_utf8_lossy(&quiet.stderr);
    assert!(
        !quiet_err.contains("candidates:"),
        "--quiet must suppress the stderr stats: {quiet_err}"
    );
}

#[test]
fn stats_json_emits_one_parseable_object() {
    let csv = tmp("stats-json.csv");
    hdsj()
        .args(["generate", "--kind", "uniform", "--dims", "4", "--n", "300"])
        .args(["--seed", "19", "--out", csv.to_str().unwrap()])
        .status()
        .expect("generate");
    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.2", "--stats", "json"])
        .args(["--input", csv.to_str().unwrap()])
        .output()
        .expect("join");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let obj = hdsj::obs::json::parse(stdout.trim()).expect("valid JSON");
    assert_eq!(obj.get("algorithm").and_then(|v| v.as_str()), Some("MSJ"));
    assert!(obj.get("results").and_then(|v| v.as_u64()).is_some());
    let phases = obj.get("phases").expect("phases object");
    for phase in ["assign", "sort", "sweep"] {
        assert!(phases.get(phase).is_some(), "missing phase {phase}");
    }
    assert!(obj.get("io").and_then(|io| io.get("reads")).is_some());
}

#[test]
fn trace_file_has_nested_spans_and_pool_counters() {
    let csv = tmp("traced.csv");
    hdsj()
        .args(["generate", "--kind", "uniform", "--dims", "4", "--n", "500"])
        .args(["--seed", "23", "--out", csv.to_str().unwrap()])
        .status()
        .expect("generate");
    let trace_path = tmp("join.jsonl");
    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.2", "--quiet"])
        .args(["--input", csv.to_str().unwrap()])
        .args(["--trace", trace_path.to_str().unwrap()])
        .output()
        .expect("join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let trace = hdsj::obs::report::Trace::parse(&text).expect("valid JSONL");
    let root = trace.span("msj.join").expect("root span");
    for phase in ["assign", "sort", "sweep"] {
        let span = trace.span(phase).unwrap_or_else(|| panic!("span {phase}"));
        assert_eq!(span.parent, Some(root.id), "{phase} nests under the root");
    }
    for counter in ["pool.reads", "pool.writes", "pool.hits", "pool.evictions"] {
        assert!(
            trace.counter(counter).is_some(),
            "missing counter {counter}: {:?}",
            trace.counters
        );
    }
    assert!(trace.counter("msj.results").is_some());

    // The reporter renders the same file as a phase tree.
    let report = hdsj()
        .args(["trace-report", trace_path.to_str().unwrap()])
        .output()
        .expect("trace-report");
    assert!(report.status.success());
    let rendered = String::from_utf8_lossy(&report.stdout);
    for needle in ["msj.join", "assign", "sort", "sweep", "pool.reads"] {
        assert!(
            rendered.contains(needle),
            "report missing {needle}:\n{rendered}"
        );
    }
}

#[test]
fn help_lists_commands() {
    let out = hdsj().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "join", "info"] {
        assert!(text.contains(cmd), "help is missing {cmd}");
    }
}

/// Exit codes distinguish the error families, and stderr names the
/// variant, so scripts can tell bad flags from bad disks.
#[test]
fn exit_codes_reflect_error_families() {
    // 2: invalid input (unknown command).
    let out = hdsj().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("InvalidInput"));

    let csv = tmp("chaos.csv");
    hdsj()
        .args([
            "generate", "--kind", "uniform", "--dims", "8", "--n", "6000",
        ])
        .args(["--seed", "5", "--out", csv.to_str().unwrap()])
        .status()
        .expect("generate");
    let input = ["--input", csv.to_str().unwrap()];

    // 3: engine flags on an algorithm with no storage surface.
    let out = hdsj()
        .args(["join", "--algo", "bf", "--eps", "0.25", "--quiet"])
        .args(input)
        .args(["--inject-faults", "seed=1,read=0.1:transient"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("Unsupported"));

    // 4: a persistent storage fault aborts the join.
    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.25", "--quiet"])
        .args(input)
        .args(["--inject-faults", "alloc@1=persistent"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Storage"), "{stderr}");
    assert!(stderr.contains("injected persistent fault"), "{stderr}");

    // 5: corrupting writes are caught by the page checksum on re-read
    // (the 2-frame pool forces eviction and re-read of damaged pages).
    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.25", "--quiet"])
        .args(input)
        .args(["--pool-pages", "2"])
        .args(["--inject-faults", "seed=3,write=1:corrupt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Corruption"), "{stderr}");
    assert!(stderr.contains("checksum"), "{stderr}");

    // 9: an already-expired deadline stops the join before any phase.
    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.25", "--quiet"])
        .args(input)
        .args(["--deadline-ms", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(9));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DeadlineExceeded"), "{stderr}");

    // 10: a one-page memory budget cannot hold the level files.
    let out = hdsj()
        .args(["join", "--algo", "msj", "--eps", "0.25", "--quiet"])
        .args(input)
        .args(["--mem-budget-pages", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("BudgetExhausted"), "{stderr}");
}

/// The acceptance schedule end to end: a transient fault plan that kills
/// the run fail-fast completes under --retries, with the recovery counted
/// in the stderr fault line.
#[test]
fn transient_faults_recover_with_retries_through_the_cli() {
    let csv = tmp("retry.csv");
    hdsj()
        .args([
            "generate", "--kind", "uniform", "--dims", "8", "--n", "6000",
        ])
        .args(["--seed", "5", "--out", csv.to_str().unwrap()])
        .status()
        .expect("generate");
    let base = [
        "join",
        "--algo",
        "msj",
        "--eps",
        "0.25",
        "--input",
        csv.to_str().unwrap(),
        "--pool-pages",
        "2",
        "--inject-faults",
        "seed=3,write=0.4:transient",
    ];

    // Without retries the schedule aborts with a storage-family code.
    let out = hdsj().args(base).arg("--quiet").output().unwrap();
    assert!(
        matches!(out.status.code(), Some(4) | Some(6)),
        "expected storage/io exit, got {:?}",
        out.status.code()
    );

    // With retries it completes; the fault line reports the recoveries.
    let out = hdsj().args(base).args(["--retries", "8"]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let fault_line = stderr
        .lines()
        .find(|l| l.starts_with("faults"))
        .unwrap_or_else(|| panic!("no fault line in {stderr}"));
    assert!(fault_line.contains("retries"), "{fault_line}");
    assert!(!fault_line.contains(" 0 retries"), "{fault_line}");
}

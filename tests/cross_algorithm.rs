//! Cross-algorithm equivalence: every algorithm must produce exactly the
//! brute-force result set on every workload × metric × join-kind
//! combination. This is the central correctness contract of the library.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj::all_algorithms;
use hdsj::bruteforce::BruteForce;
use hdsj::core::{verify, Dataset, JoinSpec, Metric, SimilarityJoin, VecSink};
use hdsj::data::{correlated, gaussian_clusters, timeseries, uniform, ClusterSpec};

fn ground_truth_self(ds: &Dataset, spec: &JoinSpec) -> Vec<(u32, u32)> {
    let mut sink = VecSink::default();
    BruteForce::default()
        .self_join(ds, spec, &mut sink)
        .unwrap();
    sink.pairs
}

fn ground_truth_two(a: &Dataset, b: &Dataset, spec: &JoinSpec) -> Vec<(u32, u32)> {
    let mut sink = VecSink::default();
    BruteForce::default().join(a, b, spec, &mut sink).unwrap();
    sink.pairs
}

/// Runs every algorithm on a self-join and checks against brute force.
/// Algorithms that decline (grid in high d) are skipped.
fn check_all_self(ds: &Dataset, spec: &JoinSpec, label: &str) {
    let want = ground_truth_self(ds, spec);
    for mut algo in all_algorithms() {
        let mut sink = VecSink::default();
        match algo.self_join(ds, spec, &mut sink) {
            Ok(stats) => {
                assert_eq!(
                    stats.results as usize,
                    sink.pairs.len(),
                    "{label}/{}",
                    algo.name()
                );
                verify::assert_same_results(
                    &format!("{label}/{}", algo.name()),
                    &want,
                    &sink.pairs,
                );
            }
            Err(hdsj::core::Error::Unsupported(_)) => continue,
            Err(e) => panic!("{label}/{}: {e}", algo.name()),
        }
    }
}

fn check_all_two(a: &Dataset, b: &Dataset, spec: &JoinSpec, label: &str) {
    let want = ground_truth_two(a, b, spec);
    for mut algo in all_algorithms() {
        let mut sink = VecSink::default();
        match algo.join(a, b, spec, &mut sink) {
            Ok(_) => verify::assert_same_results(
                &format!("{label}/{}", algo.name()),
                &want,
                &sink.pairs,
            ),
            Err(hdsj::core::Error::Unsupported(_)) => continue,
            Err(e) => panic!("{label}/{}: {e}", algo.name()),
        }
    }
}

#[test]
fn uniform_self_join_across_dims_and_eps() {
    for (d, eps) in [(2usize, 0.03), (3, 0.1), (6, 0.3), (12, 0.5)] {
        let ds = uniform(d, 500, d as u64 * 31 + 1).unwrap();
        check_all_self(
            &ds,
            &JoinSpec::new(eps, Metric::L2),
            &format!("uniform d={d}"),
        );
    }
}

#[test]
fn all_metrics_agree_with_ground_truth() {
    let ds = uniform(5, 400, 99).unwrap();
    for metric in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(2.5)] {
        check_all_self(&ds, &JoinSpec::new(0.25, metric), &format!("{metric:?}"));
    }
}

#[test]
fn two_set_joins_match() {
    let a = uniform(4, 450, 11).unwrap();
    let b = uniform(4, 380, 12).unwrap();
    check_all_two(&a, &b, &JoinSpec::new(0.2, Metric::L2), "two-set uniform");
    // Asymmetric sizes exercise tree-height mismatches.
    let tiny = uniform(4, 7, 13).unwrap();
    check_all_two(
        &tiny,
        &b,
        &JoinSpec::new(0.2, Metric::L2),
        "two-set tiny-left",
    );
    check_all_two(
        &b,
        &tiny,
        &JoinSpec::new(0.2, Metric::L2),
        "two-set tiny-right",
    );
}

#[test]
fn clustered_and_skewed_workloads_match() {
    let tight = gaussian_clusters(
        4,
        600,
        ClusterSpec {
            clusters: 5,
            sigma: 0.01,
            zipf_theta: 1.5,
            noise_fraction: 0.2,
        },
        7,
    )
    .unwrap();
    check_all_self(&tight, &JoinSpec::new(0.03, Metric::L2), "zipf clusters");

    let corr = correlated(8, 500, 0.03, 21).unwrap();
    check_all_self(
        &corr,
        &JoinSpec::new(0.07, Metric::L2),
        "correlated diagonal",
    );
}

#[test]
fn fourier_feature_workload_matches() {
    let ds = timeseries::fourier_dataset(6, 400, 64, 2025).unwrap();
    check_all_self(&ds, &JoinSpec::new(0.04, Metric::L2), "fourier features");
}

#[test]
fn degenerate_datasets_match() {
    // All-duplicate points.
    let dupes = Dataset::from_rows(&vec![vec![0.25, 0.75, 0.5]; 60]).unwrap();
    check_all_self(&dupes, &JoinSpec::new(0.01, Metric::L2), "duplicates");

    // Single point, empty set.
    let single = Dataset::from_rows(&[vec![0.5, 0.5, 0.5]]).unwrap();
    check_all_self(&single, &JoinSpec::new(0.1, Metric::L2), "single point");
    let empty = Dataset::new(3).unwrap();
    check_all_self(&empty, &JoinSpec::new(0.1, Metric::L2), "empty");

    // Points packed along grid boundaries.
    let mut rows = Vec::new();
    for i in 0..8 {
        for j in 0..8 {
            rows.push(vec![i as f64 / 8.0, j as f64 / 8.0, 0.5]);
        }
    }
    let grid_pts = Dataset::from_rows(&rows).unwrap();
    check_all_self(
        &grid_pts,
        &JoinSpec::new(0.125, Metric::Linf),
        "boundary lattice",
    );
}

#[test]
fn result_sets_nest_as_eps_grows() {
    // For every algorithm: results(eps1) ⊆ results(eps2) when eps1 < eps2.
    let ds = uniform(5, 400, 3).unwrap();
    for mut algo in all_algorithms() {
        let mut small = VecSink::default();
        let mut large = VecSink::default();
        if algo.self_join(&ds, &JoinSpec::l2(0.1), &mut small).is_err() {
            continue;
        }
        algo.self_join(&ds, &JoinSpec::l2(0.2), &mut large).unwrap();
        let large_set: std::collections::HashSet<_> = large.pairs.iter().collect();
        for pair in &small.pairs {
            assert!(
                large_set.contains(pair),
                "{}: {pair:?} lost at larger eps",
                algo.name()
            );
        }
    }
}

#[test]
fn color_histogram_workload_matches() {
    let ds = hdsj::data::color_histograms(
        12,
        350,
        hdsj::data::HistogramSpec {
            themes: 6,
            themes_per_image: 2,
            noise: 0.01,
        },
        31,
    )
    .unwrap();
    let eps = hdsj::data::eps_for_target_pairs(&ds, Metric::L2, 800.0, 50_000, 32);
    check_all_self(&ds, &JoinSpec::new(eps, Metric::L2), "color histograms");
}

#[test]
fn high_dimensional_correlated_workload_matches() {
    // d = 24: grid declines, everything else must agree.
    let ds = correlated(24, 300, 0.02, 41).unwrap();
    check_all_self(&ds, &JoinSpec::new(0.05, Metric::L2), "correlated d=24");
}

//! Public-API integration tests: the umbrella crate's advertised workflows
//! work end to end as documented in the README.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj::all_algorithms;
use hdsj::core::{CallbackSink, CountSink, Dataset, JoinSpec, Metric, SimilarityJoin, VecSink};

#[test]
fn roster_is_complete_and_named() {
    let names: Vec<&str> = all_algorithms().iter().map(|a| a.name()).collect();
    assert_eq!(names, vec!["BF", "SM1D", "GRID", "EKDB", "RSJ", "MSJ"]);
}

#[test]
fn readme_workflow_normalize_then_join() {
    // Raw, un-normalized business data: two feature tables on different
    // scales, joined after shared normalization.
    let a = Dataset::from_rows(&[vec![10.0, 2000.0], vec![12.0, 2100.0], vec![90.0, 9000.0]])
        .unwrap();
    let b = Dataset::from_rows(&[vec![11.0, 2050.0], vec![50.0, 5000.0]]).unwrap();

    let (na, nb, scale) = Dataset::normalize_pair(&a, &b).unwrap();
    // "within 300 units" in original space becomes scale*300 in the cube.
    let eps = scale * 300.0;
    let spec = JoinSpec::new(eps, Metric::L2);

    let mut sink = VecSink::default();
    hdsj::msj::Msj::default()
        .join(&na, &nb, &spec, &mut sink)
        .unwrap();
    // a0 and a1 are within 300 of b0; a2 is far from everything.
    sink.pairs.sort_unstable();
    assert_eq!(sink.pairs, vec![(0, 0), (1, 0)]);
}

#[test]
fn callback_sink_streams_pairs() {
    let ds = hdsj::data::uniform(3, 300, 1).unwrap();
    let spec = JoinSpec::new(0.1, Metric::L2);
    let mut streamed = 0u64;
    {
        let mut sink = CallbackSink(|_i, _j| streamed += 1);
        hdsj::grid::GridJoin::default()
            .self_join(&ds, &spec, &mut sink)
            .unwrap();
    }
    let mut count = CountSink::default();
    hdsj::grid::GridJoin::default()
        .self_join(&ds, &spec, &mut count)
        .unwrap();
    assert_eq!(streamed, count.count);
}

#[test]
fn algorithms_are_reusable_across_calls() {
    // `&mut self` lets implementations cache scratch space; repeated use of
    // one instance must keep producing correct, identical results.
    let ds1 = hdsj::data::uniform(4, 300, 2).unwrap();
    let ds2 = hdsj::data::uniform(4, 250, 3).unwrap();
    for mut algo in all_algorithms() {
        let spec = JoinSpec::new(0.2, Metric::L2);
        let mut first = VecSink::default();
        if algo.self_join(&ds1, &spec, &mut first).is_err() {
            continue;
        }
        let mut other = VecSink::default();
        algo.join(&ds1, &ds2, &spec, &mut other).unwrap();
        let mut again = VecSink::default();
        algo.self_join(&ds1, &spec, &mut again).unwrap();
        hdsj::core::verify::assert_same_results(algo.name(), &first.pairs, &again.pairs);
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let ds = hdsj::data::uniform(3, 10, 4).unwrap();
    let other = hdsj::data::uniform(4, 10, 5).unwrap();
    for mut algo in all_algorithms() {
        let mut sink = CountSink::default();
        // eps <= 0
        assert!(algo.self_join(&ds, &JoinSpec::l2(0.0), &mut sink).is_err());
        // NaN eps
        assert!(algo
            .self_join(&ds, &JoinSpec::l2(f64::NAN), &mut sink)
            .is_err());
        // dimension mismatch
        assert!(algo
            .join(&ds, &other, &JoinSpec::l2(0.1), &mut sink)
            .is_err());
        // invalid Lp
        assert!(algo
            .self_join(&ds, &JoinSpec::new(0.1, Metric::Lp(0.5)), &mut sink)
            .is_err());
    }
}

#[test]
fn stats_phases_are_populated_for_all_structured_algorithms() {
    let ds = hdsj::data::uniform(4, 400, 6).unwrap();
    let spec = JoinSpec::new(0.2, Metric::L2);
    for mut algo in all_algorithms() {
        let mut sink = CountSink::default();
        let stats = match algo.self_join(&ds, &spec, &mut sink) {
            Ok(s) => s,
            Err(_) => continue,
        };
        assert!(
            !stats.phases.is_empty(),
            "{} reports no phases",
            algo.name()
        );
        assert!(stats.total_time().as_nanos() > 0);
    }
}

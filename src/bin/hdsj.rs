//! `hdsj` — command-line similarity joins.
//!
//! ```text
//! hdsj generate --kind uniform --dims 8 --n 10000 --seed 1 --out pts.csv
//! hdsj join --algo msj --eps 0.2 --metric l2 --input pts.csv --out pairs.csv
//! hdsj join --algo rsj --eps 0.1 --input a.csv --other b.csv
//! hdsj info --input pts.csv
//! ```
//!
//! Flags are `--name value` pairs; see `hdsj help` for the full list. CSV
//! datasets are headerless, one point per row (`#` comments allowed).

use hdsj::core::{Error, JoinSpec, LifecycleCtx, Metric, Result, SimilarityJoin, VecSink};
use hdsj::data::{self, io as dio, ClusterSpec, HistogramSpec};
use hdsj::storage::{
    Checkpointer, FaultPlan, Manifest, ManifestState, RetryPolicy, StorageEngine,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error ({}): {e}", e.variant_name());
            exit_code(&e)
        }
    };
    std::process::exit(code);
}

/// Maps error kinds to documented exit codes so scripts and the chaos
/// harness can distinguish "you typo'd a flag" from "the disk lied".
fn exit_code(e: &Error) -> i32 {
    match e {
        Error::InvalidInput(_) => 2,
        Error::Unsupported(_) => 3,
        Error::Storage(_) => 4,
        Error::Corruption(_) => 5,
        Error::Io(_) => 6,
        Error::Internal(_) => 7,
        Error::Canceled(_) => 8,
        Error::DeadlineExceeded(_) => 9,
        Error::BudgetExhausted(_) => 10,
    }
}

fn run(args: &[String]) -> Result<()> {
    let Some(cmd) = args.first() else {
        print_help();
        return Ok(());
    };
    // `trace-report` and `stats` take a positional file argument first,
    // optionally followed by --flag pairs.
    if cmd == "trace-report" {
        return trace_report(&args[1..]);
    }
    if cmd == "stats" {
        return stats_cmd(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "generate" => generate(&flags),
        "join" => join(&flags),
        "info" => info(&flags),
        "analyze" => analyze(&flags),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(Error::InvalidInput(format!(
            "unknown command {other:?}; try `hdsj help`"
        ))),
    }
}

fn print_help() {
    println!(
        "hdsj — high dimensional similarity joins

USAGE:
  hdsj generate --kind <uniform|clusters|correlated|fourier|histograms>
                --dims D --n N [--seed S] --out FILE
                [--clusters K] [--sigma S] [--zipf Z] [--noise F]
  hdsj join     --algo <bf|sm1d|grid|ekdb|rsj|msj> (--eps E | --target-pairs N)\n                [--metric l1|l2|linf|lp:P] [--threads N]
                --input FILE [--other FILE] [--out FILE] [--quiet]
                [--trace FILE] [--stats human|json]
                [--inject-faults SPEC] [--retries N] [--pool-pages N]
                [--deadline-ms N] [--mem-budget-pages N] [--resume MANIFEST]
                [--sort-mem-records N]
  hdsj info     --input FILE
  hdsj analyze  [--root DIR] [--format human|jsonl|sarif] [--rules r7,r8]
                [--list-rules] [--explain RULE]
  hdsj trace-report FILE [--phases] [--critical-path]
  hdsj stats FILE [--format human|prom]

Datasets are headerless CSV, one point per row. `join` runs a self-join of
--input, or a two-set join against --other. Results go to --out as
`i,j` index pairs (or are only counted with --quiet).

`analyze` runs the hdsj-analyze static invariant checker over the
workspace at --root (default `.`): panic-freedom, SAFETY comments,
pin/unpin pairing, interprocedural lock order, error-taxonomy coverage,
metric-name registry conformance, atomic-ordering declarations,
byte-determinism, pool-only threading, lifecycle-poll coverage, budget
charging, manifest durability order, and the SIMD layer's dataflow
proofs (unsafe bounds, target-feature gating, unchecked offset
arithmetic). It exits 1 when any deny-level
finding survives suppression — the same contract as
`cargo run -p hdsj-analyze -- check`. `--rules r7,r8` (ids or names)
restricts the run to those rules; `--list-rules` prints each rule's id,
level, and description; `--explain RULE` prints one rule's doc, example,
and suppression syntax.

`join` prints `algorithm`/`pairs` to stdout; detailed statistics
(candidates, filter precision, per-phase times, I/O) go to stderr unless
--quiet. `--stats json` replaces the stdout summary with one machine-
readable JSON object. `--trace FILE` records spans, counters, and
latency histograms for the whole run as JSONL; `hdsj trace-report FILE`
renders such a file as a phase tree with its top counters and histogram
percentiles. `trace-report --phases` prints a per-algorithm CPU/IO/Wait
cost-attribution table, and `--critical-path` prints the longest span
chain with per-node self time. `hdsj stats FILE` renders the metrics in
a trace (counters, gauges, histograms) as human-readable text or
Prometheus exposition format (`--format prom`).

THREADS:
  --threads N           worker threads for the parallel algorithms (bf, msj).
                        0 means all available cores. Defaults to the
                        HDSJ_THREADS environment variable, or 1 (serial)
                        when unset. Results are identical at every thread
                        count; algorithms without a parallel path ignore it.

FAULT INJECTION (disk-backed algorithms rsj and msj only):
  --inject-faults SPEC  seeded fault plan for the page store. SPEC is
                        comma-separated clauses: `seed=N`,
                        `<op>=<p>[:<kind>]` (probabilistic), or
                        `<op>@<n>=<kind>` (fault exactly the n-th op);
                        op is read|write|alloc|any, kind is
                        transient|persistent|torn|corrupt.
                        e.g. --inject-faults seed=7,read=0.05:transient
  --retries N           retry transient storage faults up to N times with
                        exponential backoff (default 0: fail fast)
  --pool-pages N        buffer pool capacity in pages (default 256)

LIFECYCLE & RECOVERY:
  --deadline-ms N       abort the join with `deadline exceeded` (exit 9)
                        once N milliseconds of wall clock have elapsed
  --mem-budget-pages N  abort with `budget exhausted` (exit 10) once the
                        join has allocated N pages of disk-backed memory
  --resume MANIFEST     (msj only) checkpoint durable progress to MANIFEST
                        and keep page data in MANIFEST.pages; when MANIFEST
                        already exists, completed sort runs and level files
                        are reused instead of recomputed. The manifest is
                        bound to the join's parameters — resuming with a
                        different input/eps/metric is rejected. Composes
                        with --inject-faults crash=<point>@<n> for
                        kill-and-restart testing.
  --sort-mem-records N  (msj only) in-memory workspace of the external
                        sort, in records; small values force multi-run
                        sorts with more checkpoints

EXIT CODES:
  0 success        2 invalid input     3 unsupported
  4 storage fault  5 data corruption   6 OS-level I/O error
  7 internal invariant violated        8 canceled
  9 deadline exceeded                 10 budget exhausted"
    );
}

/// `hdsj analyze` — the static invariant checker, embedded. Prints every
/// finding as `path:line: level[rule] message` (or JSONL with
/// `--format json`, SARIF 2.1.0 with `--format sarif`) and exits 1 on
/// deny findings, mirroring the standalone `hdsj-analyze` binary so CI
/// can gate on either. `--explain RULE` prints one rule's documentation,
/// a fixture example, and its suppression syntax instead of checking.
fn analyze(flags: &HashMap<String, String>) -> Result<()> {
    if flags.contains_key("list-rules") {
        print!("{}", hdsj_analyze::render_rule_list());
        return Ok(());
    }
    if let Some(rule) = flags.get("explain") {
        let text = hdsj_analyze::render_explain(rule).map_err(Error::InvalidInput)?;
        print!("{text}");
        return Ok(());
    }
    let root = flags.get("root").map(String::as_str).unwrap_or(".");
    let format = flags.get("format").map(String::as_str).unwrap_or("human");
    let report = match flags.get("rules") {
        Some(spec) => hdsj_analyze::check_workspace_filtered(Path::new(root), spec)
            .map_err(Error::InvalidInput)?,
        None => hdsj_analyze::check_workspace(Path::new(root))?,
    };
    match format {
        "human" => print!("{}", report.render_human()),
        "json" | "jsonl" => print!("{}", report.render_json()),
        "sarif" => print!("{}", report.render_sarif()),
        other => {
            return Err(Error::InvalidInput(format!(
                "unknown --format {other:?}; expected human, json, or sarif"
            )))
        }
    }
    if report.failed() {
        std::process::exit(1);
    }
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(Error::InvalidInput(format!("expected --flag, got {key:?}")));
        };
        if name == "quiet" || name == "list-rules" {
            flags.insert(name.to_string(), "1".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| Error::InvalidInput(format!("--{name} needs a value")))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn req<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str> {
    flags
        .get(name)
        .map(|s| s.as_str())
        .ok_or_else(|| Error::InvalidInput(format!("missing required flag --{name}")))
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| Error::InvalidInput(format!("--{name} {v:?}: {e}"))),
    }
}

fn generate(flags: &HashMap<String, String>) -> Result<()> {
    let kind = req(flags, "kind")?;
    let dims: usize = num(flags, "dims", 8)?;
    let n: usize = num(flags, "n", 10_000)?;
    let seed: u64 = num(flags, "seed", 42)?;
    let out = PathBuf::from(req(flags, "out")?);

    let ds = match kind {
        "uniform" => data::uniform(dims, n, seed),
        "clusters" => {
            let spec = ClusterSpec {
                clusters: num(flags, "clusters", 10)?,
                sigma: num(flags, "sigma", 0.05)?,
                zipf_theta: num(flags, "zipf", 0.0)?,
                noise_fraction: num(flags, "noise", 0.0)?,
            };
            data::gaussian_clusters(dims, n, spec, seed)
        }
        "correlated" => data::correlated(dims, n, num(flags, "noise", 0.05)?, seed),
        "fourier" => data::timeseries::fourier_dataset(dims, n, num(flags, "len", 128)?, seed),
        "histograms" => data::color_histograms(
            dims,
            n,
            HistogramSpec {
                themes: num(flags, "themes", 20)?,
                themes_per_image: num(flags, "themes-per-image", 3)?,
                noise: num(flags, "noise", 0.01)?,
            },
            seed,
        ),
        other => {
            return Err(Error::InvalidInput(format!("unknown --kind {other:?}")));
        }
    }?;
    dio::save_csv(&ds, &out)?;
    println!(
        "wrote {} points (d={}) to {}",
        ds.len(),
        ds.dims(),
        out.display()
    );
    Ok(())
}

fn parse_metric(s: &str) -> Result<Metric> {
    match s {
        "l1" => Ok(Metric::L1),
        "l2" => Ok(Metric::L2),
        "linf" => Ok(Metric::Linf),
        other => {
            if let Some(p) = other.strip_prefix("lp:") {
                let p: f64 = p
                    .parse()
                    .map_err(|e| Error::InvalidInput(format!("bad Lp exponent: {e}")))?;
                let m = Metric::Lp(p);
                m.validate()?;
                Ok(m)
            } else {
                Err(Error::InvalidInput(format!(
                    "unknown metric {other:?} (l1, l2, linf, lp:P)"
                )))
            }
        }
    }
}

fn make_algo(
    name: &str,
    engine: Option<StorageEngine>,
    sort_mem: Option<usize>,
) -> Result<Box<dyn SimilarityJoin>> {
    // Engine flags (--inject-faults / --retries / --pool-pages) only make
    // sense for the disk-backed algorithms; reject them elsewhere instead
    // of silently ignoring the request.
    if engine.is_some() && !matches!(name, "rsj" | "msj") {
        return Err(Error::Unsupported(format!(
            "--inject-faults/--retries/--pool-pages need a disk-backed \
             algorithm (rsj, msj), not {name:?}"
        )));
    }
    if sort_mem.is_some() && name != "msj" {
        return Err(Error::Unsupported(format!(
            "--sort-mem-records configures the external sort (msj), not {name:?}"
        )));
    }
    Ok(match name {
        "bf" => Box::new(hdsj::bruteforce::BruteForce::default()),
        "sm1d" => Box::new(hdsj::sortmerge::SortMergeJoin::default()),
        "grid" => Box::new(hdsj::grid::GridJoin::default()),
        "ekdb" => Box::new(hdsj::ekdb::EkdbJoin::default()),
        "rsj" => match engine {
            Some(engine) => Box::new(hdsj::rtree::RsjJoin::with_engine(engine)),
            None => Box::new(hdsj::rtree::RsjJoin::default()),
        },
        "msj" => {
            let mut msj = match engine {
                Some(engine) => hdsj::msj::Msj::with_engine(engine),
                None => hdsj::msj::Msj::default(),
            };
            if let Some(records) = sort_mem {
                msj.sort_mem_records = records;
            }
            Box::new(msj)
        }
        other => {
            return Err(Error::InvalidInput(format!(
                "unknown --algo {other:?} (bf, sm1d, grid, ekdb, rsj, msj)"
            )));
        }
    })
}

/// Builds a storage engine when any of the chaos/pool flags are present.
/// Returns `None` when none are given, so the algorithms keep their own
/// default engines.
fn make_engine(flags: &HashMap<String, String>) -> Result<Option<StorageEngine>> {
    let wants_engine = flags.contains_key("inject-faults")
        || flags.contains_key("retries")
        || flags.contains_key("pool-pages");
    if !wants_engine {
        return Ok(None);
    }
    let pool_pages: usize = num(flags, "pool-pages", 256)?;
    if pool_pages == 0 {
        return Err(Error::InvalidInput(
            "--pool-pages must be at least 1".into(),
        ));
    }
    let retries: u32 = num(flags, "retries", 0)?;
    let retry = if retries > 0 {
        RetryPolicy::backoff(retries)
    } else {
        RetryPolicy::none()
    };
    let plan = match flags.get("inject-faults") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::new(0),
    };
    Ok(Some(
        StorageEngine::builder(pool_pages)
            .retry(retry)
            .faults(plan)
            .in_memory(),
    ))
}

/// Builds the query's lifecycle context from `--deadline-ms` /
/// `--mem-budget-pages`, or `None` when neither limit is requested.
fn make_lifecycle(flags: &HashMap<String, String>) -> Result<Option<LifecycleCtx>> {
    let deadline_ms: Option<u64> = match flags.get("deadline-ms") {
        Some(v) => Some(
            v.parse()
                .map_err(|e| Error::InvalidInput(format!("--deadline-ms {v:?}: {e}")))?,
        ),
        None => None,
    };
    let page_budget: Option<u64> = match flags.get("mem-budget-pages") {
        Some(v) => Some(
            v.parse()
                .map_err(|e| Error::InvalidInput(format!("--mem-budget-pages {v:?}: {e}")))?,
        ),
        None => None,
    };
    if deadline_ms.is_none() && page_budget.is_none() {
        return Ok(None);
    }
    let mut builder = LifecycleCtx::builder();
    if let Some(ms) = deadline_ms {
        builder = builder.deadline_ms(ms);
    }
    if let Some(pages) = page_budget {
        builder = builder.page_budget(pages);
    }
    Ok(Some(builder.build()))
}

/// A stable fingerprint of the join parameters, stored in the manifest so
/// `--resume` refuses to mix checkpoints from a different query (FNV-1a;
/// intentionally independent of `std`'s hasher, whose output may change
/// across toolchains while manifests persist on disk).
fn join_fingerprint(
    spec: &JoinSpec,
    input: &hdsj::core::Dataset,
    other: &Option<hdsj::core::Dataset>,
) -> u64 {
    let desc = format!(
        "msj|eps={:016x}|metric={:?}|n={}|d={}|other={}",
        spec.eps.to_bits(),
        spec.metric,
        input.len(),
        input.dims(),
        other.as_ref().map(|d| d.len() as i64).unwrap_or(-1),
    );
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in desc.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the checkpointing MSJ for `--resume MANIFEST`: page data lives in
/// `MANIFEST.pages`; an existing manifest is replayed (reusing completed
/// sort runs and level files), a missing one starts a fresh checkpointed
/// run. The chaos flags (`--inject-faults`, `--retries`, `--pool-pages`)
/// compose so a crash-fault run and its resume share one configuration.
#[allow(clippy::too_many_arguments)]
fn make_resumable_msj(
    flags: &HashMap<String, String>,
    algo_name: &str,
    manifest_path: &Path,
    spec: &JoinSpec,
    input: &hdsj::core::Dataset,
    other: &Option<hdsj::core::Dataset>,
    sort_mem: Option<usize>,
) -> Result<Box<dyn SimilarityJoin>> {
    if algo_name != "msj" {
        return Err(Error::Unsupported(format!(
            "--resume needs the checkpointing algorithm (msj), not {algo_name:?}"
        )));
    }
    let pool_pages: usize = num(flags, "pool-pages", 256)?;
    if pool_pages == 0 {
        return Err(Error::InvalidInput(
            "--pool-pages must be at least 1".into(),
        ));
    }
    let retries: u32 = num(flags, "retries", 0)?;
    let retry = if retries > 0 {
        RetryPolicy::backoff(retries)
    } else {
        RetryPolicy::none()
    };
    let plan = match flags.get("inject-faults") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::new(0),
    };
    let mut data_path = manifest_path.as_os_str().to_owned();
    data_path.push(".pages");
    let data_path = PathBuf::from(data_path);
    let fingerprint = join_fingerprint(spec, input, other);

    let (engine, ckpt, state);
    if manifest_path.exists() {
        let (manifest, records) = Manifest::open_append(manifest_path)?;
        state = ManifestState::replay(&records)?;
        if state.fingerprint != Some(fingerprint) {
            return Err(Error::InvalidInput(format!(
                "manifest {} belongs to a different join (input/eps/metric \
                 changed since it was written); delete it to start over",
                manifest_path.display()
            )));
        }
        engine = StorageEngine::builder(pool_pages)
            .retry(retry)
            .faults(plan)
            .file_backed_open(&data_path)?;
        engine.adopt_freelist(state.orphan_pages(engine.pool().num_pages()))?;
        ckpt = Checkpointer::new(&engine, manifest);
    } else {
        engine = StorageEngine::builder(pool_pages)
            .retry(retry)
            .faults(plan)
            .file_backed(&data_path)?;
        state = ManifestState::default();
        ckpt = Checkpointer::new(&engine, Manifest::create(manifest_path, fingerprint)?);
    }
    let mut msj = hdsj::msj::Msj::with_engine(engine);
    if let Some(records) = sort_mem {
        msj.sort_mem_records = records;
    }
    msj.set_recovery(ckpt, state);
    Ok(Box::new(msj))
}

fn join(flags: &HashMap<String, String>) -> Result<()> {
    let algo_name = req(flags, "algo")?;
    let metric = parse_metric(flags.get("metric").map(|s| s.as_str()).unwrap_or("l2"))?;

    let input = dio::load_csv(Path::new(req(flags, "input")?))?;
    // Threshold: explicit --eps, or calibrated from --target-pairs by
    // sampling pair distances.
    let eps: f64 = match (flags.get("eps"), flags.get("target-pairs")) {
        (Some(e), _) => e
            .parse()
            .map_err(|e| Error::InvalidInput(format!("--eps: {e}")))?,
        (None, Some(t)) => {
            let target: f64 = t
                .parse()
                .map_err(|e| Error::InvalidInput(format!("--target-pairs: {e}")))?;
            let eps = data::eps_for_target_pairs(&input, metric, target, 200_000, 42);
            println!("calibrated eps = {eps:.6} for ~{target} pairs");
            eps
        }
        (None, None) => {
            return Err(Error::InvalidInput(
                "missing required flag --eps (or --target-pairs)".into(),
            ));
        }
    };
    let spec = JoinSpec::new(eps, metric);
    spec.validate()?;
    // Validate before the (possibly long) join so a typo fails fast.
    let json_stats = match flags.get("stats").map(|s| s.as_str()) {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(Error::InvalidInput(format!(
                "unknown --stats {other:?} (human, json)"
            )));
        }
    };
    input.check_unit_domain().map_err(|e| {
        Error::InvalidInput(format!(
            "{e}\nhint: hdsj joins run on [0,1)^d data; rescale your CSV first"
        ))
    })?;
    let other = match flags.get("other") {
        Some(path) => {
            let ds = dio::load_csv(Path::new(path))?;
            ds.check_unit_domain()?;
            Some(ds)
        }
        None => None,
    };

    let sort_mem: Option<usize> = match flags.get("sort-mem-records") {
        Some(v) => Some(
            v.parse()
                .map_err(|e| Error::InvalidInput(format!("--sort-mem-records {v:?}: {e}")))?,
        ),
        None => None,
    };
    let mut algo = match flags.get("resume") {
        Some(manifest) => make_resumable_msj(
            flags,
            algo_name,
            Path::new(manifest),
            &spec,
            &input,
            &other,
            sort_mem,
        )?,
        None => make_algo(algo_name, make_engine(flags)?, sort_mem)?,
    };
    // --threads: explicit flag wins; otherwise HDSJ_THREADS or 1 (serial).
    // 0 resolves to all available cores inside the exec pool.
    let threads: usize = num(flags, "threads", hdsj::exec::default_threads())?;
    algo.set_threads(threads);
    if let Some(lc) = make_lifecycle(flags)? {
        algo.set_lifecycle(lc);
    }

    // --trace installs a JSONL tracer for the whole run: the algorithm's
    // spans/counters plus (via the process global) any generator spans.
    let tracer = match flags.get("trace") {
        Some(path) => {
            let tracer = hdsj::obs::Tracer::jsonl(Path::new(path)).map_err(|e| {
                Error::InvalidInput(format!("cannot create trace file {path:?}: {e}"))
            })?;
            hdsj::obs::set_global(tracer.clone());
            algo.set_tracer(tracer.clone());
            Some(tracer)
        }
        None => None,
    };

    let mut sink = VecSink::default();
    let started = std::time::Instant::now();
    let stats = match &other {
        Some(other) => algo.join(&input, other, &spec, &mut sink)?,
        None => algo.self_join(&input, &spec, &mut sink)?,
    };
    let elapsed = started.elapsed();
    if let Some(tracer) = &tracer {
        tracer.flush();
        hdsj::obs::set_global(hdsj::obs::Tracer::disabled());
    }

    if json_stats {
        println!("{}", stats_json(algo.name(), &stats, elapsed));
    } else {
        println!("algorithm : {}", algo.name());
        println!("pairs     : {}", stats.results);
        if !flags.contains_key("quiet") {
            // Detail block on stderr: visible in a terminal, out of the way
            // of pipelines consuming the stdout summary.
            eprintln!(
                "candidates: {} (precision {:.4})",
                stats.candidates,
                stats.filter_precision()
            );
            eprintln!("time      : {elapsed:?}");
            for phase in &stats.phases {
                eprintln!("  {:<8}: {:?}", phase.name, phase.elapsed);
            }
            if stats.io.total() > 0 {
                eprintln!(
                    "io        : {} reads, {} writes, {} hits (hit rate {:.3}), \
                     {} evictions, {} writebacks",
                    stats.io.reads,
                    stats.io.writes,
                    stats.io.hits,
                    stats.io.hit_rate(),
                    stats.io.evictions,
                    stats.io.writebacks
                );
                if stats.io.faults > 0 || stats.io.retries > 0 || stats.io.corruptions > 0 {
                    eprintln!(
                        "faults    : {} injected, {} retries, {} corruptions detected",
                        stats.io.faults, stats.io.retries, stats.io.corruptions
                    );
                }
            }
        }
    }

    if let Some(out) = flags.get("out") {
        let mut f = std::io::BufWriter::new(std::fs::File::create(out)?);
        for (i, j) in &sink.pairs {
            writeln!(f, "{i},{j}")?;
        }
        f.flush()?;
        if !json_stats {
            println!("pairs written to {out}");
        }
    } else if !json_stats && !flags.contains_key("quiet") && !sink.pairs.is_empty() {
        for (i, j) in sink.pairs.iter().take(10) {
            println!("  ({i}, {j})");
        }
        if sink.pairs.len() > 10 {
            println!(
                "  ... {} more (use --out FILE to save)",
                sink.pairs.len() - 10
            );
        }
    }
    Ok(())
}

/// One machine-readable JSON object for `--stats json`, built with the
/// `hdsj-obs` encoder so escaping and float formatting stay consistent
/// with trace files.
fn stats_json(
    algo: &str,
    stats: &hdsj::core::JoinStats,
    elapsed: std::time::Duration,
) -> String {
    use hdsj::obs::json::{encode_f64, encode_str};
    let mut s = String::from("{");
    s.push_str(&format!("\"algorithm\":{},", encode_str(algo)));
    s.push_str(&format!("\"results\":{},", stats.results));
    s.push_str(&format!("\"candidates\":{},", stats.candidates));
    s.push_str(&format!("\"dist_evals\":{},", stats.dist_evals));
    s.push_str(&format!(
        "\"filter_precision\":{},",
        encode_f64(stats.filter_precision())
    ));
    s.push_str(&format!("\"time_us\":{},", elapsed.as_micros()));
    s.push_str(&format!("\"structure_bytes\":{},", stats.structure_bytes));
    s.push_str("\"phases\":{");
    for (i, phase) in stats.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{}:{}",
            encode_str(phase.name),
            phase.elapsed.as_micros()
        ));
    }
    s.push_str("},\"io\":{");
    s.push_str(&format!("\"reads\":{},", stats.io.reads));
    s.push_str(&format!("\"writes\":{},", stats.io.writes));
    s.push_str(&format!("\"allocs\":{},", stats.io.allocs));
    s.push_str(&format!("\"hits\":{},", stats.io.hits));
    s.push_str(&format!("\"evictions\":{},", stats.io.evictions));
    s.push_str(&format!("\"writebacks\":{},", stats.io.writebacks));
    s.push_str(&format!("\"retries\":{},", stats.io.retries));
    s.push_str(&format!("\"faults\":{},", stats.io.faults));
    s.push_str(&format!("\"corruptions\":{},", stats.io.corruptions));
    s.push_str(&format!("\"hit_rate\":{}", encode_f64(stats.io.hit_rate())));
    s.push_str("}}");
    s
}

/// `hdsj trace-report FILE [--phases] [--critical-path]`: renders a
/// JSONL trace as a phase tree, a CPU/IO/Wait cost-attribution table,
/// or the longest span chain.
fn trace_report(args: &[String]) -> Result<()> {
    let usage = "usage: hdsj trace-report FILE [--phases] [--critical-path]";
    let Some((path, rest)) = args.split_first() else {
        return Err(Error::InvalidInput(usage.into()));
    };
    let mut phases = false;
    let mut critical = false;
    for flag in rest {
        match flag.as_str() {
            "--phases" => phases = true,
            "--critical-path" => critical = true,
            other => {
                return Err(Error::InvalidInput(format!(
                    "unknown trace-report flag {other:?}; {usage}"
                )));
            }
        }
    }
    let text = std::fs::read_to_string(path)?;
    let trace = hdsj::obs::report::Trace::parse(&text)
        .map_err(|e| Error::InvalidInput(format!("{path}: {e}")))?;
    if !phases && !critical {
        print!("{}", hdsj::obs::report::render(&trace, 10));
        return Ok(());
    }
    if phases {
        print!("{}", hdsj::obs::report::render_phases(&trace));
    }
    if critical {
        print!("{}", hdsj::obs::report::render_critical_path(&trace));
    }
    Ok(())
}

/// `hdsj stats FILE [--format human|prom]`: renders the metrics embedded
/// in a JSONL trace (counters, gauges, histograms) as a human-readable
/// table or Prometheus text exposition format.
fn stats_cmd(args: &[String]) -> Result<()> {
    let usage = "usage: hdsj stats FILE [--format human|prom]";
    let Some((path, rest)) = args.split_first() else {
        return Err(Error::InvalidInput(usage.into()));
    };
    let flags = parse_flags(rest)?;
    let format = flags.get("format").map(String::as_str).unwrap_or("human");
    let text = std::fs::read_to_string(path)?;
    let trace = hdsj::obs::report::Trace::parse(&text)
        .map_err(|e| Error::InvalidInput(format!("{path}: {e}")))?;
    let snapshot = trace
        .metrics_snapshot()
        .map_err(|e| Error::InvalidInput(format!("{path}: {e}")))?;
    match format {
        "human" => print!("{}", snapshot.to_human()),
        "prom" => print!("{}", snapshot.to_prometheus()),
        other => {
            return Err(Error::InvalidInput(format!(
                "unknown --format {other:?}; expected human or prom"
            )));
        }
    }
    Ok(())
}

fn info(flags: &HashMap<String, String>) -> Result<()> {
    let ds = dio::load_csv(Path::new(req(flags, "input")?))?;
    println!("points : {}", ds.len());
    println!("dims   : {}", ds.dims());
    println!("bytes  : {}", ds.bytes());
    let in_unit = ds.check_unit_domain().is_ok();
    println!(
        "domain : {}",
        if in_unit {
            "[0,1)^d ✓"
        } else {
            "NOT unit-domain (rescale before joining)"
        }
    );
    // Per-dimension ranges (first 8 dims).
    for d in 0..ds.dims().min(8) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, p) in ds.iter() {
            lo = lo.min(p[d]);
            hi = hi.max(p[d]);
        }
        println!("  dim {d}: [{lo:.4}, {hi:.4}]");
    }
    Ok(())
}

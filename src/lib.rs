//! # hdsj — High Dimensional Similarity Joins
//!
//! Umbrella crate re-exporting the whole workspace: the MSJ algorithm (the
//! paper's contribution), the RSJ / ε-KDB / grid / brute-force baselines,
//! the space-filling-curve and paged-storage substrates, and the workload
//! generators. See the repository README for a tour and `DESIGN.md` for the
//! system inventory.
//!
//! ## Quickstart
//!
//! ```
//! use hdsj::core::{JoinSpec, Metric, SimilarityJoin, VecSink};
//! use hdsj::data::uniform;
//! use hdsj::msj::Msj;
//!
//! let points = uniform(8, 500, 42).unwrap(); // 500 points in [0,1)^8
//! let spec = JoinSpec::new(0.4, Metric::L2);
//! let mut sink = VecSink::default();
//! let stats = Msj::default().self_join(&points, &spec, &mut sink).unwrap();
//! assert_eq!(stats.results as usize, sink.pairs.len());
//! ```
#![forbid(unsafe_code)]

pub use hdsj_bruteforce as bruteforce;
pub use hdsj_core as core;
pub use hdsj_core::obs;
pub use hdsj_data as data;
pub use hdsj_ekdb as ekdb;
pub use hdsj_exec as exec;
pub use hdsj_grid as grid;
pub use hdsj_msj as msj;
pub use hdsj_rtree as rtree;
pub use hdsj_sfc as sfc;
pub use hdsj_sortmerge as sortmerge;
pub use hdsj_storage as storage;

/// Every algorithm in the workspace behind one constructor, for harnesses
/// and examples that iterate over "all algorithms".
pub fn all_algorithms() -> Vec<Box<dyn hdsj_core::SimilarityJoin>> {
    vec![
        Box::new(hdsj_bruteforce::BruteForce::default()),
        Box::new(hdsj_sortmerge::SortMergeJoin::default()),
        Box::new(hdsj_grid::GridJoin::default()),
        Box::new(hdsj_ekdb::EkdbJoin::default()),
        Box::new(hdsj_rtree::RsjJoin::default()),
        Box::new(hdsj_msj::Msj::default()),
    ]
}

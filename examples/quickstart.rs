//! Quickstart: run an ε-similarity self-join with MSJ and cross-check it
//! against brute force.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hdsj::core::{JoinSpec, Metric, SimilarityJoin, VecSink};
use hdsj::data::uniform;
use hdsj::msj::Msj;

fn main() -> hdsj::core::Result<()> {
    // 5,000 uniform points in the 8-dimensional unit cube.
    let points = uniform(8, 5_000, 1234)?;

    // Find every pair within Euclidean distance 0.25.
    let spec = JoinSpec::new(0.25, Metric::L2);

    let mut sink = VecSink::default();
    let stats = Msj::default().self_join(&points, &spec, &mut sink)?;

    println!(
        "MSJ self-join of {} points (d = {}):",
        points.len(),
        points.dims()
    );
    println!("  result pairs : {}", stats.results);
    println!(
        "  candidates   : {} (filter precision {:.3})",
        stats.candidates,
        stats.filter_precision()
    );
    for phase in &stats.phases {
        println!("  phase {:<7}: {:?}", phase.name, phase.elapsed);
    }

    // Show a few concrete matches.
    for &(i, j) in sink.pairs.iter().take(3) {
        let d = spec.metric.distance(points.point(i), points.point(j));
        println!("  e.g. points {i} and {j} are {d:.4} apart");
    }

    // Cross-check against the brute-force ground truth.
    let mut bf_sink = VecSink::default();
    hdsj::bruteforce::BruteForce::default().self_join(&points, &spec, &mut bf_sink)?;
    hdsj::core::verify::assert_same_results("MSJ", &bf_sink.pairs, &sink.pairs);
    println!("verified: MSJ result set identical to brute force ✓");
    Ok(())
}

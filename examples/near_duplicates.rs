//! Near-duplicate detection over clustered feature vectors — the data
//! cleaning scenario the similarity-join literature motivates: records are
//! embedded as points and near-duplicates are pairs within ε.
//!
//! The example also shows picking the right algorithm per regime: the grid
//! join wins at low dimensionality, MSJ takes over when the grid's 3^d
//! neighbourhood becomes infeasible.
//!
//! ```sh
//! cargo run --release --example near_duplicates
//! ```

use hdsj::core::{CountSink, JoinSpec, Metric, SimilarityJoin, VecSink};
use hdsj::data::{gaussian_clusters, ClusterSpec};
use hdsj::grid::GridJoin;
use hdsj::msj::Msj;
use std::collections::HashMap;

fn main() -> hdsj::core::Result<()> {
    // 20,000 "records": duplicates cluster tightly around shared sources.
    let dims = 6;
    let spec_ds = ClusterSpec {
        clusters: 2_000,
        sigma: 0.002,
        zipf_theta: 1.2,
        noise_fraction: 0.3,
    };
    let records = gaussian_clusters(dims, 20_000, spec_ds, 5150)?;
    let spec = JoinSpec::new(0.01, Metric::L2);

    // Low dimensionality: the ε-grid is the right tool.
    let mut sink = VecSink::default();
    let stats = GridJoin::default().self_join(&records, &spec, &mut sink)?;
    println!(
        "GRID found {} near-duplicate pairs among {} records ({} candidates)",
        stats.results,
        records.len(),
        stats.candidates
    );

    // Group pairs into duplicate clusters with a union-find.
    let mut parent: Vec<u32> = (0..records.len() as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for &(i, j) in &sink.pairs {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri as usize] = rj;
        }
    }
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for i in 0..records.len() as u32 {
        *sizes.entry(find(&mut parent, i)).or_default() += 1;
    }
    let mut cluster_sizes: Vec<usize> = sizes.into_values().filter(|&s| s > 1).collect();
    cluster_sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "{} duplicate groups; largest: {:?}",
        cluster_sizes.len(),
        &cluster_sizes[..cluster_sizes.len().min(5)]
    );

    // High dimensionality: the grid refuses (3^24 neighbours!), MSJ carries on.
    let wide = gaussian_clusters(24, 5_000, spec_ds, 5151)?;
    let wide_spec = JoinSpec::new(0.01, Metric::L2);
    let mut count = CountSink::default();
    match GridJoin::default().self_join(&wide, &wide_spec, &mut count) {
        Err(e) => println!("\nat d=24 the grid declines: {e}"),
        Ok(_) => unreachable!("grid must refuse d=24"),
    }
    let stats = Msj::default().self_join(&wide, &wide_spec, &mut count)?;
    println!(
        "MSJ handles d=24 fine: {} near-duplicate pairs",
        stats.results
    );
    Ok(())
}

//! Time-series similarity search — the workload the paper's "real data"
//! experiments model.
//!
//! Pipeline (the standard one from the time-series indexing literature the
//! paper builds on): generate a collection of series, reduce each to its
//! leading DFT coefficients, then run an ε-similarity self-join over the
//! feature vectors to find series with similar *shape*. Because distances
//! in truncated Fourier space lower-bound distances on the raw
//! (mean-centred) series, the join result is a superset of the truly
//! similar pairs, which a final verification pass refines.
//!
//! ```sh
//! cargo run --release --example timeseries_similarity
//! ```

use hdsj::core::{JoinSpec, Metric, SimilarityJoin, VecSink};
use hdsj::data::timeseries::{dft_coeffs, fourier_dataset, random_walk, seasonal};
use hdsj::msj::Msj;

/// Euclidean distance between two raw series.
fn series_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn main() -> hdsj::core::Result<()> {
    let num_series = 3_000;
    let series_len = 128;
    let feature_dims = 8;

    // Feature extraction: 8 dims = first 4 complex DFT coefficients.
    let features = fourier_dataset(feature_dims, num_series, series_len, 77)?;
    println!(
        "{num_series} series of length {series_len} -> {feature_dims}-dimensional Fourier features"
    );

    // Join in feature space: pairs of series with similar low-frequency
    // shape. ε picked to return a workable shortlist.
    let spec = JoinSpec::new(0.05, Metric::L2);
    let mut sink = VecSink::default();
    let stats = Msj::default().self_join(&features, &spec, &mut sink)?;
    println!(
        "feature-space join: {} candidate series pairs ({} filter candidates)",
        stats.results, stats.candidates
    );

    // Refine a few pairs on the raw series to show the shortlist is real:
    // regenerate the series deterministically from their seeds.
    let make_series = |i: usize| -> Vec<f64> {
        let mut s = if i.is_multiple_of(3) {
            seasonal(series_len, 16 + (i % 48), 3.0, 77u64.wrapping_add(i as u64))
        } else {
            random_walk(series_len, 77u64.wrapping_add(i as u64))
        };
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        for v in s.iter_mut() {
            *v -= mean;
        }
        s
    };

    println!("\nclosest raw-series distances among the first shortlisted pairs:");
    for &(i, j) in sink.pairs.iter().take(5) {
        let (a, b) = (make_series(i as usize), make_series(j as usize));
        let raw = series_distance(&a, &b);
        let feat = spec.metric.distance(features.point(i), features.point(j));
        println!("  series {i:>5} ~ {j:>5}: feature dist {feat:.4}, raw dist {raw:.2}");
        // Sanity: features are mean-normalized DFT magnitudes, so similar
        // features must mean similar dominant shape.
        let coeffs_a = dft_coeffs(&a, 2);
        let coeffs_b = dft_coeffs(&b, 2);
        let lead = (coeffs_a[0] - coeffs_b[0]).abs();
        println!("        leading-coefficient gap {lead:.3}");
    }

    println!("\n(every pair above was found without ever comparing raw series pairwise)");
    Ok(())
}

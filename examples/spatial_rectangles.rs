//! Rectangle intersection joins with S3J — the Size Separation Spatial
//! Join that MSJ generalizes. A classic GIS-flavoured workload: find every
//! overlapping pair between a layer of land parcels (many small boxes) and
//! a layer of zoning regions (few large boxes).
//!
//! ```sh
//! cargo run --release --example spatial_rectangles
//! ```

use hdsj::core::{Rect, VecSink};
use hdsj::msj::s3j::S3j;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn boxes(n: usize, min_side: f64, max_side: f64, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lo: Vec<f64> = (0..2).map(|_| rng.gen::<f64>() * 0.9).collect();
            let hi: Vec<f64> = lo
                .iter()
                .map(|&v| (v + min_side + rng.gen::<f64>() * (max_side - min_side)).min(0.999))
                .collect();
            Rect::new(lo, hi)
        })
        .collect()
}

fn main() -> hdsj::core::Result<()> {
    // 30,000 small parcels, 200 large zoning regions.
    let parcels = boxes(30_000, 0.001, 0.01, 1);
    let zones = boxes(200, 0.05, 0.3, 2);

    let s3j = S3j::default();
    let mut sink = VecSink::default();
    let stats = s3j.join(&parcels, &zones, &mut sink)?;
    println!(
        "parcels × zones: {} intersecting pairs ({} candidates, {:.1}% precision)",
        stats.results,
        stats.candidates,
        stats.filter_precision() * 100.0
    );
    for phase in &stats.phases {
        println!("  {:<7}: {:?}", phase.name, phase.elapsed);
    }

    // Count parcels per zone (a spatial aggregate over the join result).
    let mut per_zone = vec![0usize; zones.len()];
    for &(_, z) in &sink.pairs {
        per_zone[z as usize] += 1;
    }
    let busiest = per_zone
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .unwrap_or((0, &0));
    println!("busiest zone: #{} with {} parcels", busiest.0, busiest.1);

    // Self-join of the parcels: overlapping parcels are digitization errors.
    let mut overlaps = VecSink::default();
    let stats = s3j.self_join(&parcels, &mut overlaps)?;
    println!(
        "\nparcel overlap check: {} overlapping parcel pairs found \
         (size separation put the quadratic work where the big boxes are)",
        stats.results
    );
    Ok(())
}

//! Distance joins without a threshold: k nearest neighbours and k closest
//! pairs on the paged R-tree — what to reach for when no sensible ε is
//! known in advance.
//!
//! ```sh
//! cargo run --release --example closest_pairs
//! ```

use hdsj::data::{gaussian_clusters, ClusterSpec};
use hdsj::rtree::{BuildStrategy, RTree};
use hdsj::storage::StorageEngine;

fn main() -> hdsj::core::Result<()> {
    // A clustered dataset: sensors scattered around a few installations.
    let sensors = gaussian_clusters(
        3,
        20_000,
        ClusterSpec {
            clusters: 12,
            sigma: 0.03,
            noise_fraction: 0.05,
            ..Default::default()
        },
        99,
    )?;
    let engine = StorageEngine::in_memory(2048);
    let tree = RTree::build(&engine, &sensors, BuildStrategy::HilbertPack, 0.7)?;
    println!(
        "indexed {} sensors in a {}-level R-tree ({} pages)",
        tree.len(),
        tree.height(),
        tree.num_pages()
    );

    // kNN: the 5 sensors nearest an incident location.
    let incident = [0.42, 0.58, 0.33];
    let nearest = tree.knn(&incident, 5)?;
    println!("\n5 sensors nearest to {incident:?}:");
    for n in &nearest {
        println!("  sensor {:>6}  dist {:.5}", n.id, n.dist);
    }

    // k closest pairs: the 10 most redundant sensor placements.
    let redundant = tree.closest_pairs_self(10)?;
    println!("\n10 most redundant sensor pairs (closest placements):");
    for p in &redundant {
        println!("  {:>6} ~ {:>6}  dist {:.6}", p.i, p.j, p.dist);
    }

    // Cross-dataset: which proposed sites duplicate existing sensors?
    let proposals = gaussian_clusters(
        3,
        500,
        ClusterSpec {
            clusters: 12,
            sigma: 0.03,
            ..Default::default()
        },
        100,
    )?;
    let proposal_tree = RTree::build(&engine, &proposals, BuildStrategy::Str, 0.7)?;
    let conflicts = proposal_tree.closest_pairs(&tree, 5)?;
    println!("\n5 proposed sites closest to an existing sensor:");
    for p in &conflicts {
        println!(
            "  proposal {:>4} ~ sensor {:>6}  dist {:.6}",
            p.i, p.j, p.dist
        );
    }
    println!(
        "\n(all three queries ran best-first over the same paged index: {} page reads total)",
        engine.io_counters().reads
    );
    Ok(())
}

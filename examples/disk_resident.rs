//! Disk-resident joins: run MSJ and RSJ on a real file-backed storage
//! engine with a small buffer pool, and watch the page I/O counters — the
//! setting the paper's I/O experiments (E4, E11) measure.
//!
//! ```sh
//! cargo run --release --example disk_resident
//! ```

use hdsj::core::{CountSink, JoinSpec, Metric, SimilarityJoin};
use hdsj::data::uniform;
use hdsj::msj::Msj;
use hdsj::rtree::RsjJoin;
use hdsj::storage::StorageEngine;

fn main() -> hdsj::core::Result<()> {
    let dims = 8;
    let n = 30_000;
    let points = uniform(dims, n, 321)?;
    let spec = JoinSpec::new(0.12, Metric::L2);

    let dir = std::env::temp_dir().join(format!("hdsj-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    for pool_pages in [16usize, 256] {
        println!(
            "--- buffer pool: {pool_pages} frames ({} KiB) ---",
            pool_pages * 8
        );

        let msj_engine =
            StorageEngine::file_backed(&dir.join(format!("msj-{pool_pages}.db")), pool_pages)?;
        let mut msj = Msj::with_engine(msj_engine);
        let mut sink = CountSink::default();
        let stats = msj.self_join(&points, &spec, &mut sink)?;
        println!(
            "MSJ : {} pairs, io: {} reads / {} writes, peak sweep memory {} bytes",
            stats.results, stats.io.reads, stats.io.writes, stats.structure_bytes
        );

        let rsj_engine =
            StorageEngine::file_backed(&dir.join(format!("rsj-{pool_pages}.db")), pool_pages)?;
        let mut rsj = RsjJoin::with_engine(rsj_engine);
        let mut sink = CountSink::default();
        let stats = rsj.self_join(&points, &spec, &mut sink)?;
        println!(
            "RSJ : {} pairs, io: {} reads / {} writes, tree size {} pages",
            stats.results,
            stats.io.reads,
            stats.io.writes,
            stats.structure_bytes / 8192
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("\nnote how MSJ's sequential level-file I/O barely notices the small pool,");
    println!("while RSJ's random tree traversal thrashes it.");
    Ok(())
}

//! Selectivity planning: choose ε analytically or by sampling before
//! paying for the join — the query-optimizer workflow around similarity
//! joins.
//!
//! ```sh
//! cargo run --release --example selectivity
//! ```

use hdsj::core::{CountSink, JoinSpec, Metric, SimilarityJoin};
use hdsj::data::analytic::{ball_volume, eps_for_expected_pairs};
use hdsj::data::{estimate_self_join_size, uniform};
use hdsj::msj::Msj;

fn main() -> hdsj::core::Result<()> {
    let dims = 6;
    let n = 20_000;
    let points = uniform(dims, n, 777)?;

    // 1. Analytic calibration (uniform data): pick ε for ~50k result pairs.
    let target = 50_000.0;
    let eps = eps_for_expected_pairs(Metric::L2, dims, n, target);
    println!("analytic: eps = {eps:.4} should yield ~{target} pairs at d={dims}, n={n}");
    println!(
        "  (L2 ball volume at that radius: {:.3e})",
        ball_volume(Metric::L2, dims, eps)
    );

    // 2. Sampling estimate — works on any distribution, not just uniform.
    let estimated = estimate_self_join_size(&points, Metric::L2, eps, 200_000, 1);
    println!("sampling: estimates {estimated:.0} pairs for that eps");

    // 3. Ground truth.
    let mut sink = CountSink::default();
    let stats =
        Msj::default().self_join(&points, &JoinSpec::new(eps, Metric::L2), &mut sink)?;
    println!("measured: {} pairs", stats.results);

    let analytic_err = (target - stats.results as f64).abs() / stats.results as f64;
    let sampling_err = (estimated - stats.results as f64).abs() / stats.results as f64;
    println!(
        "\nrelative error — analytic: {:.1}% (boundary effects), sampling: {:.1}%",
        analytic_err * 100.0,
        sampling_err * 100.0
    );

    // 4. The planning payoff: the estimator is orders of magnitude cheaper
    //    than the join it predicts.
    let t0 = std::time::Instant::now();
    estimate_self_join_size(&points, Metric::L2, eps, 200_000, 2);
    let est_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let mut sink = CountSink::default();
    Msj::default().self_join(&points, &JoinSpec::new(eps, Metric::L2), &mut sink)?;
    let join_time = t1.elapsed();
    println!("estimator: {est_time:?} vs join: {join_time:?}");
    Ok(())
}

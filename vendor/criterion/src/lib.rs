//! Minimal stand-in for the `criterion` crate (vendored offline shim).
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input` /
//! `sample_size` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! warm-up + timed-samples loop that prints a mean/min per benchmark.
//! No statistics, plots, or baseline comparisons; enough to keep
//! `cargo bench` (and `cargo build --benches`) working offline.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as re-exported by criterion.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { full: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { full: s }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
    last_min: Duration,
}

impl Bencher {
    /// Times `f`: a short warm-up, then `samples` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for batches of >= ~1ms.
        let calib = Instant::now();
        std_black_box(f());
        let once = calib.elapsed().max(Duration::from_nanos(20));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000)
            as usize;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_batch {
                std_black_box(f());
            }
            let dt = t.elapsed();
            let per_iter = dt / per_batch as u32;
            min = min.min(per_iter);
            total += dt;
            iters += per_batch;
        }
        self.last_mean = total / iters.max(1) as u32;
        self.last_min = min;
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.full, &b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.full, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        println!(
            "bench {:<48} mean {:>12?}  min {:>12?}",
            format!("{}/{}", self.name, id),
            b.last_mean,
            b.last_min
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "criterion".to_string(),
            sample_size: 20,
            _criterion: self,
        };
        group.bench_function(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_trivial_payload() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_with_input(BenchmarkId::new("mul", 3u32), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}

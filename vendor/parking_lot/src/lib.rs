//! Minimal std-backed stand-in for the `parking_lot` crate.
//!
//! This workspace builds in fully offline environments with no registry
//! access, so the external crates it names are satisfied by small vendored
//! shims wired up through `[patch.crates-io]`. Only the API surface the
//! workspace actually uses is provided: `Mutex`/`RwLock` with the
//! poison-free `lock()`/`read()`/`write()` signatures parking_lot is known
//! for. Poisoned std locks are recovered transparently (`into_inner` on the
//! poison error), which matches parking_lot's "no poisoning" semantics
//! closely enough for this codebase.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()` API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}

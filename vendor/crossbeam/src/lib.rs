//! Minimal stand-in for the `crossbeam` crate (vendored offline shim).
//!
//! Implements only what this workspace uses:
//!
//! * [`thread::scope`] — crossbeam's scoped-thread API (closure receives a
//!   scope handle, `scope` returns `thread::Result`), layered over
//!   `std::thread::scope` with a `catch_unwind` to translate stray panics
//!   into the `Err` return crossbeam promises.
//! * [`channel::bounded`] — a blocking MPMC channel built from a mutex,
//!   a ring buffer, and two condvars, with crossbeam's disconnect
//!   semantics: `send` fails once all receivers are gone, `recv`/`iter`
//!   terminate once all senders are gone and the buffer drains.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Re-export of the panic-carrying result type, as in crossbeam.
    pub type Result<T> = std::thread::Result<T>;

    /// Scope handle passed to [`scope`] closures and spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope handle (so it could spawn siblings); all workspace callers
        /// ignore it.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let handle = Scope { inner: inner_scope };
                    f(&handle)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Returns `Err` if any unjoined spawned thread
    /// panicked (crossbeam's contract); panics from threads whose handles
    /// were joined surface through those `join()` results instead.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(move || {
            std::thread::scope(move |s| {
                let handle = Scope { inner: s };
                f(&handle)
            })
        }))
    }
}

pub use thread::scope;

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message, as in crossbeam.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates a bounded blocking MPMC channel of capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let cap = cap.max(1);
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues. Fails (returning the
        /// message) once all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails once the buffer is empty
        /// and all senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Blocking iterator that yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake all blocked receivers so they observe disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let a = s.spawn(|_| data[..2].iter().sum::<u64>());
            let b = s.spawn(|_| data[2..].iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panics_surface_in_handle_not_scope() {
        let res = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert_eq!(res.unwrap(), true);
    }

    #[test]
    fn mpmc_channel_delivers_everything_exactly_once() {
        let n = 10_000u32;
        let workers = 4;
        let (tx, rx) = channel::bounded::<u32>(8);
        let collected: Vec<Vec<u32>> = thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..workers {
                let rx = rx.clone();
                handles.push(s.spawn(move |_| rx.iter().collect::<Vec<u32>>()));
            }
            drop(rx);
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let mut all: Vec<u32> = collected.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<u32>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_buffer_before_reporting_disconnect() {
        let (tx, rx) = channel::bounded::<u8>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }
}

//! Minimal stand-in for the `rand` crate (vendored offline shim).
//!
//! Provides exactly the surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range}` over integer
//! and float ranges. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic for a given seed, which is all the data
//! generators and tests rely on (they never assume rand's exact stream).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, the standard construction.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring rand's trait of the same name.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (rand's `StdRng` role).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity_over_a_small_range() {
        let mut r = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}

//! Differential property tests for the SIMD kernel tiers.
//!
//! The dispatch contract (see `hdsj_core::simd`) promises that every tier
//! computes the *bit-identical* distance of the 4-lane scalar kernels and
//! the *exactly identical* `within` decision. This suite drives randomized
//! NaN-free inputs — spanning subnormals, mixed magnitudes, and both signs
//! — through every tier the host supports and pins both promises against
//! the scalar oracle, for the pair kernels and the SoA block kernels
//! alike. It also pins the SoA transpose itself as bit-lossless.
//!
//! Dimension choices deliberately straddle the kernels' structural
//! boundaries: below/at/above the 4-lane width (1..8), the 16-dimension
//! early-exit super-block (15, 16, 17), and a multi-super-block span
//! (63, 64, 65).
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj_core::soa::SoABlock;
use hdsj_core::{kernels, simd, Dataset};
use proptest::prelude::*;

const DIMS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 63, 64, 65];

/// NaN-free coordinates with wildly mixed magnitudes: unit-scale values,
/// exact zeros of both signs, subnormals, and huge/tiny extremes. Large
/// enough to stress cancellation and absorption, small enough that no
/// L1/L2 sum over 65 dimensions overflows to infinity.
fn coord() -> impl Strategy<Value = f64> {
    // The unit-scale arm repeats to weight it (the vendored proptest's
    // unions choose uniformly between arms).
    prop_oneof![
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1e6f64..1e6,
        Just(0.0),
        Just(-0.0),
        Just(5e-324),    // smallest positive subnormal
        Just(-7.4e-310), // negative subnormal
        Just(1e100),
        Just(-3.5e-150),
    ]
}

/// A pair of equal-length coordinate vectors at a boundary-straddling
/// dimensionality.
fn dims() -> impl Strategy<Value = usize> {
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

fn vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    dims().prop_flat_map(|d| {
        (
            proptest::collection::vec(coord(), d),
            proptest::collection::vec(coord(), d),
        )
    })
}

/// A small dataset (unit-scale coordinates so ε thresholds land near real
/// distances) at a boundary-straddling dimensionality.
fn small_dataset() -> impl Strategy<Value = Dataset> {
    dims().prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, d), 1..40)
            .prop_map(|rows| Dataset::from_rows(&rows).unwrap())
    })
}

/// ε values that stress the inclusive boundary: the exact distance must be
/// accepted, its predecessor/successor must flip consistently everywhere.
fn boundary_eps(dist: f64) -> [f64; 4] {
    [
        dist,
        f64::from_bits(dist.to_bits().saturating_sub(1)),
        f64::from_bits(dist.to_bits().saturating_add(1)),
        dist * 0.5,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distances_are_bit_identical_at_every_tier(pair in vec_pair()) {
        let (a, b) = pair;
        let saved = simd::level();
        for tier in simd::supported() {
            prop_assert_eq!(simd::set_level(tier), tier);
            prop_assert_eq!(
                simd::l1_distance(&a, &b).to_bits(),
                kernels::l1_distance(&a, &b).to_bits(),
                "l1 at {:?}", tier
            );
            prop_assert_eq!(
                simd::l2_distance(&a, &b).to_bits(),
                kernels::l2_distance(&a, &b).to_bits(),
                "l2 at {:?}", tier
            );
            prop_assert_eq!(
                simd::linf_distance(&a, &b).to_bits(),
                kernels::linf_distance(&a, &b).to_bits(),
                "linf at {:?}", tier
            );
            prop_assert_eq!(
                simd::lp_distance(&a, &b, 2.5).to_bits(),
                kernels::lp_distance(&a, &b, 2.5).to_bits(),
                "lp at {:?}", tier
            );
        }
        simd::set_level(saved);
    }

    #[test]
    fn within_decisions_are_exact_at_every_tier(pair in vec_pair()) {
        let (a, b) = pair;
        // ε pinned to the true distance and its bit-neighbours: the early
        // exits must agree with the full sum even exactly on the boundary.
        let d1 = kernels::l1_distance(&a, &b);
        let d2 = kernels::l2_distance(&a, &b);
        let di = kernels::linf_distance(&a, &b);
        let saved = simd::level();
        for tier in simd::supported() {
            simd::set_level(tier);
            for eps in boundary_eps(d1) {
                prop_assert_eq!(
                    simd::l1_within(&a, &b, eps),
                    kernels::l1_within(&a, &b, eps),
                    "l1 at {:?} eps {}", tier, eps
                );
            }
            for eps in boundary_eps(d2) {
                prop_assert_eq!(
                    simd::l2_within(&a, &b, eps),
                    kernels::l2_within(&a, &b, eps),
                    "l2 at {:?} eps {}", tier, eps
                );
            }
            for eps in boundary_eps(di) {
                prop_assert_eq!(
                    simd::linf_within(&a, &b, eps),
                    kernels::linf_within(&a, &b, eps),
                    "linf at {:?} eps {}", tier, eps
                );
            }
            prop_assert_eq!(
                simd::lp_within(&a, &b, d1.max(0.1), 2.5),
                kernels::lp_within(&a, &b, d1.max(0.1), 2.5),
                "lp at {:?}", tier
            );
        }
        simd::set_level(saved);
    }

    #[test]
    fn block_filters_match_pair_kernels_at_every_tier(
        ds in small_dataset(),
        eps in 0.0f64..2.5,
    ) {
        let n = ds.len() as u32;
        let block = SoABlock::from_range(&ds, 0..n);
        let probe = ds.point(0).to_vec();
        // Lane subranges exercise the ragged head/tail paths of the
        // across-candidate kernels, not just full tiles.
        let full = 0..block.len();
        let tail = block.len() / 3..block.len();
        let saved = simd::level();
        for tier in simd::supported() {
            simd::set_level(tier);
            for lanes in [full.clone(), tail.clone()] {
                let want_l1: Vec<u32> = block.ids()[lanes.clone()]
                    .iter()
                    .copied()
                    .filter(|&j| kernels::l1_within(&probe, ds.point(j), eps))
                    .collect();
                let want_l2: Vec<u32> = block.ids()[lanes.clone()]
                    .iter()
                    .copied()
                    .filter(|&j| kernels::l2_within(&probe, ds.point(j), eps))
                    .collect();
                let want_li: Vec<u32> = block.ids()[lanes.clone()]
                    .iter()
                    .copied()
                    .filter(|&j| kernels::linf_within(&probe, ds.point(j), eps))
                    .collect();
                let want_lp: Vec<u32> = block.ids()[lanes.clone()]
                    .iter()
                    .copied()
                    .filter(|&j| kernels::lp_within(&probe, ds.point(j), eps, 2.5))
                    .collect();
                let mut got = Vec::new();
                simd::l1_within_block(&probe, &block, lanes.clone(), eps, &mut got);
                prop_assert_eq!(&got, &want_l1, "l1 at {:?} lanes {:?}", tier, &lanes);
                got.clear();
                simd::l2_within_block(&probe, &block, lanes.clone(), eps, &mut got);
                prop_assert_eq!(&got, &want_l2, "l2 at {:?} lanes {:?}", tier, &lanes);
                got.clear();
                simd::linf_within_block(&probe, &block, lanes.clone(), eps, &mut got);
                prop_assert_eq!(&got, &want_li, "linf at {:?} lanes {:?}", tier, &lanes);
                got.clear();
                simd::lp_within_block(&probe, &block, lanes.clone(), eps, 2.5, &mut got);
                prop_assert_eq!(&got, &want_lp, "lp at {:?} lanes {:?}", tier, &lanes);
            }
        }
        simd::set_level(saved);
    }

    #[test]
    fn soa_transpose_round_trips_bit_exactly(ds in small_dataset()) {
        let n = ds.len() as u32;
        // Contiguous transpose: every (lane, dim) cell is the source
        // coordinate, bit for bit.
        let block = SoABlock::from_range(&ds, 0..n);
        prop_assert_eq!(block.len(), ds.len());
        for t in 0..block.len() {
            let j = block.ids()[t];
            prop_assert_eq!(j, t as u32);
            for dim in 0..ds.dims() {
                prop_assert_eq!(
                    block.value(dim, t).to_bits(),
                    ds.point(j)[dim].to_bits(),
                    "lane {} dim {}", t, dim
                );
            }
        }
        // Padding lanes replicate a real candidate, so padded kernels can
        // never fault or produce non-finite terms.
        let last = ds.point(n - 1);
        for t in block.len()..block.width() {
            for (dim, &want) in last.iter().enumerate() {
                prop_assert_eq!(block.value(dim, t).to_bits(), want.to_bits());
            }
        }
        // Arbitrary-order gather (here: reversed ids) round-trips too.
        let js: Vec<u32> = (0..n).rev().collect();
        let gathered = SoABlock::gather(&ds, &js);
        prop_assert_eq!(gathered.ids(), &js[..]);
        for (t, &j) in js.iter().enumerate() {
            for dim in 0..ds.dims() {
                prop_assert_eq!(
                    gathered.value(dim, t).to_bits(),
                    ds.point(j)[dim].to_bits(),
                    "gathered lane {} dim {}", t, dim
                );
            }
        }
    }
}

//! Disabled-tracer overhead guard.
//!
//! The instrumentation contract is that a *disabled* tracer costs one
//! branch per gated site — algorithms gate every hot-path record on
//! `tracer.enabled()` (or a hoisted `traced` bool / `Option` handle), so
//! running untraced must be indistinguishable from running
//! un-instrumented. This test pins that down on the d=64 L2 kernel
//! micro-bench: the same probe sweep with per-row disabled-tracer gating
//! must stay within 1% (plus a small absolute slack for timer jitter) of
//! the bare loop.

use hdsj_core::kernels;
use hdsj_core::obs::{names, Tracer};
use std::hint::black_box;
use std::time::{Duration, Instant};

const DIMS: usize = 64;
const POINTS: usize = 220;
const REPEATS: usize = 7;

/// Deterministic xorshift points in [0,1): no dev-dependency, identical
/// data every run.
fn make_points() -> Vec<Vec<f64>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..POINTS)
        .map(|_| (0..DIMS).map(|_| next()).collect())
        .collect()
}

/// One full sweep: every probe against every candidate through the
/// vectorized kernel. Returns the hit count to keep the loop live.
fn sweep(points: &[Vec<f64>], eps: f64, mut per_row: impl FnMut(u64)) -> u64 {
    let mut hits = 0u64;
    for x in points {
        let mut row = 0u64;
        for y in points {
            if kernels::l2_within(black_box(x), black_box(y), black_box(eps)) {
                row += 1;
            }
        }
        per_row(row);
        hits += row;
    }
    black_box(hits)
}

/// Min-of-N wall time for one configuration; the minimum is the standard
/// robust estimator for micro-bench noise (only slowdowns are noise).
fn min_time(mut run: impl FnMut() -> u64) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut hits = 0;
    for _ in 0..REPEATS {
        let started = Instant::now();
        hits = run();
        best = best.min(started.elapsed());
    }
    (best, hits)
}

#[test]
fn disabled_tracer_adds_under_one_percent_to_the_kernel_bench() {
    let points = make_points();
    // ε near the interesting regime: some hits, mostly early exits.
    let eps = 1.05;

    // Warm up caches and frequency scaling before either timed variant.
    sweep(&points, eps, |_| {});

    let (bare, bare_hits) = min_time(|| sweep(&points, eps, |_| {}));

    // The instrumented variant mirrors the algorithms' hot-path pattern:
    // hoist `enabled()` into an Option handle once, then gate every
    // per-row record on it. With the tracer disabled the handle is None
    // and each row costs one branch.
    let tracer = Tracer::disabled();
    let (gated, gated_hits) = min_time(|| {
        let hist = tracer
            .enabled()
            .then(|| tracer.histogram(names::EXEC_CHUNK_NS));
        sweep(&points, eps, |row| {
            if let Some(h) = &hist {
                h.record(row);
            }
        })
    });

    assert_eq!(bare_hits, gated_hits, "gating changed the computation");
    // <1% relative overhead, plus 200µs of absolute slack so a sub-ms
    // baseline cannot fail on timer granularity alone. The percentage
    // contract is about optimized code — unoptimized builds don't inline
    // the gating closure, so debug runs only exercise the plumbing.
    if cfg!(debug_assertions) {
        println!("debug build: measured bare={bare:?} gated={gated:?} (not asserted)");
        return;
    }
    let budget = bare + bare.mul_f64(0.01) + Duration::from_micros(200);
    assert!(
        gated <= budget,
        "disabled-tracer overhead too high: bare={bare:?} gated={gated:?} \
         budget={budget:?}"
    );
}

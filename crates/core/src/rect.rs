//! Axis-aligned hyper-rectangles (minimum bounding rectangles).

/// An axis-aligned `d`-dimensional rectangle `[lo, hi]` (closed on both
/// sides), the building block of the R-tree and ε-KDB structures.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// The empty rectangle in `d` dimensions: `lo = +∞`, `hi = −∞`. Growing
    /// it by any point or rectangle yields that point/rectangle.
    pub fn empty(dims: usize) -> Rect {
        Rect {
            lo: vec![f64::INFINITY; dims],
            hi: vec![f64::NEG_INFINITY; dims],
        }
    }

    /// A degenerate rectangle covering exactly one point.
    pub fn point(p: &[f64]) -> Rect {
        Rect {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// Builds a rectangle from explicit bounds. Panics (debug) when
    /// dimensions differ.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Rect {
        debug_assert_eq!(lo.len(), hi.len());
        Rect { lo, hi }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// True when no point has been added yet (any inverted side).
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Grows the rectangle to cover `p`.
    pub fn grow_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dims());
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p) {
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }

    /// Grows the rectangle to cover `other`.
    pub fn grow_rect(&mut self, other: &Rect) {
        for i in 0..self.dims() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// True when `p` lies inside the (closed) rectangle.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((lo, hi), v)| lo <= v && v <= hi)
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= blo && bhi <= ahi)
    }

    /// L∞ minimum distance between the rectangles (0 when they intersect).
    ///
    /// Node pruning in RSJ uses `mindist_linf(a, b) > ε` because the ε-ball
    /// of every Lp metric is contained in the L∞ ε-cube, making the prune
    /// safe for all supported metrics.
    pub fn mindist_linf(&self, other: &Rect) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.dims() {
            let gap = (other.lo[i] - self.hi[i])
                .max(self.lo[i] - other.hi[i])
                .max(0.0);
            if gap > m {
                m = gap;
            }
        }
        m
    }

    /// Squared L2 minimum distance between the rectangles.
    pub fn mindist_l2_sq(&self, other: &Rect) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.dims() {
            let gap = (other.lo[i] - self.hi[i])
                .max(self.lo[i] - other.hi[i])
                .max(0.0);
            acc += gap * gap;
        }
        acc
    }

    /// Volume (product of side lengths); 0 for empty rectangles.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Sum of side lengths (the "margin" criterion of the R*-tree split).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    /// Volume the rectangle would gain if grown to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        let mut grown = self.clone();
        grown.grow_rect(other);
        grown.volume() - self.volume()
    }

    /// Center coordinate along dimension `dim`.
    pub fn center(&self, dim: usize) -> f64 {
        (self.lo[dim] + self.hi[dim]) / 2.0
    }

    /// Expands each side by `delta` in both directions (the ε/2 cube
    /// expansion used when reducing a similarity join to an intersection
    /// join).
    pub fn expanded(&self, delta: f64) -> Rect {
        Rect {
            lo: self.lo.iter().map(|v| v - delta).collect(),
            hi: self.hi.iter().map(|v| v + delta).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grows_to_point() {
        let mut r = Rect::empty(2);
        assert!(r.is_empty());
        assert_eq!(r.volume(), 0.0);
        r.grow_point(&[0.5, 0.25]);
        assert!(!r.is_empty());
        assert_eq!(r, Rect::point(&[0.5, 0.25]));
        assert_eq!(r.volume(), 0.0); // degenerate but non-empty
    }

    #[test]
    fn grow_rect_and_containment() {
        let mut r = Rect::point(&[0.0, 0.0]);
        r.grow_rect(&Rect::point(&[1.0, 2.0]));
        assert!(r.contains_point(&[0.5, 1.0]));
        assert!(!r.contains_point(&[1.5, 1.0]));
        assert!(r.contains_rect(&Rect::new(vec![0.2, 0.2], vec![0.8, 1.8])));
        assert!(!r.contains_rect(&Rect::new(vec![0.2, 0.2], vec![0.8, 2.5])));
    }

    #[test]
    fn intersection_is_symmetric_and_touching_counts() {
        let a = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Rect::new(vec![1.0, 1.0], vec![2.0, 2.0]); // shares the corner
        let c = Rect::new(vec![1.1, 1.1], vec![2.0, 2.0]);
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn mindist_values() {
        let a = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Rect::new(vec![2.0, 0.5], vec![3.0, 0.6]); // gap 1 on x only
        assert_eq!(a.mindist_linf(&b), 1.0);
        assert_eq!(a.mindist_l2_sq(&b), 1.0);
        let c = Rect::new(vec![2.0, 3.0], vec![3.0, 4.0]); // gaps (1, 2)
        assert_eq!(a.mindist_linf(&c), 2.0);
        assert_eq!(a.mindist_l2_sq(&c), 5.0);
        assert_eq!(a.mindist_linf(&a), 0.0);
    }

    #[test]
    fn volume_margin_enlargement() {
        let a = Rect::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = Rect::new(vec![0.0, 0.0], vec![4.0, 3.0]);
        assert_eq!(a.enlargement(&b), 6.0);
        assert_eq!(b.enlargement(&a), 0.0);
    }

    #[test]
    fn expanded_cube() {
        let r = Rect::point(&[0.5, 0.5]).expanded(0.1);
        assert!((r.lo()[0] - 0.4).abs() < 1e-12);
        assert!((r.hi()[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn center() {
        let r = Rect::new(vec![0.0, 1.0], vec![1.0, 3.0]);
        assert_eq!(r.center(0), 0.5);
        assert_eq!(r.center(1), 2.0);
    }
}

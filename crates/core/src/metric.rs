//! Distance metrics with early-exit threshold tests.
//!
//! All filter structures in the workspace prune with the L∞ ε-cube; the
//! final refinement step evaluates the exact metric through
//! [`Metric::within`], which short-circuits as soon as the running distance
//! can no longer stay under the threshold — the classic "partial distance"
//! optimization that matters in high dimensions.
//!
//! Every evaluation dispatches through [`crate::simd`] to the best kernel
//! tier the host supports (explicit AVX2/SSE2/NEON, falling back to the
//! 4-lane scalar kernels in [`crate::kernels`]) — one dispatch per call,
//! or one per *batch* through [`Metric::within_batch`] /
//! [`Metric::within_range`] / [`Metric::within_block`] — with the
//! `Lp(2)`/`Lp(1)` exponents normalized to the specialized L2/L1 kernels
//! first. All tiers are bit-exact with each other (see [`crate::simd`]),
//! so routing here changes speed, never results.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::simd;
use crate::soa::SoABlock;
use std::ops::Range;

/// The distance function of an ε-similarity join.
///
/// ```
/// use hdsj_core::Metric;
/// let (a, b) = ([0.0, 0.0], [0.3, 0.4]);
/// assert_eq!(Metric::L2.distance(&a, &b), 0.5);
/// assert!(Metric::L2.within(&a, &b, 0.5));
/// assert!(!Metric::Linf.within(&a, &b, 0.3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// Manhattan distance, `Σ |aᵢ − bᵢ|`.
    L1,
    /// Euclidean distance, `sqrt(Σ (aᵢ − bᵢ)²)`.
    L2,
    /// Chebyshev distance, `max |aᵢ − bᵢ|`.
    Linf,
    /// General Minkowski distance with exponent `p ≥ 1`.
    Lp(f64),
}

impl Metric {
    /// Validates the metric parameters (only `Lp` can be invalid).
    pub fn validate(&self) -> Result<()> {
        match self {
            Metric::Lp(p) if !(p.is_finite() && *p >= 1.0) => Err(Error::InvalidInput(
                format!("Lp exponent must be finite and >= 1, got {p}"),
            )),
            _ => Ok(()),
        }
    }

    /// The same metric with `Lp` exponents that have a specialized kernel
    /// rewritten to it: `Lp(2)` → `L2`, `Lp(1)` → `L1`. Evaluation methods
    /// normalize internally; batch callers that dispatch once per group can
    /// normalize up front.
    #[inline]
    pub fn normalized(&self) -> Metric {
        match self {
            Metric::Lp(p) if *p == 2.0 => Metric::L2,
            Metric::Lp(p) if *p == 1.0 => Metric::L1,
            m => *m,
        }
    }

    /// Full distance between two equal-length coordinate slices.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self.normalized() {
            Metric::L1 => simd::l1_distance(a, b),
            Metric::L2 => simd::l2_distance(a, b),
            Metric::Linf => simd::linf_distance(a, b),
            Metric::Lp(p) => simd::lp_distance(a, b, p),
        }
    }

    /// Early-exit test: is `distance(a, b) ≤ eps`?
    ///
    /// Comparisons are done in the metric's natural accumulation domain
    /// (squared for L2, `ε^p` for Lp) so no root is ever taken, and the
    /// kernel exits as soon as a partial sum exceeds the budget (checked
    /// per 4-lane block; see [`crate::kernels`] for the exactness
    /// argument).
    #[inline]
    pub fn within(&self, a: &[f64], b: &[f64], eps: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        match self.normalized() {
            Metric::L1 => simd::l1_within(a, b, eps),
            Metric::L2 => simd::l2_within(a, b, eps),
            Metric::Linf => simd::linf_within(a, b, eps),
            Metric::Lp(p) => simd::lp_within(a, b, eps, p),
        }
    }

    /// Batched threshold test: appends to `out` every id in `js` whose
    /// point in `data` is within `eps` of `probe`. One metric dispatch per
    /// batch; the inner loop runs the monomorphized kernel over the flat
    /// row-major layout.
    pub fn within_batch(
        &self,
        probe: &[f64],
        data: &Dataset,
        js: &[u32],
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        match self.normalized() {
            Metric::L1 => filter_ids(probe, data, js, out, |a, b| simd::l1_within(a, b, eps)),
            Metric::L2 => filter_ids(probe, data, js, out, |a, b| simd::l2_within(a, b, eps)),
            Metric::Linf => {
                filter_ids(probe, data, js, out, |a, b| simd::linf_within(a, b, eps))
            }
            Metric::Lp(p) => {
                filter_ids(probe, data, js, out, |a, b| simd::lp_within(a, b, eps, p))
            }
        }
    }

    /// [`Metric::within_batch`] over a contiguous id range — the shape the
    /// nested-loop joins produce, with no id list to materialize.
    pub fn within_range(
        &self,
        probe: &[f64],
        data: &Dataset,
        js: Range<u32>,
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        match self.normalized() {
            Metric::L1 => filter_range(probe, data, js, out, |a, b| simd::l1_within(a, b, eps)),
            Metric::L2 => filter_range(probe, data, js, out, |a, b| simd::l2_within(a, b, eps)),
            Metric::Linf => {
                filter_range(probe, data, js, out, |a, b| simd::linf_within(a, b, eps))
            }
            Metric::Lp(p) => {
                filter_range(probe, data, js, out, |a, b| simd::lp_within(a, b, eps, p))
            }
        }
    }

    /// Block threshold test over a structure-of-arrays candidate tile:
    /// appends to `out` the dataset row id of every lane in `lanes` whose
    /// candidate is within `eps` of `probe`, in lane order. This is the
    /// across-candidate vector path — the kernels broadcast one probe
    /// coordinate and stream the tile's contiguous dimension columns.
    /// Decisions are bit-exact with [`Metric::within`] (see
    /// [`crate::simd`]), so swapping a batch for a block never changes
    /// join results.
    pub fn within_block(
        &self,
        probe: &[f64],
        block: &SoABlock,
        lanes: Range<usize>,
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        match self.normalized() {
            Metric::L1 => simd::l1_within_block(probe, block, lanes, eps, out),
            Metric::L2 => simd::l2_within_block(probe, block, lanes, eps, out),
            Metric::Linf => simd::linf_within_block(probe, block, lanes, eps, out),
            Metric::Lp(p) => simd::lp_within_block(probe, block, lanes, eps, p, out),
        }
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(&self) -> String {
        match self {
            Metric::L1 => "L1".into(),
            Metric::L2 => "L2".into(),
            Metric::Linf => "Linf".into(),
            Metric::Lp(p) => format!("L{p}"),
        }
    }
}

/// Monomorphized batch filter over an explicit id list: the `within`
/// closure is a concrete kernel, so the loop body inlines with no
/// per-candidate metric dispatch.
#[inline(always)]
fn filter_ids(
    probe: &[f64],
    data: &Dataset,
    js: &[u32],
    out: &mut Vec<u32>,
    within: impl Fn(&[f64], &[f64]) -> bool,
) {
    for &j in js {
        if within(probe, data.point(j)) {
            out.push(j);
        }
    }
}

/// Monomorphized batch filter over a contiguous id range.
#[inline(always)]
fn filter_range(
    probe: &[f64],
    data: &Dataset,
    js: Range<u32>,
    out: &mut Vec<u32>,
    within: impl Fn(&[f64], &[f64]) -> bool,
) {
    for j in js {
        if within(probe, data.point(j)) {
            out.push(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 0.0, 0.0];
    const B: [f64; 3] = [0.3, 0.4, 0.0];

    #[test]
    fn distances_match_hand_computed_values() {
        assert!((Metric::L1.distance(&A, &B) - 0.7).abs() < 1e-12);
        assert!((Metric::L2.distance(&A, &B) - 0.5).abs() < 1e-12);
        assert!((Metric::Linf.distance(&A, &B) - 0.4).abs() < 1e-12);
        // L2 via the generic Lp path.
        assert!((Metric::Lp(2.0).distance(&A, &B) - 0.5).abs() < 1e-12);
        // L3 hand-computed: (0.027 + 0.064)^(1/3)
        let l3 = (0.3f64.powi(3) + 0.4f64.powi(3)).powf(1.0 / 3.0);
        assert!((Metric::Lp(3.0).distance(&A, &B) - l3).abs() < 1e-12);
    }

    #[test]
    fn within_agrees_with_distance_on_both_sides_of_threshold() {
        for m in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(3.0)] {
            let d = m.distance(&A, &B);
            assert!(m.within(&A, &B, d + 1e-9), "{m:?} just above");
            assert!(!m.within(&A, &B, d - 1e-9), "{m:?} just below");
            assert!(m.within(&A, &A, 0.0), "{m:?} zero self distance");
        }
    }

    #[test]
    fn within_boundary_is_inclusive() {
        // Exactly on the threshold counts as within (<=), for values that
        // are exactly representable.
        let a = [0.0];
        let b = [0.25];
        for m in [Metric::L1, Metric::L2, Metric::Linf] {
            assert!(m.within(&a, &b, 0.25), "{m:?}");
        }
    }

    #[test]
    fn lp_validation() {
        assert!(Metric::Lp(0.5).validate().is_err());
        assert!(Metric::Lp(f64::NAN).validate().is_err());
        assert!(Metric::Lp(1.0).validate().is_ok());
        assert!(Metric::L2.validate().is_ok());
    }

    #[test]
    fn metric_ball_nesting_in_linf_cube() {
        // For every metric, dist <= eps implies Linf dist <= eps: the
        // property all filter structures rely on.
        let pts = [[0.1, 0.9, 0.4], [0.15, 0.85, 0.35]];
        for m in [Metric::L1, Metric::L2, Metric::Lp(4.0)] {
            let d = m.distance(&pts[0], &pts[1]);
            assert!(
                Metric::Linf.distance(&pts[0], &pts[1]) <= d + 1e-12,
                "{m:?}"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Metric::L1.label(), "L1");
        assert_eq!(Metric::Lp(3.0).label(), "L3");
    }

    #[test]
    fn lp_two_equals_l2_to_one_ulp() {
        // Lp(2.0) normalizes to the L2 kernel, so the two must agree to at
        // most 1 ulp (and in fact bit-exactly, since they share the code
        // path) on every lane shape.
        for dims in [1, 2, 3, 4, 5, 7, 8, 13, 16, 33, 64] {
            let a: Vec<f64> = (0..dims).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..dims).map(|i| (i as f64 * 0.61).cos()).collect();
            let d2 = Metric::L2.distance(&a, &b);
            let dp = Metric::Lp(2.0).distance(&a, &b);
            let ulps = (d2.to_bits() as i64 - dp.to_bits() as i64).abs();
            assert!(ulps <= 1, "d={dims}: {d2} vs {dp} ({ulps} ulps apart)");
            // Lp(1.0) likewise rides the L1 kernel.
            let d1 = Metric::L1.distance(&a, &b);
            let dq = Metric::Lp(1.0).distance(&a, &b);
            assert_eq!(d1.to_bits(), dq.to_bits(), "d={dims}: L1 vs Lp(1)");
        }
    }

    #[test]
    fn batch_filters_agree_with_scalar_within() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 * 0.13;
                vec![t.sin(), t.cos(), (t * 0.5).sin()]
            })
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let probe = data.point(0).to_vec();
        let eps = 0.8;
        for m in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(3.0)] {
            let expect: Vec<u32> = (0..40u32)
                .filter(|&j| m.within(&probe, data.point(j), eps))
                .collect();
            let mut got = Vec::new();
            m.within_range(&probe, &data, 0..40, eps, &mut got);
            assert_eq!(got, expect, "{m:?} range");
            let ids: Vec<u32> = (0..40).collect();
            got.clear();
            m.within_batch(&probe, &data, &ids, eps, &mut got);
            assert_eq!(got, expect, "{m:?} batch");
            let block = SoABlock::from_range(&data, 0..40);
            got.clear();
            m.within_block(&probe, &block, 0..40, eps, &mut got);
            assert_eq!(got, expect, "{m:?} block");
        }
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn point(dims: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-10.0f64..10.0, dims)
    }

    fn metrics() -> impl Strategy<Value = Metric> {
        prop_oneof![
            Just(Metric::L1),
            Just(Metric::L2),
            Just(Metric::Linf),
            (1.0f64..5.0).prop_map(Metric::Lp),
        ]
    }

    proptest! {
        #[test]
        fn metric_axioms(m in metrics(), a in point(5), b in point(5), c in point(5)) {
            let dab = m.distance(&a, &b);
            // Non-negativity and identity.
            prop_assert!(dab >= 0.0);
            prop_assert!(m.distance(&a, &a) < 1e-12);
            // Symmetry.
            prop_assert!((dab - m.distance(&b, &a)).abs() < 1e-12);
            // Triangle inequality (holds for all p >= 1).
            let dac = m.distance(&a, &c);
            let dcb = m.distance(&c, &b);
            prop_assert!(dab <= dac + dcb + 1e-9, "{dab} > {dac} + {dcb}");
        }

        #[test]
        fn within_is_consistent_with_distance(
            m in metrics(),
            a in point(4),
            b in point(4),
            eps in 0.001f64..20.0,
        ) {
            let d = m.distance(&a, &b);
            // Allow a hair of slack exactly at the threshold.
            if d < eps * (1.0 - 1e-12) {
                prop_assert!(m.within(&a, &b, eps));
            }
            if d > eps * (1.0 + 1e-12) {
                prop_assert!(!m.within(&a, &b, eps));
            }
        }

        #[test]
        fn lp_norms_decrease_in_p(a in point(6), b in point(6)) {
            // ||x||_p is non-increasing in p: d_1 >= d_2 >= d_4 >= d_inf.
            let d1 = Metric::L1.distance(&a, &b);
            let d2 = Metric::L2.distance(&a, &b);
            let d4 = Metric::Lp(4.0).distance(&a, &b);
            let dinf = Metric::Linf.distance(&a, &b);
            prop_assert!(d1 >= d2 - 1e-9);
            prop_assert!(d2 >= d4 - 1e-9);
            prop_assert!(d4 >= dinf - 1e-9);
        }

        #[test]
        fn every_ball_nests_in_the_linf_cube(m in metrics(), a in point(8), b in point(8)) {
            // The filter-correctness property every algorithm relies on.
            let d = m.distance(&a, &b);
            prop_assert!(Metric::Linf.distance(&a, &b) <= d + 1e-12);
        }
    }
}

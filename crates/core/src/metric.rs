//! Distance metrics with early-exit threshold tests.
//!
//! All filter structures in the workspace prune with the L∞ ε-cube; the
//! final refinement step evaluates the exact metric through
//! [`Metric::within`], which short-circuits as soon as the running distance
//! can no longer stay under the threshold — the classic "partial distance"
//! optimization that matters in high dimensions.

use crate::error::{Error, Result};

/// The distance function of an ε-similarity join.
///
/// ```
/// use hdsj_core::Metric;
/// let (a, b) = ([0.0, 0.0], [0.3, 0.4]);
/// assert_eq!(Metric::L2.distance(&a, &b), 0.5);
/// assert!(Metric::L2.within(&a, &b, 0.5));
/// assert!(!Metric::Linf.within(&a, &b, 0.3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// Manhattan distance, `Σ |aᵢ − bᵢ|`.
    L1,
    /// Euclidean distance, `sqrt(Σ (aᵢ − bᵢ)²)`.
    L2,
    /// Chebyshev distance, `max |aᵢ − bᵢ|`.
    Linf,
    /// General Minkowski distance with exponent `p ≥ 1`.
    Lp(f64),
}

impl Metric {
    /// Validates the metric parameters (only `Lp` can be invalid).
    pub fn validate(&self) -> Result<()> {
        match self {
            Metric::Lp(p) if !(p.is_finite() && *p >= 1.0) => Err(Error::InvalidInput(
                format!("Lp exponent must be finite and >= 1, got {p}"),
            )),
            _ => Ok(()),
        }
    }

    /// Full distance between two equal-length coordinate slices.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::L2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Linf => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Lp(p) => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs().powf(*p))
                .sum::<f64>()
                .powf(1.0 / p),
        }
    }

    /// Early-exit test: is `distance(a, b) ≤ eps`?
    ///
    /// Comparisons are done in the metric's natural accumulation domain
    /// (squared for L2, `ε^p` for Lp) so no root is ever taken, and the loop
    /// exits as soon as the partial sum exceeds the budget.
    #[inline]
    pub fn within(&self, a: &[f64], b: &[f64], eps: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::L1 => {
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b) {
                    acc += (x - y).abs();
                    if acc > eps {
                        return false;
                    }
                }
                true
            }
            Metric::L2 => {
                let budget = eps * eps;
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    acc += d * d;
                    if acc > budget {
                        return false;
                    }
                }
                true
            }
            Metric::Linf => a.iter().zip(b).all(|(x, y)| (x - y).abs() <= eps),
            Metric::Lp(p) => {
                let budget = eps.powf(*p);
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b) {
                    acc += (x - y).abs().powf(*p);
                    if acc > budget {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(&self) -> String {
        match self {
            Metric::L1 => "L1".into(),
            Metric::L2 => "L2".into(),
            Metric::Linf => "Linf".into(),
            Metric::Lp(p) => format!("L{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 0.0, 0.0];
    const B: [f64; 3] = [0.3, 0.4, 0.0];

    #[test]
    fn distances_match_hand_computed_values() {
        assert!((Metric::L1.distance(&A, &B) - 0.7).abs() < 1e-12);
        assert!((Metric::L2.distance(&A, &B) - 0.5).abs() < 1e-12);
        assert!((Metric::Linf.distance(&A, &B) - 0.4).abs() < 1e-12);
        // L2 via the generic Lp path.
        assert!((Metric::Lp(2.0).distance(&A, &B) - 0.5).abs() < 1e-12);
        // L3 hand-computed: (0.027 + 0.064)^(1/3)
        let l3 = (0.3f64.powi(3) + 0.4f64.powi(3)).powf(1.0 / 3.0);
        assert!((Metric::Lp(3.0).distance(&A, &B) - l3).abs() < 1e-12);
    }

    #[test]
    fn within_agrees_with_distance_on_both_sides_of_threshold() {
        for m in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(3.0)] {
            let d = m.distance(&A, &B);
            assert!(m.within(&A, &B, d + 1e-9), "{m:?} just above");
            assert!(!m.within(&A, &B, d - 1e-9), "{m:?} just below");
            assert!(m.within(&A, &A, 0.0), "{m:?} zero self distance");
        }
    }

    #[test]
    fn within_boundary_is_inclusive() {
        // Exactly on the threshold counts as within (<=), for values that
        // are exactly representable.
        let a = [0.0];
        let b = [0.25];
        for m in [Metric::L1, Metric::L2, Metric::Linf] {
            assert!(m.within(&a, &b, 0.25), "{m:?}");
        }
    }

    #[test]
    fn lp_validation() {
        assert!(Metric::Lp(0.5).validate().is_err());
        assert!(Metric::Lp(f64::NAN).validate().is_err());
        assert!(Metric::Lp(1.0).validate().is_ok());
        assert!(Metric::L2.validate().is_ok());
    }

    #[test]
    fn metric_ball_nesting_in_linf_cube() {
        // For every metric, dist <= eps implies Linf dist <= eps: the
        // property all filter structures rely on.
        let pts = [[0.1, 0.9, 0.4], [0.15, 0.85, 0.35]];
        for m in [Metric::L1, Metric::L2, Metric::Lp(4.0)] {
            let d = m.distance(&pts[0], &pts[1]);
            assert!(
                Metric::Linf.distance(&pts[0], &pts[1]) <= d + 1e-12,
                "{m:?}"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Metric::L1.label(), "L1");
        assert_eq!(Metric::Lp(3.0).label(), "L3");
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn point(dims: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-10.0f64..10.0, dims)
    }

    fn metrics() -> impl Strategy<Value = Metric> {
        prop_oneof![
            Just(Metric::L1),
            Just(Metric::L2),
            Just(Metric::Linf),
            (1.0f64..5.0).prop_map(Metric::Lp),
        ]
    }

    proptest! {
        #[test]
        fn metric_axioms(m in metrics(), a in point(5), b in point(5), c in point(5)) {
            let dab = m.distance(&a, &b);
            // Non-negativity and identity.
            prop_assert!(dab >= 0.0);
            prop_assert!(m.distance(&a, &a) < 1e-12);
            // Symmetry.
            prop_assert!((dab - m.distance(&b, &a)).abs() < 1e-12);
            // Triangle inequality (holds for all p >= 1).
            let dac = m.distance(&a, &c);
            let dcb = m.distance(&c, &b);
            prop_assert!(dab <= dac + dcb + 1e-9, "{dab} > {dac} + {dcb}");
        }

        #[test]
        fn within_is_consistent_with_distance(
            m in metrics(),
            a in point(4),
            b in point(4),
            eps in 0.001f64..20.0,
        ) {
            let d = m.distance(&a, &b);
            // Allow a hair of slack exactly at the threshold.
            if d < eps * (1.0 - 1e-12) {
                prop_assert!(m.within(&a, &b, eps));
            }
            if d > eps * (1.0 + 1e-12) {
                prop_assert!(!m.within(&a, &b, eps));
            }
        }

        #[test]
        fn lp_norms_decrease_in_p(a in point(6), b in point(6)) {
            // ||x||_p is non-increasing in p: d_1 >= d_2 >= d_4 >= d_inf.
            let d1 = Metric::L1.distance(&a, &b);
            let d2 = Metric::L2.distance(&a, &b);
            let d4 = Metric::Lp(4.0).distance(&a, &b);
            let dinf = Metric::Linf.distance(&a, &b);
            prop_assert!(d1 >= d2 - 1e-9);
            prop_assert!(d2 >= d4 - 1e-9);
            prop_assert!(d4 >= dinf - 1e-9);
        }

        #[test]
        fn every_ball_nests_in_the_linf_cube(m in metrics(), a in point(8), b in point(8)) {
            // The filter-correctness property every algorithm relies on.
            let d = m.distance(&a, &b);
            prop_assert!(Metric::Linf.distance(&a, &b) <= d + 1e-12);
        }
    }
}

//! Result-set comparison helpers used throughout the test suites.
//!
//! Different algorithms discover result pairs in different orders; these
//! helpers canonicalize the pair lists so equality checks are meaningful,
//! and produce readable diffs when an algorithm disagrees with the brute
//! force ground truth.

/// Sorts a pair list in place and asserts it contains no duplicates.
/// Returns the canonicalized list for chaining.
pub fn canonicalize(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    pairs.sort_unstable();
    pairs
}

/// True when two result sets are equal after canonicalization.
pub fn same_results(a: Vec<(u32, u32)>, b: Vec<(u32, u32)>) -> bool {
    canonicalize(a) == canonicalize(b)
}

/// The `(missing, extra, duplicated)` triple produced by [`diff`].
pub type Diff = (Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Returns `(missing, extra, duplicated)` of `got` relative to `expected`:
/// pairs the algorithm failed to report, pairs it invented, and pairs it
/// reported more than once. All three empty means the result is correct.
pub fn diff(expected: &[(u32, u32)], got: &[(u32, u32)]) -> Diff {
    let want = canonicalize(expected.to_vec());
    let have = canonicalize(got.to_vec());

    let mut duplicated = Vec::new();
    for w in have.windows(2) {
        if w[0] == w[1] {
            duplicated.push(w[0]);
        }
    }
    duplicated.dedup();

    let mut missing = Vec::new();
    let mut extra = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < want.len() || j < have.len() {
        match (want.get(i), have.get(j)) {
            (Some(w), Some(h)) if w == h => {
                i += 1;
                // Skip duplicates of the matched pair on the `have` side.
                while have.get(j) == Some(w) {
                    j += 1;
                }
            }
            (Some(w), Some(h)) if w < h => {
                missing.push(*w);
                i += 1;
            }
            (Some(_), Some(h)) => {
                extra.push(*h);
                j += 1;
            }
            (Some(w), None) => {
                missing.push(*w);
                i += 1;
            }
            (None, Some(h)) => {
                extra.push(*h);
                j += 1;
            }
            (None, None) => break,
        }
    }
    extra.dedup();
    (missing, extra, duplicated)
}

/// Panics with a readable message when `got` differs from `expected`.
/// `label` names the algorithm under test.
pub fn assert_same_results(label: &str, expected: &[(u32, u32)], got: &[(u32, u32)]) {
    let (missing, extra, duplicated) = diff(expected, got);
    assert!(
        missing.is_empty() && extra.is_empty() && duplicated.is_empty(),
        "{label}: result mismatch\n  expected {} pairs, got {}\n  missing (first 10): {:?}\n  extra (first 10): {:?}\n  duplicated (first 10): {:?}",
        expected.len(),
        got.len(),
        &missing[..missing.len().min(10)],
        &extra[..extra.len().min(10)],
        &duplicated[..duplicated.len().min(10)],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_results_ignores_order() {
        assert!(same_results(vec![(1, 2), (0, 3)], vec![(0, 3), (1, 2)]));
        assert!(!same_results(vec![(1, 2)], vec![(1, 2), (1, 2)]));
    }

    #[test]
    fn diff_reports_missing_extra_duplicated() {
        let expected = [(0, 1), (2, 3), (4, 5)];
        let got = [(2, 3), (2, 3), (6, 7)];
        let (missing, extra, duplicated) = diff(&expected, &got);
        assert_eq!(missing, vec![(0, 1), (4, 5)]);
        assert_eq!(extra, vec![(6, 7)]);
        assert_eq!(duplicated, vec![(2, 3)]);
    }

    #[test]
    fn diff_empty_inputs() {
        let (m, e, d) = diff(&[], &[]);
        assert!(m.is_empty() && e.is_empty() && d.is_empty());
    }

    #[test]
    #[should_panic(expected = "ALG: result mismatch")]
    fn assert_panics_with_label() {
        assert_same_results("ALG", &[(0, 1)], &[]);
    }

    #[test]
    fn assert_passes_on_equal_sets() {
        assert_same_results("ALG", &[(0, 1), (1, 2)], &[(1, 2), (0, 1)]);
    }
}

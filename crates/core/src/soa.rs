//! Structure-of-arrays candidate blocks for batch refinement.
//!
//! The row-major [`Dataset`] layout is right for per-pair evaluation, but
//! the refinement inner loop is a *batch* shape: one probe against many
//! candidates. Vectorizing **across candidates** wants the transpose —
//! dimension-major tiles where `col(dim)` holds that coordinate for every
//! candidate contiguously, so a kernel can broadcast `probe[dim]` and
//! stream one cache line of candidate coordinates per vector op.
//!
//! [`SoABlock`] is that transpose for a tile of candidates, plus the index
//! map back to dataset row ids. Three producers cover the join shapes:
//!
//! * [`SoABlock::from_range`] — a contiguous id range (block-nested-loop
//!   tiles);
//! * [`SoABlock::partition`] — the whole dataset cut into fixed-width
//!   tiles, built once per join and reused for every probe;
//! * [`SoABlock::gather`] / [`SoABlock::gather_into`] — an arbitrary id
//!   list (the candidate batches the sweep-based algorithms produce), with
//!   buffer reuse for per-probe scratch blocks.
//!
//! ## Padding
//!
//! `width` (the lane count per dimension) is `len` rounded up to a
//! multiple of [`LANE_PAD`], and padding lanes replicate the **last real
//! candidate**. That keeps every vector-group load of up to `LANE_PAD`
//! lanes in bounds without per-load masking; padding lanes hold finite
//! coordinates (so no spurious NaN/trap behaviour) and are filtered out at
//! emit time by lane index, never by value. An empty block has
//! `width == 0` and no storage.

use crate::dataset::Dataset;
use std::ops::Range;

/// Lane padding granularity: the widest vector group any dispatch level
/// uses (4 × f64 under AVX2). Every block's `width` is a multiple of this.
pub const LANE_PAD: usize = 4;

/// A dimension-major tile of candidate points with row-id back-map.
///
/// Storage is `dims × width` values, laid out column-contiguous:
/// `data[dim * width + t]` is coordinate `dim` of lane `t`. Lanes
/// `0..len` are real candidates (`ids()[t]` is the dataset row id); lanes
/// `len..width` replicate lane `len - 1`.
#[derive(Clone, Debug)]
pub struct SoABlock {
    dims: usize,
    len: usize,
    width: usize,
    ids: Vec<u32>,
    data: Vec<f64>,
}

impl SoABlock {
    /// An empty block of the given dimensionality (useful as reusable
    /// scratch for [`SoABlock::gather_into`]).
    pub fn empty(dims: usize) -> SoABlock {
        SoABlock {
            dims,
            len: 0,
            width: 0,
            ids: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Transposes the contiguous id range `range` of `ds` into a block.
    pub fn from_range(ds: &Dataset, range: Range<u32>) -> SoABlock {
        let mut b = SoABlock::empty(ds.dims());
        b.fill(
            ds,
            range.start,
            (range.end.max(range.start) - range.start) as usize,
            &[],
        );
        b
    }

    /// Transposes the listed rows of `ds` into a block (lane `t` holds
    /// `ds.point(js[t])`).
    pub fn gather(ds: &Dataset, js: &[u32]) -> SoABlock {
        let mut b = SoABlock::empty(ds.dims());
        b.gather_into(ds, js);
        b
    }

    /// Refills this block from `js`, reusing the existing allocations —
    /// the per-probe scratch path in batch refinement.
    pub fn gather_into(&mut self, ds: &Dataset, js: &[u32]) {
        self.fill(ds, 0, js.len(), js);
    }

    /// Cuts the whole dataset into tiles of at most `width` lanes, in
    /// ascending row order. Built once per join; every tile's ids are the
    /// contiguous range it covers.
    pub fn partition(ds: &Dataset, width: usize) -> Vec<SoABlock> {
        let width = width.max(LANE_PAD);
        let n = ds.len();
        let mut tiles = Vec::with_capacity(n.div_ceil(width.max(1)));
        let mut start = 0usize;
        while start < n {
            let end = (start + width).min(n);
            tiles.push(SoABlock::from_range(ds, start as u32..end as u32));
            start = end;
        }
        tiles
    }

    /// Shared fill: `count` lanes taken either from `js` (when non-empty)
    /// or from the contiguous range starting at `base`.
    fn fill(&mut self, ds: &Dataset, base: u32, count: usize, js: &[u32]) {
        self.dims = ds.dims();
        self.len = count;
        self.ids.clear();
        if count == 0 {
            self.width = 0;
            self.data.clear();
            return;
        }
        self.width = count.next_multiple_of(LANE_PAD);
        self.data.clear();
        self.data.resize(self.dims * self.width, 0.0);
        if js.is_empty() {
            self.ids.extend(base..base + count as u32);
        } else {
            self.ids.extend_from_slice(&js[..count]);
        }
        let (dims, width) = (self.dims, self.width);
        for t in 0..count {
            let row = ds.point(self.ids[t]);
            for (dim, &v) in row.iter().enumerate() {
                self.data[dim * width + t] = v;
            }
        }
        // Padding lanes replicate the last real candidate so vector loads
        // of a full group stay in bounds and finite.
        for dim in 0..dims {
            let last = self.data[dim * width + count - 1];
            for t in count..width {
                self.data[dim * width + t] = last;
            }
        }
    }

    /// Number of real candidate lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of every candidate.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Padded lane count (`len` rounded up to a multiple of
    /// [`LANE_PAD`]; `0` for an empty block).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Dataset row ids of the real lanes, in lane order.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The contiguous coordinate column for `dim`: `width` values, one
    /// per lane (padding included).
    #[inline]
    pub fn col(&self, dim: usize) -> &[f64] {
        &self.data[dim * self.width..(dim + 1) * self.width]
    }

    /// The whole dimension-major buffer: exactly `dims() × width()`
    /// values, coordinate `dim` of lane `t` at index `dim * width + t`.
    ///
    /// Kernels that walk many columns per candidate group index this
    /// directly instead of re-slicing [`Self::col`] per dimension — the
    /// per-column slice construction is a bounds check in the innermost
    /// loop that the optimizer does not always hoist.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Coordinate `dim` of lane `t`.
    #[inline]
    pub fn value(&self, dim: usize, t: usize) -> f64 {
        self.data[dim * self.width + t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize, dims: usize) -> Dataset {
        let flat: Vec<f64> = (0..n * dims).map(|i| (i as f64 * 0.37).sin()).collect();
        Dataset::from_flat(dims, flat).unwrap()
    }

    #[test]
    fn from_range_round_trips_every_coordinate() {
        let d = ds(10, 5);
        let b = SoABlock::from_range(&d, 2..9);
        assert_eq!(b.len(), 7);
        assert_eq!(b.width(), 8);
        assert_eq!(b.ids(), &[2, 3, 4, 5, 6, 7, 8]);
        for (t, &id) in b.ids().iter().enumerate() {
            for dim in 0..5 {
                assert_eq!(b.value(dim, t).to_bits(), d.point(id)[dim].to_bits());
            }
        }
    }

    #[test]
    fn gather_round_trips_arbitrary_id_lists() {
        let d = ds(20, 3);
        let js = [19u32, 0, 7, 7, 3];
        let b = SoABlock::gather(&d, &js);
        assert_eq!(b.ids(), &js);
        for (t, &id) in js.iter().enumerate() {
            for dim in 0..3 {
                assert_eq!(b.value(dim, t).to_bits(), d.point(id)[dim].to_bits());
            }
        }
    }

    #[test]
    fn padding_replicates_the_last_lane() {
        let d = ds(6, 2);
        let b = SoABlock::from_range(&d, 0..5);
        assert_eq!((b.len(), b.width()), (5, 8));
        for t in 5..8 {
            for dim in 0..2 {
                assert_eq!(b.value(dim, t).to_bits(), b.value(dim, 4).to_bits());
            }
        }
    }

    #[test]
    fn gather_into_reuses_and_resizes() {
        let d = ds(12, 4);
        let mut b = SoABlock::empty(4);
        b.gather_into(&d, &[1, 2, 3, 4, 5]);
        assert_eq!((b.len(), b.width()), (5, 8));
        b.gather_into(&d, &[11]);
        assert_eq!((b.len(), b.width()), (1, 4));
        assert_eq!(b.value(2, 0).to_bits(), d.point(11)[2].to_bits());
        b.gather_into(&d, &[]);
        assert!(b.is_empty());
        assert_eq!(b.width(), 0);
    }

    #[test]
    fn partition_covers_the_dataset_in_order() {
        let d = ds(11, 3);
        let tiles = SoABlock::partition(&d, 4);
        assert_eq!(tiles.len(), 3);
        let all: Vec<u32> = tiles.iter().flat_map(|t| t.ids().iter().copied()).collect();
        assert_eq!(all, (0..11).collect::<Vec<u32>>());
        assert_eq!(tiles[2].len(), 3);
        assert_eq!(tiles[2].width(), 4);
    }

    #[test]
    fn empty_range_yields_empty_block() {
        let d = ds(4, 2);
        let b = SoABlock::from_range(&d, 3..3);
        assert!(b.is_empty());
        assert_eq!(b.width(), 0);
        assert!(b.ids().is_empty());
    }
}

//! Dense row-major storage for collections of `d`-dimensional points.

use crate::error::{Error, Result};

/// A set of `d`-dimensional points stored contiguously in row-major order.
///
/// ```
/// use hdsj_core::Dataset;
/// let mut points = Dataset::new(2)?;
/// points.push(&[0.25, 0.75])?;
/// points.push(&[0.5, 0.5])?;
/// assert_eq!(points.len(), 2);
/// assert_eq!(points.point(1), &[0.5, 0.5]);
/// # Ok::<(), hdsj_core::Error>(())
/// ```
///
/// Points are addressed by their `u32` index; every join algorithm reports
/// result pairs as `(u32, u32)` indexes into the participating datasets.
/// Coordinates are `f64` and must be finite. The join algorithms additionally
/// assume the *unit-domain convention*: coordinates lie in `[0, 1)`. That is
/// not enforced on construction (tests and metrics work on any finite data)
/// but [`Dataset::check_unit_domain`] validates it and
/// [`Dataset::normalized`] rescales arbitrary data into the unit cube.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    dims: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of `dims`-dimensional points.
    pub fn new(dims: usize) -> Result<Self> {
        if dims == 0 {
            return Err(Error::InvalidInput("dimensionality must be >= 1".into()));
        }
        Ok(Dataset {
            dims,
            data: Vec::new(),
        })
    }

    /// Creates an empty dataset with room for `cap` points.
    pub fn with_capacity(dims: usize, cap: usize) -> Result<Self> {
        let mut ds = Self::new(dims)?;
        ds.data.reserve(cap.saturating_mul(dims));
        Ok(ds)
    }

    /// Builds a dataset from a flat row-major coordinate buffer.
    ///
    /// `flat.len()` must be a multiple of `dims` and every value finite.
    pub fn from_flat(dims: usize, flat: Vec<f64>) -> Result<Self> {
        let mut ds = Self::new(dims)?;
        if !flat.len().is_multiple_of(dims) {
            return Err(Error::InvalidInput(format!(
                "flat buffer of {} values is not a multiple of dims {}",
                flat.len(),
                dims
            )));
        }
        if let Some(bad) = flat.iter().find(|v| !v.is_finite()) {
            return Err(Error::InvalidInput(format!("non-finite coordinate {bad}")));
        }
        if flat.len() / dims > u32::MAX as usize {
            return Err(Error::InvalidInput("more than u32::MAX points".into()));
        }
        ds.data = flat;
        Ok(ds)
    }

    /// Builds a dataset from per-point rows. Every row must have the same
    /// length as the first.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let dims = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut ds = Self::new(dims.max(1))?;
        for row in rows {
            ds.push(row)?;
        }
        Ok(ds)
    }

    /// Appends one point; returns its index.
    pub fn push(&mut self, point: &[f64]) -> Result<u32> {
        if point.len() != self.dims {
            return Err(Error::InvalidInput(format!(
                "point has {} dims, dataset has {}",
                point.len(),
                self.dims
            )));
        }
        if let Some(bad) = point.iter().find(|v| !v.is_finite()) {
            return Err(Error::InvalidInput(format!("non-finite coordinate {bad}")));
        }
        let idx = self.len();
        if idx > u32::MAX as usize {
            return Err(Error::InvalidInput("more than u32::MAX points".into()));
        }
        self.data.extend_from_slice(point);
        Ok(idx as u32)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d` of every point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow point `i` as a coordinate slice. Panics when out of range.
    #[inline]
    pub fn point(&self, i: u32) -> &[f64] {
        let i = i as usize;
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// The whole row-major coordinate buffer.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over `(index, point)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (u32, &[f64])> {
        self.data
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, p)| (i as u32, p))
    }

    /// Validates the unit-domain convention used by the multidimensional
    /// filter structures: every coordinate in `[0, 1)`.
    pub fn check_unit_domain(&self) -> Result<()> {
        for (i, p) in self.iter() {
            if let Some(v) = p.iter().find(|v| !(0.0..1.0).contains(*v)) {
                return Err(Error::InvalidInput(format!(
                    "point {i} coordinate {v} outside [0,1)"
                )));
            }
        }
        Ok(())
    }

    /// Returns a copy rescaled so that every coordinate lies in `[0, 1)`.
    ///
    /// The same affine transform (global min/extent over *all* dimensions of
    /// *this* dataset) is applied to every coordinate, so relative distances
    /// are preserved up to one uniform scale factor. To join two datasets,
    /// normalize them together via [`Dataset::normalize_pair`], otherwise the
    /// two transforms (and hence ε) would disagree.
    pub fn normalized(&self) -> Dataset {
        let (lo, hi) = self.global_bounds();
        self.apply_affine(lo, hi)
    }

    /// Normalizes two datasets with a *shared* transform into `[0, 1)` so
    /// that one ε threshold is meaningful for both. Returns the rescaled
    /// datasets and the scale factor that maps original distances to
    /// normalized distances (`normalized_dist = scale * original_dist`).
    pub fn normalize_pair(a: &Dataset, b: &Dataset) -> Result<(Dataset, Dataset, f64)> {
        if a.dims != b.dims {
            return Err(Error::InvalidInput(format!(
                "dimensionality mismatch: {} vs {}",
                a.dims, b.dims
            )));
        }
        let (alo, ahi) = a.global_bounds();
        let (blo, bhi) = b.global_bounds();
        let lo = alo.min(blo);
        let hi = ahi.max(bhi);
        let extent = (hi - lo).max(f64::MIN_POSITIVE);
        // Shrink slightly so the maximum lands strictly below 1.0.
        let scale = (1.0 - 1e-9) / extent;
        Ok((a.apply_affine(lo, hi), b.apply_affine(lo, hi), scale))
    }

    fn global_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() {
            // Empty dataset: identity transform domain.
            (0.0, 1.0)
        } else {
            (lo, hi)
        }
    }

    fn apply_affine(&self, lo: f64, hi: f64) -> Dataset {
        let extent = (hi - lo).max(f64::MIN_POSITIVE);
        let scale = (1.0 - 1e-9) / extent;
        let data = self
            .data
            .iter()
            .map(|&v| ((v - lo) * scale).clamp(0.0, 1.0 - 1e-12))
            .collect();
        Dataset {
            dims: self.dims,
            data,
        }
    }

    /// Resident size in bytes of the coordinate buffer (used by the memory
    /// experiments).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        assert!(Dataset::new(0).is_err());
    }

    #[test]
    fn push_and_access_round_trip() {
        let mut ds = Dataset::new(3).unwrap();
        assert!(ds.is_empty());
        let i = ds.push(&[0.1, 0.2, 0.3]).unwrap();
        let j = ds.push(&[0.4, 0.5, 0.6]).unwrap();
        assert_eq!((i, j), (0, 1));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[0.4, 0.5, 0.6]);
        let collected: Vec<u32> = ds.iter().map(|(i, _)| i).collect();
        assert_eq!(collected, vec![0, 1]);
    }

    #[test]
    fn push_rejects_wrong_arity_and_nan() {
        let mut ds = Dataset::new(2).unwrap();
        assert!(ds.push(&[0.0]).is_err());
        assert!(ds.push(&[0.0, f64::NAN]).is_err());
        assert!(ds.push(&[0.0, f64::INFINITY]).is_err());
        assert!(ds.is_empty());
    }

    #[test]
    fn from_flat_validates_multiple() {
        assert!(Dataset::from_flat(3, vec![1.0, 2.0]).is_err());
        let ds = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
    }

    #[test]
    fn from_rows_matches_pushes() {
        let rows = vec![vec![0.25, 0.5], vec![0.75, 0.125]];
        let ds = Dataset::from_rows(&rows).unwrap();
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.point(0), rows[0].as_slice());
    }

    #[test]
    fn unit_domain_check() {
        let ok = Dataset::from_flat(2, vec![0.0, 0.999]).unwrap();
        ok.check_unit_domain().unwrap();
        let bad = Dataset::from_flat(2, vec![0.0, 1.0]).unwrap();
        assert!(bad.check_unit_domain().is_err());
        let neg = Dataset::from_flat(2, vec![-0.1, 0.5]).unwrap();
        assert!(neg.check_unit_domain().is_err());
    }

    #[test]
    fn normalized_lands_in_unit_domain_and_preserves_order() {
        let ds = Dataset::from_flat(1, vec![-10.0, 0.0, 42.0]).unwrap();
        let n = ds.normalized();
        n.check_unit_domain().unwrap();
        assert!(n.point(0)[0] < n.point(1)[0] && n.point(1)[0] < n.point(2)[0]);
    }

    #[test]
    fn normalize_pair_shares_transform() {
        let a = Dataset::from_flat(1, vec![0.0, 10.0]).unwrap();
        let b = Dataset::from_flat(1, vec![5.0]).unwrap();
        let (na, nb, scale) = Dataset::normalize_pair(&a, &b).unwrap();
        na.check_unit_domain().unwrap();
        nb.check_unit_domain().unwrap();
        // b's point sits midway between a's two points after rescaling.
        let mid = (na.point(0)[0] + na.point(1)[0]) / 2.0;
        assert!((nb.point(0)[0] - mid).abs() < 1e-9);
        // Distances scale uniformly.
        let orig = 10.0;
        let new = na.point(1)[0] - na.point(0)[0];
        assert!((new - scale * orig).abs() < 1e-9);
    }

    #[test]
    fn normalize_pair_rejects_dim_mismatch() {
        let a = Dataset::new(2).unwrap();
        let b = Dataset::new(3).unwrap();
        assert!(Dataset::normalize_pair(&a, &b).is_err());
    }

    #[test]
    fn bytes_reports_buffer_size() {
        let ds = Dataset::from_flat(2, vec![0.0; 8]).unwrap();
        assert_eq!(ds.bytes(), 8 * 8);
    }
}

//! The shared filter-and-refine back end.
//!
//! Every multidimensional filter structure (MSJ level files, R-tree node
//! pairs, ε-KDB neighbouring leaves, grid cells) produces *candidate* pairs
//! that are guaranteed to contain all true results but may contain false
//! positives. [`Refiner`] centralizes the refinement step: it evaluates the
//! exact metric, enforces the self-join reporting conventions, and keeps the
//! candidate/result/distance-evaluation counters consistent across
//! algorithms.

use crate::dataset::Dataset;
use crate::join::{JoinKind, JoinSpec, PairSink};
use crate::soa::SoABlock;
use crate::stats::JoinStats;
use std::ops::Range;

/// Smallest batch worth transposing into a SoA scratch block: below this,
/// the gather overhead outweighs the across-candidate kernel's gain.
const BLOCK_BATCH_MIN: usize = 16;

/// Verifies candidate pairs against the exact metric and forwards survivors
/// to the caller's sink.
///
/// Contract for algorithms: offer each candidate pair **at most once**
/// (`(i, j)` for two-set joins; any orientation of an unordered pair for
/// self-joins). The refiner canonicalizes self-join pairs to
/// `(min, max)` and drops identical indices, so algorithms that naturally
/// discover `(j, i)` need no special casing — but they must not discover a
/// pair twice.
pub struct Refiner<'a> {
    a: &'a Dataset,
    b: &'a Dataset,
    kind: JoinKind,
    eps: f64,
    metric: crate::metric::Metric,
    sink: &'a mut dyn PairSink,
    candidates: u64,
    results: u64,
    dist_evals: u64,
    scratch: Vec<u32>,
    soa: SoABlock,
}

impl<'a> Refiner<'a> {
    /// Creates a refiner for `a ⋈ b` (two-set) or `a ⋈ a` (self-join, pass
    /// the same dataset twice).
    pub fn new(
        a: &'a Dataset,
        b: &'a Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &'a mut dyn PairSink,
    ) -> Refiner<'a> {
        Refiner {
            a,
            b,
            kind,
            eps: spec.eps,
            metric: spec.metric,
            sink,
            candidates: 0,
            results: 0,
            dist_evals: 0,
            scratch: Vec::new(),
            soa: SoABlock::empty(b.dims()),
        }
    }

    /// True when a batch of `n` candidates should take the SoA block path:
    /// large enough to amortize the transpose, a vector tier is active,
    /// and the metric has an across-candidate kernel (`Lp` does not).
    fn batch_wants_block(&self, n: usize) -> bool {
        n >= BLOCK_BATCH_MIN
            && crate::simd::level() > crate::simd::Level::Scalar
            && !matches!(self.metric.normalized(), crate::metric::Metric::Lp(_))
    }

    /// Offers a candidate pair; evaluates the exact metric and forwards the
    /// pair to the sink when it qualifies.
    #[inline]
    pub fn offer(&mut self, i: u32, j: u32) {
        let (i, j) = match self.kind {
            JoinKind::TwoSets => (i, j),
            JoinKind::SelfJoin => {
                if i == j {
                    return;
                }
                (i.min(j), i.max(j))
            }
        };
        self.candidates += 1;
        self.dist_evals += 1;
        if self
            .metric
            .within(self.a.point(i), self.b.point(j), self.eps)
        {
            self.results += 1;
            self.sink.push(i, j);
        }
    }

    /// Offers a batch of candidates `(i, j)` for every `j` in `js`,
    /// evaluated through the vectorized [`crate::metric::Metric::within_batch`]
    /// kernel with a single metric dispatch.
    ///
    /// Self-join semantics match repeated [`Refiner::offer`] calls exactly:
    /// diagonal entries (`j == i`) are dropped before counting, and
    /// surviving pairs are emitted canonically as `(min, max)` — kernel
    /// distances are bit-symmetric under argument swap, so evaluating
    /// against the probe's orientation is exact.
    pub fn offer_batch(&mut self, i: u32, js: &[u32]) {
        self.scratch.clear();
        let probe = self.a.point(i);
        if self.batch_wants_block(js.len()) {
            // Transpose the batch into the reusable SoA scratch block and
            // run the across-candidate kernel. Decisions are bit-exact
            // with `within_batch` (see `crate::simd`), and the gather
            // preserves js order, so counters and emission are unchanged.
            self.soa.gather_into(self.b, js);
            self.metric.within_block(
                probe,
                &self.soa,
                0..js.len(),
                self.eps,
                &mut self.scratch,
            );
        } else {
            self.metric
                .within_batch(probe, self.b, js, self.eps, &mut self.scratch);
        }
        match self.kind {
            JoinKind::TwoSets => {
                self.candidates += js.len() as u64;
                self.dist_evals += js.len() as u64;
                for &j in &self.scratch {
                    self.results += 1;
                    self.sink.push(i, j);
                }
            }
            JoinKind::SelfJoin => {
                let diag = js.iter().filter(|&&j| j == i).count() as u64;
                self.candidates += js.len() as u64 - diag;
                self.dist_evals += js.len() as u64 - diag;
                for &j in &self.scratch {
                    if j == i {
                        continue;
                    }
                    self.results += 1;
                    self.sink.push(i.min(j), i.max(j));
                }
            }
        }
    }

    /// [`Refiner::offer_batch`] over a contiguous candidate range — the
    /// shape block-nested-loop joins produce. For self-joins the diagonal
    /// is skipped by splitting the range around `i` instead of testing
    /// every element.
    pub fn offer_range(&mut self, i: u32, js: Range<u32>) {
        if js.end <= js.start {
            return;
        }
        self.scratch.clear();
        let probe = self.a.point(i);
        let n = (js.end - js.start) as u64;
        match self.kind {
            JoinKind::TwoSets => {
                self.candidates += n;
                self.dist_evals += n;
                self.metric
                    .within_range(probe, self.b, js, self.eps, &mut self.scratch);
                for &j in &self.scratch {
                    self.results += 1;
                    self.sink.push(i, j);
                }
            }
            JoinKind::SelfJoin => {
                if js.contains(&i) {
                    self.candidates += n - 1;
                    self.dist_evals += n - 1;
                    self.metric.within_range(
                        probe,
                        self.b,
                        js.start..i,
                        self.eps,
                        &mut self.scratch,
                    );
                    self.metric.within_range(
                        probe,
                        self.b,
                        i + 1..js.end,
                        self.eps,
                        &mut self.scratch,
                    );
                } else {
                    self.candidates += n;
                    self.dist_evals += n;
                    self.metric
                        .within_range(probe, self.b, js, self.eps, &mut self.scratch);
                }
                for &j in &self.scratch {
                    self.results += 1;
                    self.sink.push(i.min(j), i.max(j));
                }
            }
        }
    }

    /// Offers the candidate lanes `lanes` of a pre-built SoA `block`
    /// against probe row `i`, evaluated through the across-candidate
    /// [`crate::metric::Metric::within_block`] kernel.
    ///
    /// Semantics mirror [`Refiner::offer_batch`] over
    /// `&block.ids()[lanes]` exactly: same counters (self-join diagonal
    /// lanes dropped before counting), same canonical `(min, max)`
    /// emission, same candidate order. Algorithms that tile their inner
    /// set once per join (blocked nested loops) use this to skip the
    /// per-batch gather.
    pub fn offer_block(&mut self, i: u32, block: &SoABlock, lanes: Range<usize>) {
        debug_assert!(lanes.end <= block.len());
        if lanes.end <= lanes.start {
            return;
        }
        let n = (lanes.end - lanes.start) as u64;
        self.scratch.clear();
        let probe = self.a.point(i);
        self.metric
            .within_block(probe, block, lanes.clone(), self.eps, &mut self.scratch);
        match self.kind {
            JoinKind::TwoSets => {
                self.candidates += n;
                self.dist_evals += n;
                for &j in &self.scratch {
                    self.results += 1;
                    self.sink.push(i, j);
                }
            }
            JoinKind::SelfJoin => {
                let diag = block.ids()[lanes].iter().filter(|&&j| j == i).count() as u64;
                self.candidates += n - diag;
                self.dist_evals += n - diag;
                for &j in &self.scratch {
                    if j == i {
                        continue;
                    }
                    self.results += 1;
                    self.sink.push(i.min(j), i.max(j));
                }
            }
        }
    }

    /// Counters accumulated so far, for merging into a [`JoinStats`].
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.candidates, self.results, self.dist_evals)
    }

    /// Folds the refiner's counters into `stats` and returns it (consuming
    /// the refiner, which releases the sink borrow).
    pub fn finish(self, mut stats: JoinStats) -> JoinStats {
        stats.candidates += self.candidates;
        stats.results += self.results;
        stats.dist_evals += self.dist_evals;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::VecSink;
    use crate::metric::Metric;

    fn square() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.0], vec![0.9, 0.9]]).unwrap()
    }

    #[test]
    fn two_set_offer_filters_by_metric() {
        let a = square();
        let b = square();
        let spec = JoinSpec::new(0.15, Metric::L2);
        let mut sink = VecSink::default();
        let mut r = Refiner::new(&a, &b, JoinKind::TwoSets, &spec, &mut sink);
        r.offer(0, 1); // dist 0.1 -> pass
        r.offer(0, 2); // far -> fail
        r.offer(1, 0); // two-set joins keep orientation
        let stats = r.finish(JoinStats::default());
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.results, 2);
        assert_eq!(stats.dist_evals, 3);
        assert_eq!(sink.pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn self_join_canonicalizes_and_drops_diagonal() {
        let a = square();
        let spec = JoinSpec::new(0.15, Metric::L2);
        let mut sink = VecSink::default();
        let mut r = Refiner::new(&a, &a, JoinKind::SelfJoin, &spec, &mut sink);
        r.offer(1, 0); // reversed orientation
        r.offer(2, 2); // diagonal: ignored entirely (not even a candidate)
        let stats = r.finish(JoinStats::default());
        assert_eq!(stats.candidates, 1);
        assert_eq!(sink.pairs, vec![(0, 1)]);
    }

    #[test]
    fn batch_and_range_offers_match_serial_offers() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64 * 0.21;
                vec![t.sin() * 0.5 + 0.5, t.cos() * 0.5 + 0.5]
            })
            .collect();
        let a = Dataset::from_rows(&rows).unwrap();
        let spec = JoinSpec::new(0.3, Metric::L2);
        for kind in [JoinKind::SelfJoin, JoinKind::TwoSets] {
            let mut serial_sink = VecSink::default();
            let mut serial = Refiner::new(&a, &a, kind, &spec, &mut serial_sink);
            for i in 0..30u32 {
                for j in 0..30u32 {
                    serial.offer(i, j);
                }
            }
            let serial_counters = serial.counters();
            drop(serial);

            let mut batch_sink = VecSink::default();
            let mut batch = Refiner::new(&a, &a, kind, &spec, &mut batch_sink);
            let ids: Vec<u32> = (0..30).collect();
            for i in 0..15u32 {
                batch.offer_batch(i, &ids);
            }
            for i in 15..30u32 {
                batch.offer_range(i, 0..30);
            }
            assert_eq!(batch.counters(), serial_counters, "{kind:?} counters");
            drop(batch);

            let mut block_sink = VecSink::default();
            let mut blocked = Refiner::new(&a, &a, kind, &spec, &mut block_sink);
            let tile = crate::soa::SoABlock::from_range(&a, 0..30);
            for i in 0..30u32 {
                blocked.offer_block(i, &tile, 0..15);
                blocked.offer_block(i, &tile, 15..30);
            }
            assert_eq!(
                blocked.counters(),
                serial_counters,
                "{kind:?} block counters"
            );
            drop(blocked);

            let canon = |mut v: Vec<(u32, u32)>| {
                v.sort_unstable();
                v
            };
            assert_eq!(
                canon(batch_sink.pairs),
                canon(serial_sink.pairs.clone()),
                "{kind:?} pairs"
            );
            assert_eq!(
                canon(block_sink.pairs),
                canon(serial_sink.pairs),
                "{kind:?} block pairs"
            );
        }
    }

    #[test]
    fn offer_range_handles_empty_and_diagonal_edges() {
        let a = square();
        let spec = JoinSpec::new(10.0, Metric::L2); // everything qualifies
        let mut sink = VecSink::default();
        let mut r = Refiner::new(&a, &a, JoinKind::SelfJoin, &spec, &mut sink);
        r.offer_range(0, 0..0); // empty
        #[allow(clippy::reversed_empty_ranges)]
        r.offer_range(0, 5..3); // inverted: treated as empty
        r.offer_range(0, 0..1); // only the diagonal: nothing offered
        assert_eq!(r.counters(), (0, 0, 0));
        r.offer_range(2, 0..3); // diagonal at the end of the range
        let stats = r.finish(JoinStats::default());
        assert_eq!(stats.candidates, 2);
        assert_eq!(sink.pairs, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn finish_accumulates_into_existing_stats() {
        let a = square();
        let spec = JoinSpec::new(1.0, Metric::Linf);
        let mut sink = VecSink::default();
        let mut r = Refiner::new(&a, &a, JoinKind::TwoSets, &spec, &mut sink);
        r.offer(0, 0);
        let base = JoinStats {
            candidates: 10,
            results: 5,
            dist_evals: 7,
            ..Default::default()
        };
        let stats = r.finish(base);
        assert_eq!(stats.candidates, 11);
        assert_eq!(stats.results, 6);
        assert_eq!(stats.dist_evals, 8);
    }
}

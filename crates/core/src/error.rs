//! Error type shared across the workspace.

use std::fmt;

/// Errors produced by dataset construction, storage, and the join algorithms.
#[derive(Debug)]
pub enum Error {
    /// Caller supplied inconsistent or out-of-domain input (mismatched
    /// dimensionality, non-finite coordinate, ε ≤ 0, …).
    InvalidInput(String),
    /// The algorithm cannot run with the given parameters (e.g. the ε-grid
    /// join refuses dimensionalities whose 3^d neighbourhood would explode).
    Unsupported(String),
    /// An error bubbled up from the paged storage engine.
    Storage(String),
    /// A page failed its checksum: the bytes read back differ from the
    /// bytes written. Unlike [`Error::Storage`] (a clean failure the
    /// caller may retry), corruption means the medium lied and retrying
    /// the same read would re-deliver the same bad bytes.
    Corruption(String),
    /// Operating-system I/O error (spill files, dataset persistence).
    Io(std::io::Error),
    /// An internal invariant did not hold (a "this cannot happen" branch
    /// was reached). Library code returns this instead of panicking so
    /// that broken invariants surface as a reportable error under the
    /// chaos suite rather than unwinding through FFI-free worker threads.
    Internal(String),
    /// The query was cancelled cooperatively (another thread raised the
    /// cancel flag on the query's `LifecycleCtx`). The join stopped at the
    /// next poll point; partial statistics were still flushed.
    Canceled(String),
    /// The query ran past its wall-clock deadline (`--deadline-ms`). Like
    /// cancellation this is observed cooperatively at poll points, so the
    /// overshoot is bounded by one chunk / one page operation.
    DeadlineExceeded(String),
    /// The query exhausted one of its resource budgets (memory pages or
    /// disk I/O operations) before completing. Retrying without a larger
    /// budget would fail at the same point, so this is not transient.
    BudgetExhausted(String),
}

/// Convenience alias used by every fallible API in the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// The variant's name, for error surfaces that map variants to exit
    /// codes or log fields.
    pub fn variant_name(&self) -> &'static str {
        match self {
            Error::InvalidInput(_) => "InvalidInput",
            Error::Unsupported(_) => "Unsupported",
            Error::Storage(_) => "Storage",
            Error::Corruption(_) => "Corruption",
            Error::Io(_) => "Io",
            Error::Internal(_) => "Internal",
            Error::Canceled(_) => "Canceled",
            Error::DeadlineExceeded(_) => "DeadlineExceeded",
            Error::BudgetExhausted(_) => "BudgetExhausted",
        }
    }

    /// True for failures where retrying the operation may succeed
    /// (transient storage faults and OS-level I/O errors). Corruption is
    /// deliberately *not* transient: the bad bytes are already on the
    /// medium.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Storage(_) | Error::Io(_))
    }

    /// True for the cooperative-lifecycle terminations (cancellation,
    /// deadline, budget). These are *graceful* exits: the join still
    /// flushes its stats and tracer output, and a checkpointed run can be
    /// resumed. None of them is transient — retrying with the same
    /// lifecycle limits fails at the same point.
    pub fn is_lifecycle(&self) -> bool {
        matches!(
            self,
            Error::Canceled(_) | Error::DeadlineExceeded(_) | Error::BudgetExhausted(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInput(m) => write!(f, "invalid input: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Corruption(m) => write!(f, "corruption detected: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
            Error::Canceled(m) => write!(f, "canceled: {m}"),
            Error::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            Error::BudgetExhausted(m) => write!(f, "budget exhausted: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_every_variant() {
        let cases = [
            (Error::InvalidInput("dims".into()), "invalid input: dims"),
            (
                Error::Unsupported("d too large".into()),
                "unsupported: d too large",
            ),
            (
                Error::Storage("page fault".into()),
                "storage error: page fault",
            ),
            (
                Error::Corruption("page 3 checksum".into()),
                "corruption detected: page 3 checksum",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn internal_formats_and_is_not_transient() {
        let err = Error::Internal("leaf index out of range".into());
        assert_eq!(err.variant_name(), "Internal");
        assert_eq!(
            err.to_string(),
            "internal invariant violated: leaf index out of range"
        );
        assert!(!err.is_transient());
    }

    #[test]
    fn variant_names_and_transience() {
        assert_eq!(
            Error::InvalidInput("x".into()).variant_name(),
            "InvalidInput"
        );
        assert_eq!(Error::Corruption("x".into()).variant_name(), "Corruption");
        assert!(Error::Storage("x".into()).is_transient());
        assert!(Error::Io(std::io::Error::other("x")).is_transient());
        assert!(!Error::Corruption("x".into()).is_transient());
        assert!(!Error::InvalidInput("x".into()).is_transient());
    }

    #[test]
    fn lifecycle_variants_format_and_classify() {
        let cases = [
            (
                Error::Canceled("by user".into()),
                "Canceled",
                "canceled: by user",
            ),
            (
                Error::DeadlineExceeded("after 5ms".into()),
                "DeadlineExceeded",
                "deadline exceeded: after 5ms",
            ),
            (
                Error::BudgetExhausted("io ops".into()),
                "BudgetExhausted",
                "budget exhausted: io ops",
            ),
        ];
        for (err, name, text) in cases {
            assert_eq!(err.variant_name(), name);
            assert_eq!(err.to_string(), text);
            assert!(err.is_lifecycle());
            assert!(!err.is_transient());
        }
        assert!(!Error::Internal("x".into()).is_lifecycle());
        assert!(!Error::Storage("x".into()).is_lifecycle());
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::other("boom");
        let err: Error = io.into();
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
    }
}

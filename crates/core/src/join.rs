//! The public join API: specifications, result sinks, and the trait every
//! algorithm implements.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::metric::Metric;
use crate::stats::JoinStats;

/// Whether the join runs over two datasets or one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// `A ⋈_ε B`: every `(a, b) ∈ A × B` with `D(a, b) ≤ ε`, reported as
    /// `(index in A, index in B)`.
    TwoSets,
    /// `A ⋈_ε A` without self pairs: every unordered pair `{i, j}`, `i ≠ j`,
    /// reported exactly once as `(min(i, j), max(i, j))`.
    SelfJoin,
}

/// Parameters of an ε-similarity join.
#[derive(Clone, Copy, Debug)]
pub struct JoinSpec {
    /// Distance threshold (must be `> 0` and finite).
    pub eps: f64,
    /// Distance function used for the exact refinement test.
    pub metric: Metric,
}

impl JoinSpec {
    /// A spec with the given threshold and the Euclidean metric.
    pub fn l2(eps: f64) -> JoinSpec {
        JoinSpec {
            eps,
            metric: Metric::L2,
        }
    }

    /// A spec with the given threshold and metric.
    pub fn new(eps: f64, metric: Metric) -> JoinSpec {
        JoinSpec { eps, metric }
    }

    /// Validates `eps` and the metric.
    pub fn validate(&self) -> Result<()> {
        if !(self.eps.is_finite() && self.eps > 0.0) {
            return Err(Error::InvalidInput(format!(
                "eps must be finite and > 0, got {}",
                self.eps
            )));
        }
        self.metric.validate()
    }
}

/// Receives the result pairs of a join, one at a time, in whatever order the
/// algorithm produces them.
pub trait PairSink {
    /// Called once per result pair.
    fn push(&mut self, i: u32, j: u32);
}

/// A sink that only counts results — the cheapest way to measure a join.
#[derive(Debug, Default)]
pub struct CountSink {
    /// Number of pairs received.
    pub count: u64,
}

impl PairSink for CountSink {
    fn push(&mut self, _i: u32, _j: u32) {
        self.count += 1;
    }
}

/// A sink that materializes all result pairs.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected pairs, in production order.
    pub pairs: Vec<(u32, u32)>,
}

impl PairSink for VecSink {
    fn push(&mut self, i: u32, j: u32) {
        self.pairs.push((i, j));
    }
}

/// Adapts any closure into a sink.
pub struct CallbackSink<F: FnMut(u32, u32)>(pub F);

impl<F: FnMut(u32, u32)> PairSink for CallbackSink<F> {
    fn push(&mut self, i: u32, j: u32) {
        (self.0)(i, j);
    }
}

/// An ε-similarity join algorithm.
///
/// Implementations must be exact (identical result sets across algorithms)
/// and must respect the pair-reporting conventions of [`JoinKind`]. The
/// `&mut self` receiver lets algorithms keep reusable scratch space and
/// storage handles between runs.
pub trait SimilarityJoin {
    /// Short identifier used in experiment output (`"MSJ"`, `"RSJ"`, …).
    fn name(&self) -> &'static str;

    /// Installs a tracer: subsequent runs record their phases as spans and
    /// their statistics as counters (see `hdsj-obs`). The default is a
    /// no-op so trivial implementations stay trivial; all workspace
    /// algorithms override it.
    fn set_tracer(&mut self, _tracer: crate::obs::Tracer) {}

    /// Sets the worker-thread budget for subsequent runs (`0` means "use
    /// all available parallelism", per `hdsj-exec`'s resolution rule). The
    /// default is a no-op: inherently serial algorithms simply ignore it,
    /// and results must be identical at every thread count.
    fn set_threads(&mut self, _threads: usize) {}

    /// Installs a lifecycle context (cancellation, deadline, budgets) for
    /// subsequent runs. Implementations poll it at phase boundaries and
    /// hand it to the exec pool and storage engine so a raised flag stops
    /// the join within one chunk / one page operation, returning the
    /// typed lifecycle error while still flushing stats. The default is a
    /// no-op so trivial implementations stay trivial; all workspace
    /// algorithms override it.
    fn set_lifecycle(&mut self, _ctx: crate::lifecycle::LifecycleCtx) {}

    /// Joins two datasets. `a.dims() == b.dims()` is required.
    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats>;

    /// Self-joins one dataset.
    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats>;
}

/// Validates the common preconditions shared by all algorithms; returns the
/// dimensionality.
pub fn validate_inputs(a: &Dataset, b: &Dataset, spec: &JoinSpec) -> Result<usize> {
    spec.validate()?;
    if a.dims() != b.dims() {
        return Err(Error::InvalidInput(format!(
            "dimensionality mismatch: {} vs {}",
            a.dims(),
            b.dims()
        )));
    }
    Ok(a.dims())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(JoinSpec::l2(0.1).validate().is_ok());
        assert!(JoinSpec::l2(0.0).validate().is_err());
        assert!(JoinSpec::l2(-1.0).validate().is_err());
        assert!(JoinSpec::l2(f64::NAN).validate().is_err());
        assert!(JoinSpec::new(0.1, Metric::Lp(0.2)).validate().is_err());
    }

    #[test]
    fn sinks_collect() {
        let mut c = CountSink::default();
        c.push(0, 1);
        c.push(2, 3);
        assert_eq!(c.count, 2);

        let mut v = VecSink::default();
        v.push(4, 5);
        assert_eq!(v.pairs, vec![(4, 5)]);

        let mut seen = Vec::new();
        {
            let mut cb = CallbackSink(|i, j| seen.push(i + j));
            cb.push(1, 2);
        }
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn input_validation_checks_dims() {
        let a = Dataset::new(2).unwrap();
        let b = Dataset::new(3).unwrap();
        let spec = JoinSpec::l2(0.1);
        assert!(validate_inputs(&a, &b, &spec).is_err());
        let b2 = Dataset::new(2).unwrap();
        assert_eq!(validate_inputs(&a, &b2, &spec).unwrap(), 2);
    }
}

//! Query lifecycle: cooperative cancellation, deadlines, and resource
//! budgets.
//!
//! A [`LifecycleCtx`] travels with one query. Every long-running layer
//! polls it cooperatively — exec-pool workers at chunk boundaries, the
//! buffer pool on every disk operation, the algorithms at phase
//! boundaries — so a raised cancel flag, an expired deadline, or an
//! exhausted budget terminates the query with a typed error
//! ([`Error::Canceled`] / [`Error::DeadlineExceeded`] /
//! [`Error::BudgetExhausted`]) within one chunk / one page-op granule,
//! never with a panic. The context is cheap to clone (an `Arc`), and a
//! [`CancelToken`] can raise the flag from any thread.
//!
//! Wall-clock reads are deliberately confined to this module: the
//! deadline is captured as an [`Instant`] at construction and compared in
//! [`LifecycleCtx::poll`], so R8-scoped deterministic modules (the sort,
//! the sweep, the kernels) never touch the clock themselves — they only
//! call `poll()`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// Shared state behind every clone of a [`LifecycleCtx`] /
/// [`CancelToken`] pair.
#[derive(Debug)]
struct Shared {
    /// Cancel gate: raised once by [`CancelToken::cancel`], observed by
    /// every poll site. Advisory only — no data is published through it.
    cancel: AtomicBool,
    /// Absolute wall-clock deadline, captured at construction.
    deadline: Option<Instant>,
    /// Total allowed disk operations (reads + writes + allocs).
    io_budget: Option<u64>,
    /// Total allowed distinct storage pages (pool allocations that grow
    /// the backing disk).
    page_budget: Option<u64>,
    /// Number of `poll()` calls — flushed as `lifecycle.cancel_polls`.
    polls: AtomicU64,
    /// Disk operations charged so far.
    io_used: AtomicU64,
    /// Pages charged so far.
    pages_used: AtomicU64,
    /// Durable checkpoints recorded — flushed as `lifecycle.checkpoints`.
    checkpoints: AtomicU64,
}

/// Per-query lifecycle context: cancel flag, deadline, and budgets.
///
/// Clones share state. The default context ([`LifecycleCtx::unbounded`])
/// never fires, so threading it through a path costs one atomic load per
/// poll.
#[derive(Clone, Debug)]
pub struct LifecycleCtx {
    shared: Arc<Shared>,
}

/// A handle that cancels the associated query from any thread.
#[derive(Clone, Debug)]
pub struct CancelToken {
    shared: Arc<Shared>,
}

/// Snapshot of lifecycle counters, for flushing into obs output even when
/// the query terminates early.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Number of cooperative poll calls.
    pub polls: u64,
    /// Disk operations charged against the I/O budget.
    pub io_used: u64,
    /// Pages charged against the memory-page budget.
    pub pages_used: u64,
    /// Durable checkpoints recorded.
    pub checkpoints: u64,
}

/// Builder for a bounded [`LifecycleCtx`].
#[derive(Debug, Default)]
pub struct LifecycleBuilder {
    deadline: Option<Duration>,
    io_budget: Option<u64>,
    page_budget: Option<u64>,
}

impl LifecycleBuilder {
    /// Sets a wall-clock deadline, measured from [`LifecycleBuilder::build`].
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Bounds the total number of disk operations.
    pub fn io_budget(mut self, ops: u64) -> Self {
        self.io_budget = Some(ops);
        self
    }

    /// Bounds the number of storage pages the query may allocate.
    pub fn page_budget(mut self, pages: u64) -> Self {
        self.page_budget = Some(pages);
        self
    }

    /// Builds the context; the deadline clock starts now.
    pub fn build(self) -> LifecycleCtx {
        LifecycleCtx {
            shared: Arc::new(Shared {
                cancel: AtomicBool::new(false),
                // allow(hdsj::determinism): arming a deadline is wall-clock
                // by definition; it gates *when* a query stops, not output.
                deadline: self.deadline.map(|d| Instant::now() + d),
                io_budget: self.io_budget,
                page_budget: self.page_budget,
                polls: AtomicU64::new(0),
                io_used: AtomicU64::new(0),
                pages_used: AtomicU64::new(0),
                checkpoints: AtomicU64::new(0),
            }),
        }
    }
}

impl Default for LifecycleCtx {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl LifecycleCtx {
    /// A context with no deadline and no budgets; only explicit
    /// cancellation can fire.
    pub fn unbounded() -> LifecycleCtx {
        LifecycleBuilder::default().build()
    }

    /// Starts building a bounded context.
    pub fn builder() -> LifecycleBuilder {
        LifecycleBuilder::default()
    }

    /// A token that cancels this query from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Cooperative poll point. Returns `Err(Canceled)` once the cancel
    /// flag is raised and `Err(DeadlineExceeded)` once the deadline
    /// passes; otherwise `Ok(())`. Callers place this at chunk, page-op,
    /// and phase boundaries — the granularity of those call sites bounds
    /// how far a query can overrun its cancellation.
    pub fn poll(&self) -> Result<()> {
        // ORDERING: Relaxed — the poll counter is a statistic.
        self.shared.polls.fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — the cancel flag is a monotonic advisory
        // gate; no memory is published through it, observing the raise
        // late only delays the stop by one poll interval.
        if self.shared.cancel.load(Ordering::Relaxed) {
            return Err(Error::Canceled("query canceled".into()));
        }
        if let Some(deadline) = self.shared.deadline {
            // allow(hdsj::determinism): the deadline check is wall-clock by
            // definition; it decides whether to stop, never output bytes.
            if Instant::now() >= deadline {
                return Err(Error::DeadlineExceeded("wall-clock deadline passed".into()));
            }
        }
        Ok(())
    }

    /// True once cancellation has been requested (does not consume a
    /// poll). Used by layers that want to stop issuing new work without
    /// constructing the error themselves.
    pub fn is_canceled(&self) -> bool {
        // ORDERING: Relaxed — advisory gate, see `poll`.
        self.shared.cancel.load(Ordering::Relaxed)
    }

    /// Charges `n` disk operations against the I/O budget.
    pub fn charge_io(&self, n: u64) -> Result<()> {
        // ORDERING: Relaxed — budget counters tolerate small overshoot;
        // the final `>` comparison is per-thread exact on the fetch_add
        // result.
        let prev = self.shared.io_used.fetch_add(n, Ordering::Relaxed);
        if let Some(budget) = self.shared.io_budget {
            if prev + n > budget {
                return Err(Error::BudgetExhausted(format!(
                    "i/o budget of {budget} disk ops exhausted"
                )));
            }
        }
        Ok(())
    }

    /// Charges `n` newly allocated storage pages against the page budget.
    pub fn charge_pages(&self, n: u64) -> Result<()> {
        // ORDERING: Relaxed — see `charge_io`.
        let prev = self.shared.pages_used.fetch_add(n, Ordering::Relaxed);
        if let Some(budget) = self.shared.page_budget {
            if prev + n > budget {
                return Err(Error::BudgetExhausted(format!(
                    "memory budget of {budget} pages exhausted"
                )));
            }
        }
        Ok(())
    }

    /// Records one durable checkpoint (manifest record + sync).
    pub fn note_checkpoint(&self) {
        // ORDERING: Relaxed — statistic.
        self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values; callable on both success and error paths
    /// so partial metrics are never lost.
    pub fn stats(&self) -> LifecycleStats {
        LifecycleStats {
            // ORDERING: Relaxed — statistics snapshot; exactness across
            // counters is not required.
            polls: self.shared.polls.load(Ordering::Relaxed),
            io_used: self.shared.io_used.load(Ordering::Relaxed),
            pages_used: self.shared.pages_used.load(Ordering::Relaxed),
            checkpoints: self.shared.checkpoints.load(Ordering::Relaxed),
        }
    }
}

impl CancelToken {
    /// Raises the cancel flag; every subsequent poll returns
    /// [`Error::Canceled`]. Idempotent.
    pub fn cancel(&self) {
        // ORDERING: Relaxed — monotonic advisory gate, see
        // `LifecycleCtx::poll`.
        self.shared.cancel.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_polls_forever() {
        let ctx = LifecycleCtx::unbounded();
        for _ in 0..1000 {
            ctx.poll().unwrap();
        }
        assert_eq!(ctx.stats().polls, 1000);
    }

    #[test]
    fn cancel_fires_on_next_poll() {
        let ctx = LifecycleCtx::unbounded();
        ctx.poll().unwrap();
        assert!(!ctx.is_canceled());
        ctx.cancel_token().cancel();
        assert!(ctx.is_canceled());
        let err = ctx.poll().unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
    }

    #[test]
    fn cancel_from_another_thread() {
        let ctx = LifecycleCtx::unbounded();
        let token = ctx.cancel_token();
        let handle = std::thread::spawn(move || token.cancel());
        handle.join().unwrap();
        assert!(matches!(ctx.poll(), Err(Error::Canceled(_))));
    }

    #[test]
    fn deadline_fires_after_elapse() {
        let ctx = LifecycleCtx::builder().deadline_ms(1).build();
        std::thread::sleep(Duration::from_millis(10));
        let err = ctx.poll().unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "{err}");
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let ctx = LifecycleCtx::builder().deadline_ms(60_000).build();
        ctx.poll().unwrap();
    }

    #[test]
    fn io_budget_exhausts() {
        let ctx = LifecycleCtx::builder().io_budget(3).build();
        ctx.charge_io(2).unwrap();
        ctx.charge_io(1).unwrap();
        let err = ctx.charge_io(1).unwrap_err();
        assert!(matches!(err, Error::BudgetExhausted(_)), "{err}");
        // Stays exhausted.
        assert!(ctx.charge_io(1).is_err());
        assert_eq!(ctx.stats().io_used, 5);
    }

    #[test]
    fn page_budget_exhausts() {
        let ctx = LifecycleCtx::builder().page_budget(2).build();
        ctx.charge_pages(1).unwrap();
        ctx.charge_pages(1).unwrap();
        assert!(matches!(
            ctx.charge_pages(1),
            Err(Error::BudgetExhausted(_))
        ));
    }

    #[test]
    fn stats_snapshot_counts_everything() {
        let ctx = LifecycleCtx::unbounded();
        ctx.poll().unwrap();
        ctx.poll().unwrap();
        ctx.charge_io(4).unwrap();
        ctx.charge_pages(7).unwrap();
        ctx.note_checkpoint();
        let s = ctx.stats();
        assert_eq!(
            s,
            LifecycleStats {
                polls: 2,
                io_used: 4,
                pages_used: 7,
                checkpoints: 1
            }
        );
    }

    #[test]
    fn clones_share_state() {
        let ctx = LifecycleCtx::unbounded();
        let clone = ctx.clone();
        clone.cancel_token().cancel();
        assert!(ctx.is_canceled());
    }
}

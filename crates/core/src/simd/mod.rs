//! Runtime-dispatched SIMD distance kernels.
//!
//! Every public function here is a thin dispatcher: a one-time capability
//! probe picks the best kernel tier the host supports (AVX2 → SSE2 →
//! scalar on x86-64, NEON → scalar on aarch64), and all subsequent calls
//! jump straight to that tier. The probe honours the `HDSJ_SIMD`
//! environment variable (`off`/`scalar`, `sse2`, `avx2`, `neon` — clamped
//! to what the host actually supports), and tests/benches can override it
//! programmatically with [`set_level`].
//!
//! ## The exactness contract
//!
//! Dispatch would be useless if the tiers disagreed. They cannot: every
//! tier computes the *bit-identical* sum of the 4-lane scalar kernels in
//! [`crate::kernels`] — dimensions `≡ k (mod 4)` feed lane accumulator
//! `k`, the per-pair result is the canonical fold
//! `(acc0 + acc1) + (acc2 + acc3)` plus a separately chained scalar tail,
//! all in plain IEEE sub/mul/add (never FMA). Early exits only ever
//! compare a *partial* monotone fold against the budget, so `within`
//! decisions equal the full-sum decision at every tier. Distances are
//! bit-identical; decisions are exactly identical; join results therefore
//! do not depend on the dispatch level. `Lp` for general `p` is
//! `powf`-bound and stays on the scalar kernels at every tier.
//!
//! The `*_within_block` entry points run the same contract over a
//! [`SoABlock`] candidate tile, vectorizing across candidates instead of
//! dimensions (see [`portable`], `x86`, `neon`).

pub mod portable;
pub mod tile;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use crate::kernels;
use crate::soa::SoABlock;
use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel tier. Discriminants order tiers by capability so clamping a
/// request to the host is a numeric comparison; `0` is reserved in the
/// private `DISPATCH` atomic for "not probed yet".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The 4-lane scalar kernels in [`crate::kernels`] — always available,
    /// and the oracle every other tier is differentially tested against.
    Scalar = 1,
    /// Two f64 lanes per vector (x86-64 baseline; no runtime probe needed).
    Sse2 = 2,
    /// Four f64 lanes per vector (runtime-probed).
    Avx2 = 3,
    /// Two f64 lanes per vector (aarch64 baseline).
    Neon = 4,
}

impl Level {
    /// Stable lowercase name, matching the `HDSJ_SIMD` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
            Level::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            2 => Level::Sse2,
            3 => Level::Avx2,
            4 => Level::Neon,
            _ => Level::Scalar,
        }
    }
}

/// The resolved dispatch level. `0` = not probed yet; otherwise a
/// [`Level`] discriminant. Probing is idempotent (every racer computes
/// the same value for a given environment), so relaxed ordering suffices.
static DISPATCH: AtomicU8 = AtomicU8::new(0);

/// The active dispatch level, probing the host (and `HDSJ_SIMD`) on the
/// first call.
pub fn level() -> Level {
    // ORDERING: Relaxed is sufficient — DISPATCH is a standalone gate with
    // no dependent data; racing initializers all store the same value.
    let v = DISPATCH.load(Ordering::Relaxed);
    if v != 0 {
        return Level::from_u8(v);
    }
    let resolved = clamp(requested());
    // ORDERING: Relaxed — idempotent publish; every racer derived the
    // identical value from the same environment and host capabilities.
    DISPATCH.store(resolved as u8, Ordering::Relaxed);
    resolved
}

/// Forces the dispatch level (clamped to what the host supports) and
/// returns the effective level. Test and bench sweeps use this to run the
/// same workload at every tier.
pub fn set_level(requested: Level) -> Level {
    let effective = clamp(requested);
    // ORDERING: Relaxed — standalone gate, no dependent data to publish.
    DISPATCH.store(effective as u8, Ordering::Relaxed);
    effective
}

/// Every tier this host can run, in ascending capability order (always
/// starts with [`Level::Scalar`]).
pub fn supported() -> Vec<Level> {
    let mut tiers = vec![Level::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        tiers.push(Level::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            tiers.push(Level::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    tiers.push(Level::Neon);
    tiers
}

/// The best tier this host supports.
pub fn best() -> Level {
    supported().last().copied().unwrap_or(Level::Scalar)
}

/// The level the environment asks for: `HDSJ_SIMD` if set (unknown values
/// fall back to the host's best), else the host's best.
fn requested() -> Level {
    match std::env::var("HDSJ_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" => Level::Scalar,
            "sse2" => Level::Sse2,
            "avx2" => Level::Avx2,
            "neon" => Level::Neon,
            _ => best(),
        },
        Err(_) => best(),
    }
}

/// Clamps a requested tier to the host: the most capable supported tier
/// that does not exceed the request (requesting `avx2` on an SSE2-only
/// host yields `sse2`; requesting `neon` on x86 yields the x86 best).
fn clamp(requested: Level) -> Level {
    supported()
        .into_iter()
        .filter(|l| *l <= requested)
        .max()
        .unwrap_or(Level::Scalar)
}

// ---------------------------------------------------------------------
// Pair dispatchers. Each match carries a `_` arm to the scalar kernels:
// `clamp` guarantees foreign-arch tiers are never stored, so the arm only
// ever runs for `Level::Scalar` (and keeps each arch's match exhaustive).
// ---------------------------------------------------------------------

/// Manhattan distance `Σ |aᵢ − bᵢ|` at the active dispatch level.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_l1_distance(a, b),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_l1_distance(a, b),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::l1_distance(a, b),
        _ => kernels::l1_distance(a, b),
    }
}

/// Euclidean distance `√Σ (aᵢ − bᵢ)²` at the active dispatch level.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_l2_distance(a, b),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_l2_distance(a, b),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::l2_distance(a, b),
        _ => kernels::l2_distance(a, b),
    }
}

/// Chebyshev distance `max |aᵢ − bᵢ|` at the active dispatch level.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_linf_distance(a, b),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_linf_distance(a, b),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::linf_distance(a, b),
        _ => kernels::linf_distance(a, b),
    }
}

/// Minkowski distance for general `p`. `powf` has no vector form, so this
/// is the scalar kernel at every tier.
pub fn lp_distance(a: &[f64], b: &[f64], p: f64) -> f64 {
    kernels::lp_distance(a, b, p)
}

/// `Σ |aᵢ − bᵢ| ≤ eps` at the active dispatch level.
pub fn l1_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_l1_within(a, b, eps),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_l1_within(a, b, eps),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::l1_within(a, b, eps),
        _ => kernels::l1_within(a, b, eps),
    }
}

/// `Σ (aᵢ − bᵢ)² ≤ eps²` at the active dispatch level (no root taken).
pub fn l2_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_l2_within(a, b, eps),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_l2_within(a, b, eps),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::l2_within(a, b, eps),
        _ => kernels::l2_within(a, b, eps),
    }
}

/// `max |aᵢ − bᵢ| ≤ eps` at the active dispatch level.
pub fn linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_linf_within(a, b, eps),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_linf_within(a, b, eps),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::linf_within(a, b, eps),
        _ => kernels::linf_within(a, b, eps),
    }
}

/// `Σ |aᵢ − bᵢ|^p ≤ eps^p` — scalar at every tier (see [`lp_distance`]).
pub fn lp_within(a: &[f64], b: &[f64], eps: f64, p: f64) -> bool {
    kernels::lp_within(a, b, eps, p)
}

// ---------------------------------------------------------------------
// Block dispatchers: one probe row against a SoA candidate tile.
// ---------------------------------------------------------------------

/// L1 block filter: pushes ids of lanes in `lanes` whose L1 distance to
/// `probe` is `≤ eps`, in lane order.
pub fn l1_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_l1_within_block(probe, block, lanes, eps, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_l1_within_block(probe, block, lanes, eps, out),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::l1_within_block(probe, block, lanes, eps, out),
        _ => portable::l1_within_block(probe, block, lanes, eps, out),
    }
}

/// L2 block filter (squared domain; see [`l1_within_block`] for shape).
pub fn l2_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_l2_within_block(probe, block, lanes, eps, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_l2_within_block(probe, block, lanes, eps, out),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::l2_within_block(probe, block, lanes, eps, out),
        _ => portable::l2_within_block(probe, block, lanes, eps, out),
    }
}

/// L∞ block filter (see [`l1_within_block`] for shape).
pub fn linf_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => x86::sse2_linf_within_block(probe, block, lanes, eps, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => x86::avx2_linf_within_block(probe, block, lanes, eps, out),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => neon::linf_within_block(probe, block, lanes, eps, out),
        _ => portable::linf_within_block(probe, block, lanes, eps, out),
    }
}

/// Lp block filter — the portable strided path at every tier.
pub fn lp_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    p: f64,
    out: &mut Vec<u32>,
) {
    portable::lp_within_block(probe, block, lanes, eps, p, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn ds(n: usize, dims: usize) -> Dataset {
        let flat: Vec<f64> = (0..n * dims)
            .map(|i| ((i as f64 * 0.43).sin() * 0.5 + 0.5).abs())
            .collect();
        Dataset::from_flat(dims, flat).unwrap()
    }

    #[test]
    fn clamp_never_exceeds_the_request_or_the_host() {
        for req in [Level::Scalar, Level::Sse2, Level::Avx2, Level::Neon] {
            let eff = clamp(req);
            assert!(eff <= req, "{req:?} -> {eff:?}");
            assert!(supported().contains(&eff), "{req:?} -> {eff:?}");
        }
        assert_eq!(clamp(Level::Scalar), Level::Scalar);
    }

    #[test]
    fn supported_starts_with_scalar_and_is_ascending() {
        let tiers = supported();
        assert_eq!(tiers[0], Level::Scalar);
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(best(), *tiers.last().unwrap());
    }

    // The full differential suite lives in tests/simd_parity.rs; this is
    // the smoke-level check that every supported tier agrees bit-for-bit
    // through the public dispatchers. Runs the sweep in one test body
    // because set_level mutates process-global state.
    #[test]
    fn every_supported_tier_matches_the_scalar_kernels() {
        let d = ds(9, 33);
        let saved = level();
        for tier in supported() {
            assert_eq!(set_level(tier), tier);
            for i in 0..9u32 {
                for j in 0..9u32 {
                    let (a, b) = (d.point(i), d.point(j));
                    assert_eq!(
                        l1_distance(a, b).to_bits(),
                        kernels::l1_distance(a, b).to_bits(),
                        "l1 {tier:?} {i},{j}"
                    );
                    assert_eq!(
                        l2_distance(a, b).to_bits(),
                        kernels::l2_distance(a, b).to_bits(),
                        "l2 {tier:?} {i},{j}"
                    );
                    assert_eq!(
                        linf_distance(a, b).to_bits(),
                        kernels::linf_distance(a, b).to_bits(),
                        "linf {tier:?} {i},{j}"
                    );
                    for eps in [0.2, 1.0, 2.5] {
                        assert_eq!(
                            l2_within(a, b, eps),
                            kernels::l2_within(a, b, eps),
                            "within {tier:?} {i},{j} {eps}"
                        );
                    }
                }
            }
        }
        set_level(saved);
    }

    #[test]
    fn block_dispatch_matches_portable_at_every_tier() {
        let d = ds(23, 17);
        let block = crate::soa::SoABlock::from_range(&d, 0..23);
        let probe = d.point(11).to_vec();
        let saved = level();
        for tier in supported() {
            set_level(tier);
            for eps in [0.1, 0.6, 2.0] {
                for (name, f) in [
                    (
                        "l1",
                        l1_within_block
                            as fn(&[f64], &SoABlock, Range<usize>, f64, &mut Vec<u32>),
                    ),
                    ("l2", l2_within_block),
                    ("linf", linf_within_block),
                ] {
                    let mut got = Vec::new();
                    f(&probe, &block, 0..23, eps, &mut got);
                    let mut want = Vec::new();
                    match name {
                        "l1" => {
                            portable::l1_within_block(&probe, &block, 0..23, eps, &mut want)
                        }
                        "l2" => {
                            portable::l2_within_block(&probe, &block, 0..23, eps, &mut want)
                        }
                        _ => portable::linf_within_block(&probe, &block, 0..23, eps, &mut want),
                    }
                    assert_eq!(got, want, "{name} {tier:?} eps={eps}");
                }
            }
        }
        set_level(saved);
    }

    #[test]
    fn level_names_round_trip_the_env_spelling() {
        for l in [Level::Scalar, Level::Sse2, Level::Avx2, Level::Neon] {
            assert!(!l.name().is_empty());
        }
        assert_eq!(Level::from_u8(Level::Avx2 as u8), Level::Avx2);
        assert_eq!(Level::from_u8(0), Level::Scalar);
    }
}

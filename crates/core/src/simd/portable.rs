//! Portable strided block kernels — the scalar dispatch level's SoA path
//! and the fallback for metrics without a vector implementation (`Lp`).
//!
//! These walk a [`SoABlock`] one candidate lane at a time with **exactly**
//! the accumulation scheme of [`crate::kernels`]: four dimension-lane
//! accumulators (`acc[k]` collects dimensions `≡ k (mod 4)`), the
//! canonical monotone fold `(acc0 + acc1) + (acc2 + acc3)`, a separately
//! chained scalar tail for `d mod 4`, and the first-4 / per-16 early-exit
//! cadence. The per-candidate sum is therefore bit-identical to what
//! `kernels::*_within(probe, row)` computes on the row-major layout, so
//! decisions — and hence join results — cannot depend on which path ran.

use crate::kernels::{fold4, SUPER_BLOCK};
use crate::soa::SoABlock;
use std::ops::Range;

/// `Σ term(probe[dim], lane t's dim) ≤ budget` for one candidate lane,
/// with the canonical lane decomposition and early-exit cadence.
#[inline(always)]
fn sum_within_at(
    probe: &[f64],
    block: &SoABlock,
    t: usize,
    budget: f64,
    term: impl Fn(f64, f64) -> f64,
) -> bool {
    let d = probe.len();
    let mut acc = [0.0f64; 4];
    let mut dim = 0;
    if d >= 4 {
        for k in 0..4 {
            acc[k] += term(probe[k], block.value(k, t));
        }
        if fold4(&acc) > budget {
            return false;
        }
        dim = 4;
    }
    while dim + SUPER_BLOCK <= d {
        for c in 0..SUPER_BLOCK / 4 {
            for (k, a) in acc.iter_mut().enumerate() {
                let at = dim + 4 * c + k;
                *a += term(probe[at], block.value(at, t));
            }
        }
        if fold4(&acc) > budget {
            return false;
        }
        dim += SUPER_BLOCK;
    }
    while dim + 4 <= d {
        for k in 0..4 {
            acc[k] += term(probe[dim + k], block.value(dim + k, t));
        }
        dim += 4;
    }
    let mut tail = 0.0;
    while dim < d {
        tail += term(probe[dim], block.value(dim, t));
        dim += 1;
    }
    fold4(&acc) + tail <= budget
}

/// `max term(probe[dim], lane t's dim) ≤ eps` for one candidate lane.
/// `max` over non-negative finite terms is order-independent, so any exit
/// schedule yields the full-max decision.
#[inline(always)]
fn max_within_at(probe: &[f64], block: &SoABlock, t: usize, eps: f64) -> bool {
    let d = probe.len();
    let mut m = 0.0f64;
    let mut dim = 0;
    while dim < d {
        let stop = (dim + SUPER_BLOCK).min(d);
        while dim < stop {
            m = m.max((probe[dim] - block.value(dim, t)).abs());
            dim += 1;
        }
        if m > eps {
            return false;
        }
    }
    true
}

/// Budget-domain single-lane test used by the vector block kernels for
/// their ragged tail lanes (`SQ` selects the squared L2 term; the budget
/// is already in the accumulation domain, e.g. `eps²`).
#[inline]
pub(crate) fn sum_within_budget<const SQ: bool>(
    probe: &[f64],
    block: &SoABlock,
    t: usize,
    budget: f64,
) -> bool {
    if SQ {
        sum_within_at(probe, block, t, budget, |x, y| (x - y) * (x - y))
    } else {
        sum_within_at(probe, block, t, budget, |x, y| (x - y).abs())
    }
}

/// Single-lane L∞ test for the vector block kernels' ragged tail lanes.
#[inline]
pub(crate) fn max_within_budget(probe: &[f64], block: &SoABlock, t: usize, eps: f64) -> bool {
    max_within_at(probe, block, t, eps)
}

/// Generic lane loop shared by the per-metric entry points below: pushes
/// `block.ids()[t]` for every qualifying lane in `lanes`, in lane order.
#[inline(always)]
fn filter_lanes(
    block: &SoABlock,
    lanes: Range<usize>,
    out: &mut Vec<u32>,
    within_at: impl Fn(usize) -> bool,
) {
    debug_assert!(lanes.end <= block.len());
    for t in lanes {
        if within_at(t) {
            out.push(block.ids()[t]);
        }
    }
}

/// L1 block filter: `Σ |pᵢ − cᵢ| ≤ eps`.
pub fn l1_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    filter_lanes(block, lanes, out, |t| {
        sum_within_at(probe, block, t, eps, |x, y| (x - y).abs())
    });
}

/// L2 block filter in the squared domain: `Σ (pᵢ − cᵢ)² ≤ eps²`.
pub fn l2_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    filter_lanes(block, lanes, out, |t| {
        sum_within_at(probe, block, t, eps * eps, |x, y| (x - y) * (x - y))
    });
}

/// L∞ block filter: `max |pᵢ − cᵢ| ≤ eps`.
pub fn linf_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    filter_lanes(block, lanes, out, |t| max_within_at(probe, block, t, eps));
}

/// Lp block filter in the `ε^p` domain. `powf` has no vector ISA, so every
/// dispatch level routes Lp blocks here.
pub fn lp_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    p: f64,
    out: &mut Vec<u32>,
) {
    filter_lanes(block, lanes, out, |t| {
        sum_within_at(probe, block, t, eps.powf(p), |x, y| (x - y).abs().powf(p))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::kernels;

    fn ds(n: usize, dims: usize) -> Dataset {
        let flat: Vec<f64> = (0..n * dims)
            .map(|i| ((i as f64 * 0.61).sin() * 0.5 + 0.5).abs())
            .collect();
        Dataset::from_flat(dims, flat).unwrap()
    }

    #[test]
    fn strided_decisions_match_row_major_kernels() {
        for dims in [1, 3, 4, 5, 16, 17, 64, 65] {
            let d = ds(13, dims);
            let block = crate::soa::SoABlock::from_range(&d, 0..13);
            let probe = d.point(6).to_vec();
            for eps in [0.05, 0.3, 1.0, 3.0] {
                let expect = |within: &dyn Fn(&[f64], &[f64]) -> bool| -> Vec<u32> {
                    (0..13u32).filter(|&j| within(&probe, d.point(j))).collect()
                };
                let mut got = Vec::new();
                l2_within_block(&probe, &block, 0..13, eps, &mut got);
                assert_eq!(
                    got,
                    expect(&|a, b| kernels::l2_within(a, b, eps)),
                    "l2 d={dims} eps={eps}"
                );
                got.clear();
                l1_within_block(&probe, &block, 0..13, eps, &mut got);
                assert_eq!(
                    got,
                    expect(&|a, b| kernels::l1_within(a, b, eps)),
                    "l1 d={dims} eps={eps}"
                );
                got.clear();
                linf_within_block(&probe, &block, 0..13, eps, &mut got);
                assert_eq!(
                    got,
                    expect(&|a, b| kernels::linf_within(a, b, eps)),
                    "linf d={dims} eps={eps}"
                );
                got.clear();
                lp_within_block(&probe, &block, 0..13, eps, 3.0, &mut got);
                assert_eq!(
                    got,
                    expect(&|a, b| kernels::lp_within(a, b, eps, 3.0)),
                    "lp d={dims} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn lane_subranges_restrict_emission() {
        let d = ds(10, 4);
        let block = crate::soa::SoABlock::from_range(&d, 0..10);
        let probe = d.point(0).to_vec();
        let mut all = Vec::new();
        l2_within_block(&probe, &block, 0..10, 10.0, &mut all);
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
        let mut sub = Vec::new();
        l2_within_block(&probe, &block, 3..7, 10.0, &mut sub);
        assert_eq!(sub, vec![3, 4, 5, 6]);
    }
}

//! Cache probing and tile-size selection for blocked refinement.
//!
//! The blocked refinement loops hold one probe row plus a candidate tile
//! in cache while they stream dimension columns. Tile sizes therefore
//! come from the host's cache hierarchy: candidate tiles are sized for a
//! fraction of L1d (the tile's columns are revisited once per probe
//! dimension group), probe blocks for a fraction of L2 (each probe row is
//! revisited once per tile).
//!
//! Sizes are read once from sysfs (`/sys/devices/system/cpu/cpu0/cache`)
//! and fall back to conservative defaults (32 KiB L1d / 256 KiB L2) when
//! the files are absent (non-Linux, sandboxes). The probed values affect
//! only *loop chunking* — which candidates get grouped into a tile —
//! never the per-pair arithmetic, so results are byte-identical across
//! hosts with different caches; and they deliberately do **not** depend
//! on the SIMD dispatch level, so `HDSJ_SIMD` sweeps see identical tile
//! boundaries too.

use std::sync::OnceLock;

/// Effective cache budget per level, in bytes.
#[derive(Clone, Copy, Debug)]
pub struct CacheInfo {
    /// L1 data cache size in bytes.
    pub l1d: usize,
    /// Unified L2 size in bytes.
    pub l2: usize,
}

/// Conservative defaults when sysfs is unavailable.
const DEFAULT: CacheInfo = CacheInfo {
    l1d: 32 * 1024,
    l2: 256 * 1024,
};

/// The probed cache sizes for this host (probed once, then cached).
pub fn cache_info() -> CacheInfo {
    static INFO: OnceLock<CacheInfo> = OnceLock::new();
    *INFO.get_or_init(probe)
}

fn probe() -> CacheInfo {
    let mut info = DEFAULT;
    // cpu0's cache levels; index0..index4 covers L1d/L1i/L2/L3 layouts.
    for index in 0..5 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let (Some(level), Some(ty), Some(size)) = (
            read_trim(&format!("{dir}/level")),
            read_trim(&format!("{dir}/type")),
            read_trim(&format!("{dir}/size")).and_then(|s| parse_size(&s)),
        ) else {
            continue;
        };
        match (level.as_str(), ty.as_str()) {
            ("1", "Data") => info.l1d = size,
            ("2", "Unified") | ("2", "Data") => info.l2 = size,
            _ => {}
        }
    }
    info
}

fn read_trim(path: &str) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

/// Parses sysfs cache sizes: `48K`, `2048K`, `1M`, or a bare byte count.
fn parse_size(s: &str) -> Option<usize> {
    let (digits, mul) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mul)
}

/// Candidate-tile width (lanes) for `dims`-dimensional points: half of
/// L1d for the tile's coordinate columns, rounded down to a multiple of
/// [`crate::soa::LANE_PAD`] and clamped to a sane range.
pub fn soa_tile_width(dims: usize) -> usize {
    let budget = cache_info().l1d / 2;
    let lanes = budget / (std::mem::size_of::<f64>() * dims.max(1));
    let pad = crate::soa::LANE_PAD;
    (lanes / pad * pad).clamp(pad * 4, 4096)
}

/// Probe-block row count for the outer loop of blocked brute force: half
/// of L2 for the probe rows revisited across every tile.
pub fn probe_block_rows(dims: usize) -> usize {
    let budget = cache_info().l2 / 2;
    (budget / (std::mem::size_of::<f64>() * dims.max(1))).clamp(32, 8192)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_handles_sysfs_forms() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("xK"), None);
    }

    #[test]
    fn tile_sizes_are_padded_and_clamped() {
        for dims in [1, 3, 16, 64, 256, 4096] {
            let w = soa_tile_width(dims);
            assert_eq!(w % crate::soa::LANE_PAD, 0, "dims={dims}");
            assert!((16..=4096).contains(&w), "dims={dims}: {w}");
            assert!(probe_block_rows(dims) >= 32, "dims={dims}");
        }
    }

    #[test]
    fn probe_is_stable() {
        let a = cache_info();
        let b = cache_info();
        assert_eq!((a.l1d, a.l2), (b.l1d, b.l2));
        assert!(a.l1d >= 4 * 1024);
    }
}

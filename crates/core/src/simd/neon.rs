//! NEON distance kernels for aarch64.
//!
//! Structurally a twin of the SSE2 tier in `x86.rs`: two dimension lanes
//! per `float64x2_t`, the canonical `(acc0 + acc1) + (acc2 + acc3)` fold
//! via scalar lane extraction, plain sub/mul/add (no fused multiply-add
//! — `vfmaq_f64` would change rounding), and the same first-4 / per-16
//! early-exit cadence, so decisions are bit-identical to the scalar
//! kernels. NEON is in the aarch64 baseline feature set, so the kernels
//! are directly callable without a runtime probe.
//!
//! `unsafe` here is confined to unaligned vector loads from in-bounds
//! slice regions, each with a `SAFETY:` comment per R2.
#![allow(unsafe_code)]
// Older toolchains still mark some NEON intrinsics `unsafe`; the blocks
// below are needed there and redundant (but harmless) on newer ones.
#![allow(unused_unsafe)]

use crate::simd::portable;
use crate::soa::SoABlock;
use core::arch::aarch64::*;
use std::ops::Range;

/// Scalar tail term: `(x−y)²` or `|x−y|`.
#[inline(always)]
fn sterm<const SQ: bool>(x: f64, y: f64) -> f64 {
    if SQ {
        (x - y) * (x - y)
    } else {
        (x - y).abs()
    }
}

/// Loads 2 consecutive f64s starting at `xs[at]`.
#[inline(always)]
fn load2(xs: &[f64], at: usize) -> float64x2_t {
    debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);
    // SAFETY: callers maintain `at + 2 <= xs.len()` (pair kernels stop at
    // `dim + 4 <= d`; block kernels pass `dim * width + t` with
    // `t + 2 <= width`, `dim < dims`, into the `dims × width` buffer).
    unsafe { vld1q_f64(xs.as_ptr().add(at)) }
}

/// One 2-dimension term vector: `(a−b)²` (`SQ`) or `|a−b|`.
#[inline(always)]
fn term<const SQ: bool>(a: float64x2_t, b: float64x2_t) -> float64x2_t {
    // SAFETY: NEON is statically enabled on aarch64; these arithmetic
    // intrinsics have no memory or validity preconditions.
    unsafe {
        let d = vsubq_f64(a, b);
        if SQ {
            vmulq_f64(d, d)
        } else {
            vabsq_f64(d)
        }
    }
}

/// The canonical fold `(acc0 + acc1) + (acc2 + acc3)`.
#[inline(always)]
fn fold(acc01: float64x2_t, acc23: float64x2_t) -> f64 {
    // SAFETY: NEON is statically enabled on aarch64; lane extraction has
    // no preconditions for in-range constant lane indexes.
    unsafe {
        (vgetq_lane_f64::<0>(acc01) + vgetq_lane_f64::<1>(acc01))
            + (vgetq_lane_f64::<0>(acc23) + vgetq_lane_f64::<1>(acc23))
    }
}

/// Lane-wise vector add (named to keep the kernel bodies readable).
#[inline(always)]
fn vadd(a: float64x2_t, b: float64x2_t) -> float64x2_t {
    // SAFETY: NEON is statically enabled on aarch64; no preconditions.
    unsafe { vaddq_f64(a, b) }
}

/// Lane-wise vector max.
#[inline(always)]
fn vmax(a: float64x2_t, b: float64x2_t) -> float64x2_t {
    // SAFETY: NEON is statically enabled on aarch64; no preconditions.
    unsafe { vmaxq_f64(a, b) }
}

/// Broadcast of one f64 to both lanes.
#[inline(always)]
fn splat(v: f64) -> float64x2_t {
    // SAFETY: NEON is statically enabled on aarch64; no preconditions.
    unsafe { vdupq_n_f64(v) }
}

/// Per-lane `a > b` as two booleans.
#[inline(always)]
fn gt(a: float64x2_t, b: float64x2_t) -> [bool; 2] {
    // SAFETY: NEON is statically enabled on aarch64; no preconditions.
    unsafe {
        let m = vcgtq_f64(a, b);
        [vgetq_lane_u64::<0>(m) != 0, vgetq_lane_u64::<1>(m) != 0]
    }
}

/// Per-lane `a ≤ b` as two booleans.
#[inline(always)]
fn le(a: float64x2_t, b: float64x2_t) -> [bool; 2] {
    // SAFETY: NEON is statically enabled on aarch64; no preconditions.
    unsafe {
        let m = vcleq_f64(a, b);
        [vgetq_lane_u64::<0>(m) != 0, vgetq_lane_u64::<1>(m) != 0]
    }
}

/// `Σ term(aᵢ, bᵢ)` with the canonical lane decomposition.
fn sum_distance<const SQ: bool>(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    let mut acc01 = splat(0.0);
    let mut acc23 = splat(0.0);
    let mut dim = 0;
    while dim + 4 <= d {
        acc01 = vadd(acc01, term::<SQ>(load2(a, dim), load2(b, dim)));
        acc23 = vadd(acc23, term::<SQ>(load2(a, dim + 2), load2(b, dim + 2)));
        dim += 4;
    }
    let mut tail = 0.0;
    while dim < d {
        tail += sterm::<SQ>(a[dim], b[dim]);
        dim += 1;
    }
    fold(acc01, acc23) + tail
}

/// `Σ term(aᵢ, bᵢ) ≤ budget` with the first-4 / per-16 exit cadence.
fn sum_within<const SQ: bool>(a: &[f64], b: &[f64], budget: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    let mut acc01 = splat(0.0);
    let mut acc23 = splat(0.0);
    let mut dim = 0;
    if d >= 4 {
        acc01 = vadd(acc01, term::<SQ>(load2(a, 0), load2(b, 0)));
        acc23 = vadd(acc23, term::<SQ>(load2(a, 2), load2(b, 2)));
        if fold(acc01, acc23) > budget {
            return false;
        }
        dim = 4;
    }
    while dim + 16 <= d {
        for c in 0..4 {
            let at = dim + 4 * c;
            acc01 = vadd(acc01, term::<SQ>(load2(a, at), load2(b, at)));
            acc23 = vadd(acc23, term::<SQ>(load2(a, at + 2), load2(b, at + 2)));
        }
        if fold(acc01, acc23) > budget {
            return false;
        }
        dim += 16;
    }
    while dim + 4 <= d {
        acc01 = vadd(acc01, term::<SQ>(load2(a, dim), load2(b, dim)));
        acc23 = vadd(acc23, term::<SQ>(load2(a, dim + 2), load2(b, dim + 2)));
        dim += 4;
    }
    let mut tail = 0.0;
    while dim < d {
        tail += sterm::<SQ>(a[dim], b[dim]);
        dim += 1;
    }
    fold(acc01, acc23) + tail <= budget
}

/// Manhattan distance via NEON.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    sum_distance::<false>(a, b)
}

/// Euclidean distance via NEON.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    sum_distance::<true>(a, b).sqrt()
}

/// `max |aᵢ − bᵢ|` via NEON (order-independent max, exact).
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    let mut m = splat(0.0);
    let mut dim = 0;
    while dim + 2 <= d {
        m = vmax(m, term::<false>(load2(a, dim), load2(b, dim)));
        dim += 2;
    }
    let mut tail = 0.0f64;
    while dim < d {
        tail = tail.max((a[dim] - b[dim]).abs());
        dim += 1;
    }
    // SAFETY: NEON is statically enabled on aarch64; lane extraction has
    // no preconditions.
    let (m0, m1) = unsafe { (vgetq_lane_f64::<0>(m), vgetq_lane_f64::<1>(m)) };
    m0.max(m1).max(tail)
}

/// `Σ |aᵢ − bᵢ| ≤ eps` via NEON.
pub fn l1_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    sum_within::<false>(a, b, eps)
}

/// `Σ (aᵢ − bᵢ)² ≤ eps²` via NEON (no root taken).
pub fn l2_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    sum_within::<true>(a, b, eps * eps)
}

/// `max |aᵢ − bᵢ| ≤ eps` via NEON with block-level early exit.
pub fn linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    let mut m = splat(0.0);
    let mut dim = 0;
    while dim + 2 <= d {
        let stop = dim + 16;
        while dim + 2 <= stop.min(d) {
            m = vmax(m, term::<false>(load2(a, dim), load2(b, dim)));
            dim += 2;
        }
        // SAFETY: NEON is statically enabled on aarch64; lane extraction
        // has no preconditions.
        let (m0, m1) = unsafe { (vgetq_lane_f64::<0>(m), vgetq_lane_f64::<1>(m)) };
        if m0.max(m1) > eps {
            return false;
        }
    }
    let mut tail = 0.0f64;
    while dim < d {
        tail = tail.max((a[dim] - b[dim]).abs());
        dim += 1;
    }
    // SAFETY: NEON is statically enabled on aarch64; lane extraction has
    // no preconditions.
    let (m0, m1) = unsafe { (vgetq_lane_f64::<0>(m), vgetq_lane_f64::<1>(m)) };
    m0.max(m1).max(tail) <= eps
}

/// Accumulates dimensions `base..base+4` for the candidate pair at lanes
/// `t..t+2`. Columns are addressed as dimension-major offsets into the
/// block's `data` buffer (`dim * width + t`) so the innermost loop does
/// no per-column slice construction.
#[inline(always)]
fn step<const SQ: bool>(
    probe: &[f64],
    data: &[f64],
    width: usize,
    base: usize,
    t: usize,
    acc: &mut [float64x2_t; 4],
) {
    for (k, a) in acc.iter_mut().enumerate() {
        let vp = splat(probe[base + k]);
        // BOUND: base + 4 <= dims, k < 4, t + 2 <= width ⇒ offset < dims * width.
        let vc = load2(data, (base + k) * width + t);
        *a = vadd(*a, term::<SQ>(vp, vc));
    }
}

/// Lane-wise canonical fold: one partial sum per candidate lane.
#[inline(always)]
fn fold_v(acc: &[float64x2_t; 4]) -> float64x2_t {
    vadd(vadd(acc[0], acc[1]), vadd(acc[2], acc[3]))
}

/// Pushes qualifying lane ids for a 2-candidate group.
#[inline(always)]
fn emit(ok: [bool; 2], t: usize, end: usize, ids: &[u32], out: &mut Vec<u32>) {
    let lanes = (end - t).min(2);
    for (k, &ok) in ok.iter().enumerate().take(lanes) {
        if ok {
            out.push(ids[t + k]);
        }
    }
}

/// Sum-metric block filter: two candidates per vector group.
fn sum_within_block<const SQ: bool>(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    budget: f64,
    out: &mut Vec<u32>,
) {
    let d = probe.len();
    debug_assert_eq!(d, block.dims());
    debug_assert!(lanes.end <= block.len());
    let width = block.width();
    let ids = block.ids();
    let data = block.data();
    let vbudget = splat(budget);
    let mut t = lanes.start;
    while t < lanes.end {
        if t + 2 > width {
            while t < lanes.end {
                if portable::sum_within_budget::<SQ>(probe, block, t, budget) {
                    out.push(ids[t]);
                }
                t += 1;
            }
            return;
        }
        let mut acc = [splat(0.0); 4];
        let mut dim = 0;
        let mut alive = true;
        if d >= 4 {
            step::<SQ>(probe, data, width, 0, t, &mut acc);
            if gt(fold_v(&acc), vbudget) == [true, true] {
                alive = false;
            }
            dim = 4;
        }
        while alive && dim + 16 <= d {
            step::<SQ>(probe, data, width, dim, t, &mut acc);
            step::<SQ>(probe, data, width, dim + 4, t, &mut acc);
            step::<SQ>(probe, data, width, dim + 8, t, &mut acc);
            step::<SQ>(probe, data, width, dim + 12, t, &mut acc);
            if gt(fold_v(&acc), vbudget) == [true, true] {
                alive = false;
            }
            dim += 16;
        }
        if alive {
            while dim + 4 <= d {
                step::<SQ>(probe, data, width, dim, t, &mut acc);
                dim += 4;
            }
            let mut tailv = splat(0.0);
            while dim < d {
                let vp = splat(probe[dim]);
                // BOUND: dim < d = dims, t + 2 <= width ⇒ offset < dims * width.
                let vc = load2(data, dim * width + t);
                tailv = vadd(tailv, term::<SQ>(vp, vc));
                dim += 1;
            }
            let total = vadd(fold_v(&acc), tailv);
            emit(le(total, vbudget), t, lanes.end, ids, out);
        }
        t += 2;
    }
}

/// L1 block filter via NEON.
pub fn l1_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    sum_within_block::<false>(probe, block, lanes, eps, out);
}

/// L2 block filter via NEON.
pub fn l2_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    sum_within_block::<true>(probe, block, lanes, eps * eps, out);
}

/// L∞ block filter via NEON: running max per candidate lane.
pub fn linf_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    let d = probe.len();
    debug_assert_eq!(d, block.dims());
    debug_assert!(lanes.end <= block.len());
    let width = block.width();
    let ids = block.ids();
    let data = block.data();
    let veps = splat(eps);
    let mut t = lanes.start;
    while t < lanes.end {
        if t + 2 > width {
            while t < lanes.end {
                if portable::max_within_budget(probe, block, t, eps) {
                    out.push(ids[t]);
                }
                t += 1;
            }
            return;
        }
        let mut m = splat(0.0);
        let mut dim = 0;
        let mut alive = true;
        while alive && dim < d {
            let stop = (dim + 16).min(d);
            while dim < stop {
                let vp = splat(probe[dim]);
                // BOUND: dim < d = dims, t + 2 <= width ⇒ offset < dims * width.
                let vc = load2(data, dim * width + t);
                m = vmax(m, term::<false>(vp, vc));
                dim += 1;
            }
            if gt(m, veps) == [true, true] {
                alive = false;
            }
        }
        if alive {
            emit(le(m, veps), t, lanes.end, ids, out);
        }
        t += 2;
    }
}

//! Explicit SSE2/AVX2 distance kernels for x86-64.
//!
//! Every kernel here reproduces the **exact** arithmetic of the 4-lane
//! scalar kernels in [`crate::kernels`]: dimensions `≡ k (mod 4)` feed
//! lane accumulator `k` with plain IEEE sub/mul/add (never FMA), the
//! per-candidate sum is the canonical monotone fold
//! `(acc0 + acc1) + (acc2 + acc3)` plus a separately chained scalar tail,
//! and `abs` is a sign-bit mask (`andnot` with `-0.0`), which matches
//! `f64::abs` bit for bit. Because the fold is monotone in the
//! non-negative terms, *any* early-exit schedule — per super-block here,
//! all-lanes-exceed for candidate groups — returns the same decision as
//! the full sum, so `within` decisions (and therefore join results) are
//! byte-identical across dispatch levels.
//!
//! The AVX2 pair kernels hold all four dimension lanes in one `__m256d`;
//! the SSE2 pair kernels split them across two `__m128d`s. The block
//! kernels vectorize **across candidates** instead: four (AVX2) or two
//! (SSE2) candidates per vector, one accumulator vector per dimension
//! lane, streaming the contiguous [`SoABlock`] columns.
//!
//! This file (with `neon.rs`) is the only place in the workspace where
//! `unsafe` is permitted: hdsj-core carries `#![deny(unsafe_code)]` and
//! every other crate keeps `forbid`. The unsafe surface is exactly (a)
//! unaligned vector loads/stores on in-bounds slice regions and (b) the
//! AVX2 entry wrappers, whose target feature the dispatch probe has
//! verified. Each carries a `SAFETY:` comment per R2.
#![allow(unsafe_code)]

use crate::simd::portable;
use crate::soa::SoABlock;
use std::ops::Range;

/// Scalar tail term, shared by both widths: `(x−y)²` or `|x−y|`.
#[inline(always)]
fn sterm<const SQ: bool>(x: f64, y: f64) -> f64 {
    if SQ {
        (x - y) * (x - y)
    } else {
        (x - y).abs()
    }
}

/// Pushes the ids of qualifying lanes `t..t+G` (bit `k` of `mask` set),
/// capped at the requested lane range end.
#[inline(always)]
fn emit(mask: i32, t: usize, end: usize, g: usize, ids: &[u32], out: &mut Vec<u32>) {
    let lanes = (end - t).min(g);
    for k in 0..lanes {
        if (mask >> k) & 1 == 1 {
            out.push(ids[t + k]);
        }
    }
}

fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

// ---------------------------------------------------------------------
// AVX2 entry points. The inner kernels are safe `#[target_feature]` fns;
// only the feature-availability hand-off needs `unsafe`.
// ---------------------------------------------------------------------

/// Manhattan distance via the AVX2 kernel.
pub fn avx2_l1_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::sum_distance::<false>(a, b) }
}

/// Euclidean distance via the AVX2 kernel.
pub fn avx2_l2_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::sum_distance::<true>(a, b) }.sqrt()
}

/// Chebyshev distance via the AVX2 kernel.
pub fn avx2_linf_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::linf_distance(a, b) }
}

/// `Σ |aᵢ − bᵢ| ≤ eps` via the AVX2 kernel.
pub fn avx2_l1_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::sum_within::<false>(a, b, eps) }
}

/// `Σ (aᵢ − bᵢ)² ≤ eps²` via the AVX2 kernel (no root taken).
pub fn avx2_l2_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::sum_within::<true>(a, b, eps * eps) }
}

/// `max |aᵢ − bᵢ| ≤ eps` via the AVX2 kernel.
pub fn avx2_linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::linf_within(a, b, eps) }
}

/// L1 block filter via the AVX2 across-candidate kernel.
pub fn avx2_l1_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::sum_within_block::<false>(probe, block, lanes, eps, out) }
}

/// L2 block filter via the AVX2 across-candidate kernel.
pub fn avx2_l2_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::sum_within_block::<true>(probe, block, lanes, eps * eps, out) }
}

/// L∞ block filter via the AVX2 across-candidate kernel.
pub fn avx2_linf_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    debug_assert!(avx2_available());
    // SAFETY: the dispatch probe (`crate::simd::level`) and `set_level`
    // select the AVX2 kernels only after `is_x86_feature_detected!("avx2")`
    // reports support, so the required target feature is present.
    unsafe { avx2::linf_within_block(probe, block, lanes, eps, out) }
}

// ---------------------------------------------------------------------
// SSE2 entry points. SSE2 is in the x86-64 baseline feature set (this
// crate only builds these on x86_64), so the feature is unconditionally
// present; the `unsafe` below only discharges the lexical
// `#[target_feature]` requirement.
// ---------------------------------------------------------------------

/// Manhattan distance via the SSE2 kernel.
pub fn sse2_l1_distance(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::sum_distance::<false>(a, b) }
}

/// Euclidean distance via the SSE2 kernel.
pub fn sse2_l2_distance(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::sum_distance::<true>(a, b) }.sqrt()
}

/// Chebyshev distance via the SSE2 kernel.
pub fn sse2_linf_distance(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::linf_distance(a, b) }
}

/// `Σ |aᵢ − bᵢ| ≤ eps` via the SSE2 kernel.
pub fn sse2_l1_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::sum_within::<false>(a, b, eps) }
}

/// `Σ (aᵢ − bᵢ)² ≤ eps²` via the SSE2 kernel (no root taken).
pub fn sse2_l2_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::sum_within::<true>(a, b, eps * eps) }
}

/// `max |aᵢ − bᵢ| ≤ eps` via the SSE2 kernel.
pub fn sse2_linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::linf_within(a, b, eps) }
}

/// L1 block filter via the SSE2 across-candidate kernel.
pub fn sse2_l1_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::sum_within_block::<false>(probe, block, lanes, eps, out) }
}

/// L2 block filter via the SSE2 across-candidate kernel.
pub fn sse2_l2_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::sum_within_block::<true>(probe, block, lanes, eps * eps, out) }
}

/// L∞ block filter via the SSE2 across-candidate kernel.
pub fn sse2_linf_within_block(
    probe: &[f64],
    block: &SoABlock,
    lanes: Range<usize>,
    eps: f64,
    out: &mut Vec<u32>,
) {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI; every x86-64 CPU
    // provides it, so the kernel's required target feature is present.
    unsafe { sse2::linf_within_block(probe, block, lanes, eps, out) }
}

mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Loads 4 consecutive f64s starting at `xs[at]`.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn load4(xs: &[f64], at: usize) -> __m256d {
        debug_assert!(xs.len() >= 4 && at <= xs.len() - 4);
        // SAFETY: callers maintain `at + 4 <= xs.len()` (pair kernels stop
        // at `dim + 4 <= d`; block kernels pass `dim * width + t` with
        // `t + 4 <= width`, `dim < dims`, into the `dims × width` buffer).
        unsafe { _mm256_loadu_pd(xs.as_ptr().add(at)) }
    }

    /// Spills a vector to an array (for the scalar L∞ max fold).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn to_array(v: __m256d) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        // SAFETY: `out` is four f64s of writable local memory; `storeu`
        // has no alignment requirement.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr(), v) };
        out
    }

    /// One 4-dimension term vector: `(a−b)²` (`SQ`) or `|a−b|`.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn term<const SQ: bool>(a: __m256d, b: __m256d) -> __m256d {
        let d = _mm256_sub_pd(a, b);
        if SQ {
            _mm256_mul_pd(d, d)
        } else {
            _mm256_andnot_pd(_mm256_set1_pd(-0.0), d)
        }
    }

    /// The canonical scalar fold `(acc0 + acc1) + (acc2 + acc3)` of the
    /// four dimension-lane partials held in one vector — bit-identical
    /// to [`crate::kernels`]'s `fold4`.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn fold(acc: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(acc); // [acc0, acc1]
        let hi = _mm256_extractf128_pd::<1>(acc); // [acc2, acc3]
        let h = _mm_hadd_pd(lo, hi); // [acc0+acc1, acc2+acc3]
        _mm_cvtsd_f64(_mm_add_sd(h, _mm_unpackhi_pd(h, h)))
    }

    /// `Σ term(aᵢ, bᵢ)` with the canonical lane decomposition.
    #[target_feature(enable = "avx2")]
    pub fn sum_distance<const SQ: bool>(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut acc = _mm256_setzero_pd();
        let mut dim = 0;
        while dim + 4 <= d {
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, dim), load4(b, dim)));
            dim += 4;
        }
        let mut tail = 0.0;
        while dim < d {
            tail += sterm::<SQ>(a[dim], b[dim]);
            dim += 1;
        }
        fold(acc) + tail
    }

    /// `Σ term(aᵢ, bᵢ) ≤ budget` with the scalar kernels' first-4 /
    /// per-16 early-exit cadence.
    #[target_feature(enable = "avx2")]
    pub fn sum_within<const SQ: bool>(a: &[f64], b: &[f64], budget: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut acc = _mm256_setzero_pd();
        let mut dim = 0;
        if d >= 4 {
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, 0), load4(b, 0)));
            if fold(acc) > budget {
                return false;
            }
            dim = 4;
        }
        while dim + 16 <= d {
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, dim), load4(b, dim)));
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, dim + 4), load4(b, dim + 4)));
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, dim + 8), load4(b, dim + 8)));
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, dim + 12), load4(b, dim + 12)));
            if fold(acc) > budget {
                return false;
            }
            dim += 16;
        }
        while dim + 4 <= d {
            acc = _mm256_add_pd(acc, term::<SQ>(load4(a, dim), load4(b, dim)));
            dim += 4;
        }
        let mut tail = 0.0;
        while dim < d {
            tail += sterm::<SQ>(a[dim], b[dim]);
            dim += 1;
        }
        fold(acc) + tail <= budget
    }

    /// `max |aᵢ − bᵢ|`; max over the non-negative finite terms datasets
    /// hold is order-independent, so the lane split is exact.
    #[target_feature(enable = "avx2")]
    pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut m = _mm256_setzero_pd();
        let mut dim = 0;
        while dim + 4 <= d {
            m = _mm256_max_pd(m, term::<false>(load4(a, dim), load4(b, dim)));
            dim += 4;
        }
        let mut tail = 0.0f64;
        while dim < d {
            tail = tail.max((a[dim] - b[dim]).abs());
            dim += 1;
        }
        let arr = to_array(m);
        arr[0].max(arr[1]).max(arr[2]).max(arr[3]).max(tail)
    }

    /// `max |aᵢ − bᵢ| ≤ eps` with block-level early exit.
    #[target_feature(enable = "avx2")]
    pub fn linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut m = _mm256_setzero_pd();
        let mut dim = 0;
        if d >= 4 {
            m = _mm256_max_pd(m, term::<false>(load4(a, 0), load4(b, 0)));
            let arr = to_array(m);
            if arr[0].max(arr[1]).max(arr[2]).max(arr[3]) > eps {
                return false;
            }
            dim = 4;
        }
        while dim + 16 <= d {
            m = _mm256_max_pd(m, term::<false>(load4(a, dim), load4(b, dim)));
            m = _mm256_max_pd(m, term::<false>(load4(a, dim + 4), load4(b, dim + 4)));
            m = _mm256_max_pd(m, term::<false>(load4(a, dim + 8), load4(b, dim + 8)));
            m = _mm256_max_pd(m, term::<false>(load4(a, dim + 12), load4(b, dim + 12)));
            let arr = to_array(m);
            if arr[0].max(arr[1]).max(arr[2]).max(arr[3]) > eps {
                return false;
            }
            dim += 16;
        }
        while dim + 4 <= d {
            m = _mm256_max_pd(m, term::<false>(load4(a, dim), load4(b, dim)));
            dim += 4;
        }
        let mut tail = 0.0f64;
        while dim < d {
            tail = tail.max((a[dim] - b[dim]).abs());
            dim += 1;
        }
        let arr = to_array(m);
        arr[0].max(arr[1]).max(arr[2]).max(arr[3]).max(tail) <= eps
    }

    /// Block filter: pushes the id of every lane in `lanes` whose
    /// candidate satisfies `Σ term(probeᵢ, cᵢ) ≤ budget`, four candidates
    /// per vector group, streaming the SoA columns.
    ///
    /// The four accumulators are named locals expanded through a lexical
    /// macro rather than an array threaded through a helper fn: a
    /// `#[target_feature]` helper is not reliably inlined, and a spilled
    /// accumulator array turns the hot loop into stack traffic.
    #[target_feature(enable = "avx2")]
    pub fn sum_within_block<const SQ: bool>(
        probe: &[f64],
        block: &SoABlock,
        lanes: Range<usize>,
        budget: f64,
        out: &mut Vec<u32>,
    ) {
        let d = probe.len();
        debug_assert_eq!(d, block.dims());
        debug_assert!(lanes.end <= block.len());
        let width = block.width();
        let ids = block.ids();
        let data = block.data();
        let vbudget = _mm256_set1_pd(budget);
        let mut t = lanes.start;
        while t < lanes.end {
            if t + 4 > width {
                // Ragged tail past the last full group (at most
                // LANE_PAD − 1 lanes): the portable strided kernel is
                // decision-identical.
                while t < lanes.end {
                    if portable::sum_within_budget::<SQ>(probe, block, t, budget) {
                        out.push(ids[t]);
                    }
                    t += 1;
                }
                return;
            }
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            // One 4-dimension step for the group: dimension `base + k`
            // feeds accumulator `k`, preserving the canonical per-lane
            // decomposition of the scalar kernels. Columns are addressed
            // as dimension-major offsets into `data` (one strength-reduced
            // index chain) rather than via `block.col(dim)`, whose slice
            // construction is an innermost-loop bounds check.
            macro_rules! step4 {
                ($base:expr) => {{
                    let base = $base;
                    // BOUND: base + 4 <= dims and t + 4 <= width, so every
                    // offset below is < dims * width = data.len(); fits usize.
                    let o = base * width + t;
                    a0 = _mm256_add_pd(
                        a0,
                        term::<SQ>(_mm256_set1_pd(probe[base]), load4(data, o)),
                    );
                    a1 = _mm256_add_pd(
                        a1,
                        term::<SQ>(_mm256_set1_pd(probe[base + 1]), load4(data, o + width)), // BOUND: see `o`
                    );
                    a2 = _mm256_add_pd(
                        a2,
                        term::<SQ>(_mm256_set1_pd(probe[base + 2]), load4(data, o + 2 * width)), // BOUND: see `o`
                    );
                    a3 = _mm256_add_pd(
                        a3,
                        term::<SQ>(_mm256_set1_pd(probe[base + 3]), load4(data, o + 3 * width)), // BOUND: see `o`
                    );
                }};
            }
            // The lane-wise canonical fold `(a0 + a1) + (a2 + a3)`.
            macro_rules! partial {
                () => {
                    _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3))
                };
            }
            // True when every candidate in the group already exceeds the
            // budget — a group-wide monotone early exit (each lane's final
            // sum is at least its partial sum, so all four decisions are
            // already `false`).
            macro_rules! all_rejected {
                () => {
                    _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(partial!(), vbudget)) == 0xF
                };
            }
            let mut dim = 0;
            let mut alive = true;
            if d >= 4 {
                step4!(0);
                alive = !all_rejected!();
                dim = 4;
            }
            while alive && dim + 16 <= d {
                step4!(dim);
                step4!(dim + 4);
                step4!(dim + 8);
                step4!(dim + 12);
                alive = !all_rejected!();
                dim += 16;
            }
            if alive {
                while dim + 4 <= d {
                    step4!(dim);
                    dim += 4;
                }
                // `d mod 4` tail dimensions: a separately chained
                // accumulator added after the fold, as in the scalar
                // kernels.
                let mut tailv = _mm256_setzero_pd();
                while dim < d {
                    let vp = _mm256_set1_pd(probe[dim]);
                    // BOUND: dim < d = dims, t + 4 <= width ⇒ offset < dims * width.
                    let vc = load4(data, dim * width + t);
                    tailv = _mm256_add_pd(tailv, term::<SQ>(vp, vc));
                    dim += 1;
                }
                let total = _mm256_add_pd(partial!(), tailv);
                let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(total, vbudget));
                emit(mask, t, lanes.end, 4, ids, out);
            }
            t += 4;
        }
    }

    /// L∞ block filter: running max per candidate, group-wide early exit.
    #[target_feature(enable = "avx2")]
    pub fn linf_within_block(
        probe: &[f64],
        block: &SoABlock,
        lanes: Range<usize>,
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        let d = probe.len();
        debug_assert_eq!(d, block.dims());
        debug_assert!(lanes.end <= block.len());
        let width = block.width();
        let ids = block.ids();
        let data = block.data();
        let veps = _mm256_set1_pd(eps);
        let mut t = lanes.start;
        while t < lanes.end {
            if t + 4 > width {
                while t < lanes.end {
                    if portable::max_within_budget(probe, block, t, eps) {
                        out.push(ids[t]);
                    }
                    t += 1;
                }
                return;
            }
            let mut m = _mm256_setzero_pd();
            let mut dim = 0;
            let mut alive = true;
            while alive && dim < d {
                let stop = (dim + 16).min(d);
                while dim < stop {
                    let vp = _mm256_set1_pd(probe[dim]);
                    // BOUND: dim < d = dims, t + 4 <= width ⇒ offset < dims * width.
                    let vc = load4(data, dim * width + t);
                    m = _mm256_max_pd(m, term::<false>(vp, vc));
                    dim += 1;
                }
                if _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(m, veps)) == 0xF {
                    alive = false;
                }
            }
            if alive {
                let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(m, veps));
                emit(mask, t, lanes.end, 4, ids, out);
            }
            t += 4;
        }
    }
}

mod sse2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Loads 2 consecutive f64s starting at `xs[at]`. SSE2 is in the
    /// x86-64 baseline, so no feature gate is needed.
    #[inline(always)]
    fn load2(xs: &[f64], at: usize) -> __m128d {
        debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);
        // SAFETY: callers maintain `at + 2 <= xs.len()` (pair kernels stop
        // at `dim + 4 <= d`; block kernels pass `dim * width + t` with
        // `t + 2 <= width`, `dim < dims`, into the `dims × width` buffer).
        unsafe { _mm_loadu_pd(xs.as_ptr().add(at)) }
    }

    /// One 2-dimension term vector: `(a−b)²` (`SQ`) or `|a−b|`.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn term<const SQ: bool>(a: __m128d, b: __m128d) -> __m128d {
        let d = _mm_sub_pd(a, b);
        if SQ {
            _mm_mul_pd(d, d)
        } else {
            _mm_andnot_pd(_mm_set1_pd(-0.0), d)
        }
    }

    /// The canonical fold `(acc0 + acc1) + (acc2 + acc3)` of the two
    /// accumulator pairs (`acc01` holds lanes 0–1, `acc23` lanes 2–3).
    /// No SSE3 `hadd` here — SSE2 baseline only.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn fold(acc01: __m128d, acc23: __m128d) -> f64 {
        let s01 = _mm_add_sd(acc01, _mm_unpackhi_pd(acc01, acc01));
        let s23 = _mm_add_sd(acc23, _mm_unpackhi_pd(acc23, acc23));
        _mm_cvtsd_f64(_mm_add_sd(s01, s23))
    }

    /// `Σ term(aᵢ, bᵢ)` with the canonical lane decomposition.
    #[target_feature(enable = "sse2")]
    pub fn sum_distance<const SQ: bool>(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        let mut dim = 0;
        while dim + 4 <= d {
            acc01 = _mm_add_pd(acc01, term::<SQ>(load2(a, dim), load2(b, dim)));
            acc23 = _mm_add_pd(acc23, term::<SQ>(load2(a, dim + 2), load2(b, dim + 2)));
            dim += 4;
        }
        let mut tail = 0.0;
        while dim < d {
            tail += sterm::<SQ>(a[dim], b[dim]);
            dim += 1;
        }
        fold(acc01, acc23) + tail
    }

    /// `Σ term(aᵢ, bᵢ) ≤ budget` with the scalar kernels' first-4 /
    /// per-16 early-exit cadence.
    #[target_feature(enable = "sse2")]
    pub fn sum_within<const SQ: bool>(a: &[f64], b: &[f64], budget: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        let mut dim = 0;
        if d >= 4 {
            acc01 = _mm_add_pd(acc01, term::<SQ>(load2(a, 0), load2(b, 0)));
            acc23 = _mm_add_pd(acc23, term::<SQ>(load2(a, 2), load2(b, 2)));
            if fold(acc01, acc23) > budget {
                return false;
            }
            dim = 4;
        }
        while dim + 16 <= d {
            for c in 0..4 {
                let at = dim + 4 * c;
                acc01 = _mm_add_pd(acc01, term::<SQ>(load2(a, at), load2(b, at)));
                acc23 = _mm_add_pd(acc23, term::<SQ>(load2(a, at + 2), load2(b, at + 2)));
            }
            if fold(acc01, acc23) > budget {
                return false;
            }
            dim += 16;
        }
        while dim + 4 <= d {
            acc01 = _mm_add_pd(acc01, term::<SQ>(load2(a, dim), load2(b, dim)));
            acc23 = _mm_add_pd(acc23, term::<SQ>(load2(a, dim + 2), load2(b, dim + 2)));
            dim += 4;
        }
        let mut tail = 0.0;
        while dim < d {
            tail += sterm::<SQ>(a[dim], b[dim]);
            dim += 1;
        }
        fold(acc01, acc23) + tail <= budget
    }

    /// `max |aᵢ − bᵢ|` — order-independent max, exact under any split.
    #[target_feature(enable = "sse2")]
    pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut m = _mm_setzero_pd();
        let mut dim = 0;
        while dim + 2 <= d {
            m = _mm_max_pd(m, term::<false>(load2(a, dim), load2(b, dim)));
            dim += 2;
        }
        let mut tail = 0.0f64;
        while dim < d {
            tail = tail.max((a[dim] - b[dim]).abs());
            dim += 1;
        }
        let hi = _mm_cvtsd_f64(_mm_unpackhi_pd(m, m));
        _mm_cvtsd_f64(m).max(hi).max(tail)
    }

    /// `max |aᵢ − bᵢ| ≤ eps` with block-level early exit.
    #[target_feature(enable = "sse2")]
    pub fn linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let d = a.len();
        let mut m = _mm_setzero_pd();
        let mut dim = 0;
        while dim + 2 <= d {
            let stop = dim + 16;
            while dim + 2 <= stop.min(d) {
                m = _mm_max_pd(m, term::<false>(load2(a, dim), load2(b, dim)));
                dim += 2;
            }
            let hi = _mm_cvtsd_f64(_mm_unpackhi_pd(m, m));
            if _mm_cvtsd_f64(m).max(hi) > eps {
                return false;
            }
        }
        let mut tail = 0.0f64;
        while dim < d {
            tail = tail.max((a[dim] - b[dim]).abs());
            dim += 1;
        }
        let hi = _mm_cvtsd_f64(_mm_unpackhi_pd(m, m));
        _mm_cvtsd_f64(m).max(hi).max(tail) <= eps
    }

    /// Block filter: two candidates per vector group. Named accumulator
    /// locals via a lexical macro, for the same codegen reason as the
    /// AVX2 variant (see `avx2::sum_within_block`).
    #[target_feature(enable = "sse2")]
    pub fn sum_within_block<const SQ: bool>(
        probe: &[f64],
        block: &SoABlock,
        lanes: Range<usize>,
        budget: f64,
        out: &mut Vec<u32>,
    ) {
        let d = probe.len();
        debug_assert_eq!(d, block.dims());
        debug_assert!(lanes.end <= block.len());
        let width = block.width();
        let ids = block.ids();
        let data = block.data();
        let vbudget = _mm_set1_pd(budget);
        let mut t = lanes.start;
        while t < lanes.end {
            if t + 2 > width {
                while t < lanes.end {
                    if portable::sum_within_budget::<SQ>(probe, block, t, budget) {
                        out.push(ids[t]);
                    }
                    t += 1;
                }
                return;
            }
            let mut a0 = _mm_setzero_pd();
            let mut a1 = _mm_setzero_pd();
            let mut a2 = _mm_setzero_pd();
            let mut a3 = _mm_setzero_pd();
            macro_rules! step4 {
                ($base:expr) => {{
                    let base = $base;
                    // BOUND: base + 4 <= dims and t + 2 <= width, so every
                    // offset below is < dims * width = data.len(); fits usize.
                    let o = base * width + t;
                    a0 = _mm_add_pd(a0, term::<SQ>(_mm_set1_pd(probe[base]), load2(data, o)));
                    a1 = _mm_add_pd(
                        a1,
                        term::<SQ>(_mm_set1_pd(probe[base + 1]), load2(data, o + width)), // BOUND: see `o`
                    );
                    a2 = _mm_add_pd(
                        a2,
                        term::<SQ>(_mm_set1_pd(probe[base + 2]), load2(data, o + 2 * width)), // BOUND: see `o`
                    );
                    a3 = _mm_add_pd(
                        a3,
                        term::<SQ>(_mm_set1_pd(probe[base + 3]), load2(data, o + 3 * width)), // BOUND: see `o`
                    );
                }};
            }
            macro_rules! partial {
                () => {
                    _mm_add_pd(_mm_add_pd(a0, a1), _mm_add_pd(a2, a3))
                };
            }
            macro_rules! all_rejected {
                () => {
                    _mm_movemask_pd(_mm_cmpgt_pd(partial!(), vbudget)) == 0x3
                };
            }
            let mut dim = 0;
            let mut alive = true;
            if d >= 4 {
                step4!(0);
                alive = !all_rejected!();
                dim = 4;
            }
            while alive && dim + 16 <= d {
                step4!(dim);
                step4!(dim + 4);
                step4!(dim + 8);
                step4!(dim + 12);
                alive = !all_rejected!();
                dim += 16;
            }
            if alive {
                while dim + 4 <= d {
                    step4!(dim);
                    dim += 4;
                }
                let mut tailv = _mm_setzero_pd();
                while dim < d {
                    let vp = _mm_set1_pd(probe[dim]);
                    // BOUND: dim < d = dims, t + 2 <= width ⇒ offset < dims * width.
                    let vc = load2(data, dim * width + t);
                    tailv = _mm_add_pd(tailv, term::<SQ>(vp, vc));
                    dim += 1;
                }
                let total = _mm_add_pd(partial!(), tailv);
                let mask = _mm_movemask_pd(_mm_cmple_pd(total, vbudget));
                emit(mask, t, lanes.end, 2, ids, out);
            }
            t += 2;
        }
    }

    /// L∞ block filter: running max per candidate lane.
    #[target_feature(enable = "sse2")]
    pub fn linf_within_block(
        probe: &[f64],
        block: &SoABlock,
        lanes: Range<usize>,
        eps: f64,
        out: &mut Vec<u32>,
    ) {
        let d = probe.len();
        debug_assert_eq!(d, block.dims());
        debug_assert!(lanes.end <= block.len());
        let width = block.width();
        let ids = block.ids();
        let data = block.data();
        let veps = _mm_set1_pd(eps);
        let mut t = lanes.start;
        while t < lanes.end {
            if t + 2 > width {
                while t < lanes.end {
                    if portable::max_within_budget(probe, block, t, eps) {
                        out.push(ids[t]);
                    }
                    t += 1;
                }
                return;
            }
            let mut m = _mm_setzero_pd();
            let mut dim = 0;
            let mut alive = true;
            while alive && dim < d {
                let stop = (dim + 16).min(d);
                while dim < stop {
                    let vp = _mm_set1_pd(probe[dim]);
                    // BOUND: dim < d = dims, t + 2 <= width ⇒ offset < dims * width.
                    let vc = load2(data, dim * width + t);
                    m = _mm_max_pd(m, term::<false>(vp, vc));
                    dim += 1;
                }
                if _mm_movemask_pd(_mm_cmpgt_pd(m, veps)) == 0x3 {
                    alive = false;
                }
            }
            if alive {
                let mask = _mm_movemask_pd(_mm_cmple_pd(m, veps));
                emit(mask, t, lanes.end, 2, ids, out);
            }
            t += 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::kernels;

    fn pt(dims: usize, seed: u64) -> Vec<f64> {
        (0..dims)
            .map(|i| {
                let h = seed
                    .rotate_left(i as u32 * 13)
                    .wrapping_mul(0x9e3779b97f4a7c15);
                (h >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn sse2_pair_kernels_are_bit_identical_to_scalar() {
        for dims in [1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65] {
            let a = pt(dims, 3);
            let b = pt(dims, 9);
            assert_eq!(
                sse2_l1_distance(&a, &b).to_bits(),
                kernels::l1_distance(&a, &b).to_bits(),
                "l1 d={dims}"
            );
            assert_eq!(
                sse2_l2_distance(&a, &b).to_bits(),
                kernels::l2_distance(&a, &b).to_bits(),
                "l2 d={dims}"
            );
            assert_eq!(
                sse2_linf_distance(&a, &b).to_bits(),
                kernels::linf_distance(&a, &b).to_bits(),
                "linf d={dims}"
            );
            for eps in [0.01, 0.2, 1.0, 10.0] {
                assert_eq!(
                    sse2_l2_within(&a, &b, eps),
                    kernels::l2_within(&a, &b, eps),
                    "l2 within d={dims} eps={eps}"
                );
                assert_eq!(
                    sse2_l1_within(&a, &b, eps),
                    kernels::l1_within(&a, &b, eps),
                    "l1 within d={dims} eps={eps}"
                );
                assert_eq!(
                    sse2_linf_within(&a, &b, eps),
                    kernels::linf_within(&a, &b, eps),
                    "linf within d={dims} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn avx2_pair_kernels_are_bit_identical_to_scalar() {
        if !avx2_available() {
            return;
        }
        for dims in [1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65] {
            let a = pt(dims, 5);
            let b = pt(dims, 17);
            assert_eq!(
                avx2_l1_distance(&a, &b).to_bits(),
                kernels::l1_distance(&a, &b).to_bits(),
                "l1 d={dims}"
            );
            assert_eq!(
                avx2_l2_distance(&a, &b).to_bits(),
                kernels::l2_distance(&a, &b).to_bits(),
                "l2 d={dims}"
            );
            assert_eq!(
                avx2_linf_distance(&a, &b).to_bits(),
                kernels::linf_distance(&a, &b).to_bits(),
                "linf d={dims}"
            );
            for eps in [0.01, 0.2, 1.0, 10.0] {
                assert_eq!(
                    avx2_l2_within(&a, &b, eps),
                    kernels::l2_within(&a, &b, eps),
                    "l2 within d={dims} eps={eps}"
                );
                assert_eq!(
                    avx2_l1_within(&a, &b, eps),
                    kernels::l1_within(&a, &b, eps),
                    "l1 within d={dims} eps={eps}"
                );
                assert_eq!(
                    avx2_linf_within(&a, &b, eps),
                    kernels::linf_within(&a, &b, eps),
                    "linf within d={dims} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn block_kernels_match_per_pair_decisions_exactly() {
        for dims in [1, 3, 4, 5, 16, 17, 64, 65] {
            let flat: Vec<f64> = (0..23 * dims)
                .map(|i| ((i as f64 * 0.41).sin() * 0.5 + 0.5).abs())
                .collect();
            let ds = Dataset::from_flat(dims, flat).unwrap();
            let block = crate::soa::SoABlock::from_range(&ds, 0..23);
            let probe = ds.point(11).to_vec();
            for eps in [0.1, 0.5, 2.0] {
                let expect_l2: Vec<u32> = (0..23u32)
                    .filter(|&j| kernels::l2_within(&probe, ds.point(j), eps))
                    .collect();
                let mut got = Vec::new();
                sse2_l2_within_block(&probe, &block, 0..23, eps, &mut got);
                assert_eq!(got, expect_l2, "sse2 l2 d={dims} eps={eps}");
                let expect_l1: Vec<u32> = (0..23u32)
                    .filter(|&j| kernels::l1_within(&probe, ds.point(j), eps))
                    .collect();
                got.clear();
                sse2_l1_within_block(&probe, &block, 0..23, eps, &mut got);
                assert_eq!(got, expect_l1, "sse2 l1 d={dims} eps={eps}");
                let expect_linf: Vec<u32> = (0..23u32)
                    .filter(|&j| kernels::linf_within(&probe, ds.point(j), eps))
                    .collect();
                got.clear();
                sse2_linf_within_block(&probe, &block, 0..23, eps, &mut got);
                assert_eq!(got, expect_linf, "sse2 linf d={dims} eps={eps}");
                if avx2_available() {
                    got.clear();
                    avx2_l2_within_block(&probe, &block, 0..23, eps, &mut got);
                    assert_eq!(got, expect_l2, "avx2 l2 d={dims} eps={eps}");
                    got.clear();
                    avx2_l1_within_block(&probe, &block, 0..23, eps, &mut got);
                    assert_eq!(got, expect_l1, "avx2 l1 d={dims} eps={eps}");
                    got.clear();
                    avx2_linf_within_block(&probe, &block, 0..23, eps, &mut got);
                    assert_eq!(got, expect_linf, "avx2 linf d={dims} eps={eps}");
                }
            }
        }
    }

    #[test]
    fn block_kernels_respect_lane_subranges() {
        let flat: Vec<f64> = (0..40).map(|i| i as f64 * 1e-3).collect();
        let ds = Dataset::from_flat(4, flat).unwrap();
        let block = crate::soa::SoABlock::from_range(&ds, 0..10);
        let probe = ds.point(0).to_vec();
        let mut got = Vec::new();
        sse2_l2_within_block(&probe, &block, 3..8, 1e9, &mut got);
        assert_eq!(got, vec![3, 4, 5, 6, 7]);
        if avx2_available() {
            got.clear();
            avx2_l2_within_block(&probe, &block, 3..8, 1e9, &mut got);
            assert_eq!(got, vec![3, 4, 5, 6, 7]);
        }
    }
}

//! Uniform instrumentation for the experiment harness.
//!
//! Every join reports a [`JoinStats`]: how many candidate pairs the filter
//! structure produced, how many survived exact-metric refinement, how many
//! exact distance evaluations were spent, the paged-storage I/O counters,
//! the peak structure-resident memory, and a list of named phases with
//! wall-clock durations. The experiment binaries print these fields as the
//! columns of the reproduced tables and figures.

use std::time::{Duration, Instant};

/// Page-level I/O counters filled in by the `hdsj-storage` buffer pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Pages fetched from the backing store (buffer-pool misses).
    pub reads: u64,
    /// Pages written back to the backing store.
    pub writes: u64,
    /// Pages newly allocated in the backing store.
    pub allocs: u64,
}

impl IoCounters {
    /// Total page transfers (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Accumulates another counter set (e.g. across join phases).
    pub fn add(&mut self, other: &IoCounters) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.allocs += other.allocs;
    }
}

/// One named, timed phase of a join (e.g. MSJ's "level assignment", "sort",
/// "sweep"). The phase-breakdown table (experiment E8) is produced directly
/// from these.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase label.
    pub name: &'static str,
    /// Wall-clock time spent in the phase.
    pub elapsed: Duration,
}

/// Everything a join run reports back to the caller.
#[derive(Clone, Debug, Default)]
pub struct JoinStats {
    /// Candidate pairs emitted by the filter structure (before refinement).
    pub candidates: u64,
    /// Pairs that passed the exact metric test — the join result size.
    pub results: u64,
    /// Exact distance evaluations performed (== candidates for all the
    /// filter-and-refine algorithms; may be larger for plane-sweep variants
    /// that test the metric during sweeping).
    pub dist_evals: u64,
    /// Paged-storage I/O, when the algorithm ran on the storage engine.
    pub io: IoCounters,
    /// Peak bytes resident in the algorithm's own data structures (trees,
    /// level files' in-memory portions, hash directories). Input datasets
    /// are excluded: they are common to all algorithms.
    pub structure_bytes: u64,
    /// Named, ordered phases with wall-clock durations.
    pub phases: Vec<Phase>,
}

impl JoinStats {
    /// Total wall-clock across all recorded phases.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.elapsed).sum()
    }

    /// Wall-clock of a named phase, if recorded.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.elapsed)
    }

    /// Filter selectivity: results / candidates (1.0 when no candidates,
    /// since a filter that emits nothing is vacuously exact).
    pub fn filter_precision(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.results as f64 / self.candidates as f64
        }
    }
}

/// Scoped stopwatch that appends a [`Phase`] to a `Vec` when finished.
///
/// ```
/// use hdsj_core::stats::{Phase, PhaseTimer};
/// let mut phases: Vec<Phase> = Vec::new();
/// {
///     let t = PhaseTimer::start("sort");
///     // ... work ...
///     t.finish(&mut phases);
/// }
/// assert_eq!(phases[0].name, "sort");
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    name: &'static str,
    started: Instant,
}

impl PhaseTimer {
    /// Starts timing a phase.
    pub fn start(name: &'static str) -> PhaseTimer {
        PhaseTimer {
            name,
            started: Instant::now(),
        }
    }

    /// Stops the clock and records the phase.
    pub fn finish(self, phases: &mut Vec<Phase>) {
        phases.push(Phase {
            name: self.name,
            elapsed: self.started.elapsed(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_counters_accumulate() {
        let mut a = IoCounters {
            reads: 1,
            writes: 2,
            allocs: 3,
        };
        a.add(&IoCounters {
            reads: 10,
            writes: 20,
            allocs: 30,
        });
        assert_eq!(
            a,
            IoCounters {
                reads: 11,
                writes: 22,
                allocs: 33
            }
        );
        assert_eq!(a.total(), 33);
    }

    #[test]
    fn phase_timer_records_named_phase() {
        let mut phases = Vec::new();
        let t = PhaseTimer::start("assign");
        std::thread::sleep(Duration::from_millis(1));
        t.finish(&mut phases);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "assign");
        assert!(phases[0].elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn stats_lookup_and_totals() {
        let stats = JoinStats {
            candidates: 10,
            results: 4,
            phases: vec![
                Phase {
                    name: "a",
                    elapsed: Duration::from_millis(2),
                },
                Phase {
                    name: "b",
                    elapsed: Duration::from_millis(3),
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(5));
        assert_eq!(stats.phase("b"), Some(Duration::from_millis(3)));
        assert_eq!(stats.phase("missing"), None);
        assert!((stats.filter_precision() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_filter_is_vacuously_precise() {
        assert_eq!(JoinStats::default().filter_precision(), 1.0);
    }
}

//! Uniform instrumentation for the experiment harness.
//!
//! Every join reports a [`JoinStats`]: how many candidate pairs the filter
//! structure produced, how many survived exact-metric refinement, how many
//! exact distance evaluations were spent, the paged-storage I/O counters,
//! the peak structure-resident memory, and a list of named phases with
//! wall-clock durations. The experiment binaries print these fields as the
//! columns of the reproduced tables and figures.

use std::time::{Duration, Instant};

/// Page-level I/O counters filled in by the `hdsj-storage` buffer pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Pages fetched from the backing store (buffer-pool misses).
    pub reads: u64,
    /// Pages written back to the backing store.
    pub writes: u64,
    /// Pages newly allocated in the backing store.
    pub allocs: u64,
    /// Buffer-pool fetches satisfied without touching the backing store.
    pub hits: u64,
    /// Pages evicted from the buffer pool (clean or dirty).
    pub evictions: u64,
    /// Dirty evictions — the subset of `evictions` that forced a write.
    pub writebacks: u64,
    /// Disk operations retried after a transient fault (buffer-pool
    /// recovery; see the storage crate's `RetryPolicy`).
    pub retries: u64,
    /// Faults the injection layer actually delivered.
    pub faults: u64,
    /// Pages that failed their checksum on read.
    pub corruptions: u64,
}

impl IoCounters {
    /// Total page transfers (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of buffer-pool fetches served from memory:
    /// `hits / (hits + reads)`, or 0 when no fetch happened.
    pub fn hit_rate(&self) -> f64 {
        let accesses = self.hits + self.reads;
        if accesses == 0 {
            0.0
        } else {
            self.hits as f64 / accesses as f64
        }
    }

    /// Accumulates another counter set (e.g. across join phases).
    pub fn add(&mut self, other: &IoCounters) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.allocs += other.allocs;
        self.hits += other.hits;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.retries += other.retries;
        self.faults += other.faults;
        self.corruptions += other.corruptions;
    }

    /// Field-wise `after − before`, for algorithms that snapshot shared
    /// counters around a run.
    pub fn diff(after: &IoCounters, before: &IoCounters) -> IoCounters {
        IoCounters {
            reads: after.reads - before.reads,
            writes: after.writes - before.writes,
            allocs: after.allocs - before.allocs,
            hits: after.hits - before.hits,
            evictions: after.evictions - before.evictions,
            writebacks: after.writebacks - before.writebacks,
            retries: after.retries - before.retries,
            faults: after.faults - before.faults,
            corruptions: after.corruptions - before.corruptions,
        }
    }

    /// Records every field into the tracer's counter registry under
    /// `<prefix>.<field>` names (e.g. `pool.hits`).
    pub fn record_counters(&self, tracer: &hdsj_obs::Tracer, prefix: &str) {
        if !tracer.enabled() {
            return;
        }
        for (field, value) in [
            ("reads", self.reads),
            ("writes", self.writes),
            ("allocs", self.allocs),
            ("hits", self.hits),
            ("evictions", self.evictions),
            ("writebacks", self.writebacks),
            ("retries", self.retries),
            ("faults", self.faults),
            ("corruption_detected", self.corruptions),
        ] {
            tracer.counter(format!("{prefix}.{field}")).add(value);
        }
    }
}

/// One named, timed phase of a join (e.g. MSJ's "level assignment", "sort",
/// "sweep"). The phase-breakdown table (experiment E8) is produced directly
/// from these.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase label.
    pub name: &'static str,
    /// Wall-clock time spent in the phase.
    pub elapsed: Duration,
}

/// Everything a join run reports back to the caller.
#[derive(Clone, Debug, Default)]
pub struct JoinStats {
    /// Candidate pairs emitted by the filter structure (before refinement).
    pub candidates: u64,
    /// Pairs that passed the exact metric test — the join result size.
    pub results: u64,
    /// Exact distance evaluations performed (== candidates for all the
    /// filter-and-refine algorithms; may be larger for plane-sweep variants
    /// that test the metric during sweeping).
    pub dist_evals: u64,
    /// Paged-storage I/O, when the algorithm ran on the storage engine.
    pub io: IoCounters,
    /// Peak bytes resident in the algorithm's own data structures (trees,
    /// level files' in-memory portions, hash directories). Input datasets
    /// are excluded: they are common to all algorithms.
    pub structure_bytes: u64,
    /// Named, ordered phases with wall-clock durations.
    pub phases: Vec<Phase>,
}

impl JoinStats {
    /// Total wall-clock across all recorded phases.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.elapsed).sum()
    }

    /// Wall-clock of a named phase, if recorded.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.elapsed)
    }

    /// Filter selectivity: results / candidates (1.0 when no candidates,
    /// since a filter that emits nothing is vacuously exact).
    pub fn filter_precision(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.results as f64 / self.candidates as f64
        }
    }
}

/// Scoped stopwatch that appends a [`Phase`] to a `Vec` when finished.
///
/// ```
/// use hdsj_core::stats::{Phase, PhaseTimer};
/// let mut phases: Vec<Phase> = Vec::new();
/// {
///     let t = PhaseTimer::start("sort");
///     // ... work ...
///     t.finish(&mut phases);
/// }
/// assert_eq!(phases[0].name, "sort");
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    name: &'static str,
    started: Instant,
}

impl PhaseTimer {
    /// Starts timing a phase.
    pub fn start(name: &'static str) -> PhaseTimer {
        PhaseTimer {
            name,
            started: Instant::now(),
        }
    }

    /// Stops the clock and records the phase.
    pub fn finish(self, phases: &mut Vec<Phase>) {
        phases.push(Phase {
            name: self.name,
            elapsed: self.started.elapsed(),
        });
    }
}

/// A [`PhaseTimer`] that is also a trace span: the phase shows up both in
/// [`JoinStats::phases`] (for the experiment tables) and, when the tracer
/// is enabled, as a child span in the structured trace.
///
/// ```
/// use hdsj_core::stats::{Phase, TracedPhase};
/// let tracer = hdsj_core::obs::Tracer::disabled();
/// let root = tracer.span("join");
/// let mut phases: Vec<Phase> = Vec::new();
/// let t = TracedPhase::start(&root, "sort");
/// // ... work ...
/// t.finish(&mut phases);
/// assert_eq!(phases[0].name, "sort");
/// ```
#[derive(Debug)]
pub struct TracedPhase {
    name: &'static str,
    span: hdsj_obs::Span,
    /// Duration histogram this phase feeds on finish (nanoseconds), from
    /// [`TracedPhase::start_classed`].
    hist: Option<std::sync::Arc<hdsj_obs::Histogram>>,
}

impl TracedPhase {
    /// Starts a phase as a child span of `parent`.
    pub fn start(parent: &hdsj_obs::Span, name: &'static str) -> TracedPhase {
        TracedPhase {
            name,
            span: parent.child(name),
            hist: None,
        }
    }

    /// Starts a phase that also carries a [`hdsj_obs::PhaseClass`] (for
    /// `trace-report --phases`) and feeds its duration into `tracer`'s
    /// `hist_name` histogram on finish — the fully instrumented variant
    /// every join algorithm's phases use.
    pub fn start_classed(
        tracer: &hdsj_obs::Tracer,
        parent: &hdsj_obs::Span,
        name: &'static str,
        class: hdsj_obs::PhaseClass,
        hist_name: &'static str,
    ) -> TracedPhase {
        let mut span = parent.child(name);
        span.set_phase(class);
        TracedPhase {
            name,
            span,
            hist: tracer.enabled().then(|| tracer.histogram(hist_name)),
        }
    }

    /// Mutable access to the underlying span, e.g. to attach attributes.
    pub fn span_mut(&mut self) -> &mut hdsj_obs::Span {
        &mut self.span
    }

    /// Ends the span and records the phase (and its duration histogram,
    /// when started with [`TracedPhase::start_classed`]).
    pub fn finish(self, phases: &mut Vec<Phase>) {
        let elapsed = self.span.finish();
        if let Some(hist) = &self.hist {
            hist.record_duration(elapsed);
        }
        phases.push(Phase {
            name: self.name,
            elapsed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_counters_accumulate() {
        let mut a = IoCounters {
            reads: 1,
            writes: 2,
            allocs: 3,
            hits: 4,
            evictions: 5,
            writebacks: 6,
            retries: 7,
            faults: 8,
            corruptions: 9,
        };
        a.add(&IoCounters {
            reads: 10,
            writes: 20,
            allocs: 30,
            hits: 40,
            evictions: 50,
            writebacks: 60,
            retries: 70,
            faults: 80,
            corruptions: 90,
        });
        assert_eq!(
            a,
            IoCounters {
                reads: 11,
                writes: 22,
                allocs: 33,
                hits: 44,
                evictions: 55,
                writebacks: 66,
                retries: 77,
                faults: 88,
                corruptions: 99,
            }
        );
        assert_eq!(a.total(), 33);
    }

    #[test]
    fn io_counter_diff_and_hit_rate() {
        let before = IoCounters {
            reads: 5,
            hits: 10,
            ..Default::default()
        };
        let after = IoCounters {
            reads: 9,
            hits: 22,
            evictions: 3,
            writebacks: 1,
            ..Default::default()
        };
        let d = IoCounters::diff(&after, &before);
        assert_eq!(d.reads, 4);
        assert_eq!(d.hits, 12);
        assert_eq!(d.evictions, 3);
        assert_eq!(d.writebacks, 1);
        assert!((d.hit_rate() - 12.0 / 16.0).abs() < 1e-12);
        assert_eq!(IoCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn io_counters_record_into_tracer() {
        let (tracer, sink) = hdsj_obs::Tracer::memory();
        let io = IoCounters {
            reads: 2,
            hits: 7,
            evictions: 1,
            retries: 3,
            faults: 4,
            corruptions: 2,
            ..Default::default()
        };
        io.record_counters(&tracer, "pool");
        tracer.flush();
        assert_eq!(sink.counter_value("pool.hits"), Some(7));
        assert_eq!(sink.counter_value("pool.reads"), Some(2));
        assert_eq!(sink.counter_value("pool.evictions"), Some(1));
        assert_eq!(sink.counter_value("pool.retries"), Some(3));
        assert_eq!(sink.counter_value("pool.faults"), Some(4));
        assert_eq!(sink.counter_value("pool.corruption_detected"), Some(2));
    }

    #[test]
    fn traced_phase_records_both_phase_and_span() {
        let (tracer, sink) = hdsj_obs::Tracer::memory();
        let mut phases = Vec::new();
        {
            let root = tracer.span("join");
            let t = TracedPhase::start(&root, "sort");
            t.finish(&mut phases);
            root.finish();
        }
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "sort");
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "sort");
        assert_eq!(spans[1].name, "join");
        assert_eq!(spans[0].parent, Some(spans[1].id));
    }

    #[test]
    fn classed_phase_records_class_and_histogram() {
        let (tracer, sink) = hdsj_obs::Tracer::memory();
        let mut phases = Vec::new();
        {
            let root = tracer.span("join");
            let t = TracedPhase::start_classed(
                &tracer,
                &root,
                "sort",
                hdsj_obs::PhaseClass::Io,
                "msj.phase.sort_ns",
            );
            t.finish(&mut phases);
            root.finish();
        }
        tracer.flush();
        assert_eq!(phases[0].name, "sort");
        let spans = sink.spans();
        assert_eq!(
            spans[0].attrs,
            vec![(
                hdsj_obs::PHASE_ATTR.to_string(),
                hdsj_obs::AttrValue::Str("io".to_string())
            )]
        );
        let hist = sink.hist_snapshot("msj.phase.sort_ns").unwrap();
        assert_eq!(hist.count, 1);

        // Disabled tracer: no histogram handle is even created.
        let t = TracedPhase::start_classed(
            &hdsj_obs::Tracer::disabled(),
            &hdsj_obs::Tracer::disabled().span("x"),
            "sort",
            hdsj_obs::PhaseClass::Cpu,
            "msj.phase.sort_ns",
        );
        t.finish(&mut phases);
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn phase_timer_records_named_phase() {
        let mut phases = Vec::new();
        let t = PhaseTimer::start("assign");
        std::thread::sleep(Duration::from_millis(1));
        t.finish(&mut phases);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "assign");
        assert!(phases[0].elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn stats_lookup_and_totals() {
        let stats = JoinStats {
            candidates: 10,
            results: 4,
            phases: vec![
                Phase {
                    name: "a",
                    elapsed: Duration::from_millis(2),
                },
                Phase {
                    name: "b",
                    elapsed: Duration::from_millis(3),
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(5));
        assert_eq!(stats.phase("b"), Some(Duration::from_millis(3)));
        assert_eq!(stats.phase("missing"), None);
        assert!((stats.filter_precision() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_filter_is_vacuously_precise() {
        assert_eq!(JoinStats::default().filter_precision(), 1.0);
    }
}

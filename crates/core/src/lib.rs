//! # hdsj-core — shared substrate for high dimensional similarity joins
//!
//! This crate defines everything the join algorithms in the `hdsj` workspace
//! have in common:
//!
//! * [`Dataset`] — a dense, row-major container of `d`-dimensional points;
//! * [`Metric`] — the distance functions (`L1`, `L2`, `L∞`, general `Lp`)
//!   with early-exit threshold tests;
//! * [`Rect`] — axis-aligned rectangles (MBRs) used by the tree-based
//!   algorithms;
//! * [`JoinSpec`] / [`SimilarityJoin`] — the public join API implemented by
//!   every algorithm crate (`hdsj-msj`, `hdsj-rtree`, `hdsj-ekdb`,
//!   `hdsj-grid`, `hdsj-bruteforce`);
//! * [`PairSink`] and ready-made collectors;
//! * [`JoinStats`] — uniform instrumentation (candidates, exact distance
//!   evaluations, I/O counters, per-phase wall-clock) that the experiment
//!   harness reports;
//! * [`verify`] — helpers that canonicalize and compare result sets, used by
//!   the test suites to check every algorithm against brute force.
//!
//! ## The join contract
//!
//! An ε-similarity join of datasets `A` and `B` under metric `D` returns
//! every pair `(a, b)` with `D(a, b) ≤ ε`. A *self-join* of `A` returns every
//! unordered pair `{a₁, a₂}`, `a₁ ≠ a₂`, exactly once, canonically ordered
//! `(min index, max index)`. All algorithms are **exact**: multidimensional
//! filtering happens on the L∞ ε-cube (which contains the ε-ball of every
//! `Lp` metric) and every candidate is refined with the exact metric through
//! [`Refiner`], so results are identical across algorithms.
//!
//! ## Unsafe policy
//!
//! The crate is `#![deny(unsafe_code)]`. Exactly two files override it
//! with a file-level `allow`: `simd/x86.rs` and `simd/neon.rs`, which
//! hold the explicit vector kernels. Every `unsafe` block there is an
//! unaligned vector load/store on an in-bounds slice region or a
//! feature-gated kernel call behind the runtime dispatch probe, each with
//! a `SAFETY:` comment (lint R2 enforces the comment discipline, and the
//! analyze suite pins the expected shape). All other workspace crates
//! keep `#![forbid(unsafe_code)]`.
#![deny(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod join;
pub mod kernels;
pub mod lifecycle;
pub mod metric;
pub mod rect;
pub mod refine;
pub mod simd;
pub mod soa;
pub mod stats;
pub mod verify;

pub use dataset::Dataset;
pub use error::{Error, Result};
pub use join::{
    CallbackSink, CountSink, JoinKind, JoinSpec, PairSink, SimilarityJoin, VecSink,
};
pub use lifecycle::{CancelToken, LifecycleCtx, LifecycleStats};
pub use metric::Metric;
pub use rect::Rect;
pub use refine::Refiner;
pub use soa::SoABlock;
pub use stats::{IoCounters, JoinStats, Phase, PhaseTimer, TracedPhase};

/// Structured tracing and metrics (re-exported from `hdsj-obs` so the
/// algorithm crates need no extra dependency).
pub use hdsj_obs as obs;
pub use hdsj_obs::Tracer;

//! Vectorized distance kernels: 4-lane unrolled accumulators with
//! per-block early exit.
//!
//! The scalar loops in [`crate::metric`] accumulate into a single running
//! sum with an early-exit test **per element** — a loop-carried dependency
//! chain (one fused multiply-add per cycle at best) plus a branch per
//! element, which is exactly what keeps refinement from vectorizing. The
//! kernels here restructure the same computation:
//!
//! * four **independent** lane accumulators (`acc[0..4]`) over
//!   `chunks_exact(4)` — no bounds checks, no cross-iteration dependency,
//!   autovectorizable to a 256-bit lane or dual 128-bit pipes;
//! * the early-exit budget test runs on the *folded* partial sum after the
//!   **first 4-element block** (clearly-apart pairs — the overwhelming case
//!   in a tight-ε join — exit after four terms) and then once per
//!   **16-element super-block**, amortizing the fold-and-compare enough
//!   that the branch-free inner blocks still vectorize;
//! * the remainder (`d mod 4` elements) is accumulated separately and
//!   added after the lane fold.
//!
//! ## Exactness
//!
//! Early exit is *consistent*: every term is non-negative, so each lane
//! accumulator is non-decreasing and the monotone fold
//! `(acc0 + acc1) + (acc2 + acc3)` of a partial state never exceeds the
//! final fold. A block-level exit therefore implies the full sum also
//! exceeds the budget — the kernel returns the same decision it would
//! without early exit. The `*_distance` kernels use the **same** lane
//! decomposition and fold order as the `*_within` kernels, so
//! `within(a, b, eps)` agrees with `distance(a, b) <= eps` up to the one
//! rounding of the final root.
//!
//! These functions are the single implementation point: [`crate::metric`]
//! dispatches every `distance`/`within`/`within_batch` call here (with the
//! `Lp(2)`/`Lp(1)` exponents normalized to the specialized L2/L1 kernels).

/// Monotone fold of the four lane accumulators. Keeping one fixed
/// association means partial and final sums are comparable and `distance`
/// and `within` round identically.
#[inline(always)]
pub(crate) fn fold4(acc: &[f64; 4]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Shared 4-lane sum: `Σ term(aᵢ, bᵢ)` with the canonical lane fold.
#[inline(always)]
fn sum4(a: &[f64], b: &[f64], term: impl Fn(f64, f64) -> f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let mut acc = [0.0f64; 4];
    for (xs, ys) in ca.zip(cb) {
        for k in 0..4 {
            acc[k] += term(xs[k], ys[k]);
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        tail += term(*x, *y);
    }
    fold4(&acc) + tail
}

/// Size of the steady-state early-exit super-block: after the first
/// 4-element check, the budget test runs once per this many elements.
/// Small enough that high-d rejections still short-circuit most of the
/// work, large enough that the branch-free inner blocks autovectorize
/// instead of stalling on a fold-and-compare every 4 lanes.
pub(crate) const SUPER_BLOCK: usize = 16;

/// Shared 4-lane threshold test: `Σ term(aᵢ, bᵢ) ≤ budget`, exiting after
/// the first 4-element block or any later super-block whose partial fold
/// already exceeds the budget.
///
/// The lane accumulation sequence is identical to [`sum4`]'s (indices
/// `≡ k (mod 4)` into `acc[k]`, in order), so when no exit fires the final
/// sum is bit-identical to the one `*_distance` computes — only the check
/// positions differ, and by monotonicity that never changes the decision.
#[inline(always)]
fn within4(a: &[f64], b: &[f64], budget: f64, term: impl Fn(f64, f64) -> f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let (mut rest_a, mut rest_b) = (a, b);
    // First block + check: in a tight-ε join almost every candidate pair is
    // far apart, and four terms are usually enough to prove it.
    if a.len() >= 4 {
        for k in 0..4 {
            acc[k] += term(a[k], b[k]);
        }
        if fold4(&acc) > budget {
            return false;
        }
        rest_a = &a[4..];
        rest_b = &b[4..];
    }
    let ca = rest_a.chunks_exact(SUPER_BLOCK);
    let cb = rest_b.chunks_exact(SUPER_BLOCK);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xs, ys) in ca.zip(cb) {
        for (x4, y4) in xs.chunks_exact(4).zip(ys.chunks_exact(4)) {
            for k in 0..4 {
                acc[k] += term(x4[k], y4[k]);
            }
        }
        if fold4(&acc) > budget {
            return false;
        }
    }
    // Remainder (< SUPER_BLOCK elements): full 4-blocks into the lanes,
    // then the scalar tail — the same order `sum4` uses.
    let ra4 = ra.chunks_exact(4);
    let rb4 = rb.chunks_exact(4);
    let (ta, tb) = (ra4.remainder(), rb4.remainder());
    for (x4, y4) in ra4.zip(rb4) {
        for k in 0..4 {
            acc[k] += term(x4[k], y4[k]);
        }
    }
    let mut tail = 0.0;
    for (x, y) in ta.iter().zip(tb) {
        tail += term(*x, *y);
    }
    fold4(&acc) + tail <= budget
}

/// Manhattan distance `Σ |aᵢ − bᵢ|`.
#[inline]
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    sum4(a, b, |x, y| (x - y).abs())
}

/// `Σ |aᵢ − bᵢ| ≤ eps`.
#[inline]
pub fn l1_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    within4(a, b, eps, |x, y| (x - y).abs())
}

/// Euclidean distance `sqrt(Σ (aᵢ − bᵢ)²)`.
#[inline]
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    sum4(a, b, |x, y| (x - y) * (x - y)).sqrt()
}

/// `Σ (aᵢ − bᵢ)² ≤ eps²` — no root is ever taken.
#[inline]
pub fn l2_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    within4(a, b, eps * eps, |x, y| (x - y) * (x - y))
}

/// Chebyshev distance `max |aᵢ − bᵢ|`. `max` is order-independent for the
/// finite inputs datasets hold, so the lane split is exact.
#[inline]
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let mut m = [0.0f64; 4];
    for (xs, ys) in ca.zip(cb) {
        for k in 0..4 {
            m[k] = m[k].max((xs[k] - ys[k]).abs());
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in ra.iter().zip(rb) {
        tail = tail.max((x - y).abs());
    }
    m[0].max(m[1]).max(m[2]).max(m[3]).max(tail)
}

/// `max |aᵢ − bᵢ| ≤ eps`, exiting on the first offending block (the same
/// first-4-then-super-block schedule as the sum kernels).
#[inline]
pub fn linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let (mut rest_a, mut rest_b) = (a, b);
    if a.len() >= 4 {
        let mut first = 0.0f64;
        for k in 0..4 {
            first = first.max((a[k] - b[k]).abs());
        }
        if first > eps {
            return false;
        }
        rest_a = &a[4..];
        rest_b = &b[4..];
    }
    let ca = rest_a.chunks_exact(SUPER_BLOCK);
    let cb = rest_b.chunks_exact(SUPER_BLOCK);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xs, ys) in ca.zip(cb) {
        let mut m = [0.0f64; 4];
        for (x4, y4) in xs.chunks_exact(4).zip(ys.chunks_exact(4)) {
            for k in 0..4 {
                m[k] = m[k].max((x4[k] - y4[k]).abs());
            }
        }
        if m[0].max(m[1]).max(m[2]).max(m[3]) > eps {
            return false;
        }
    }
    ra.iter().zip(rb).all(|(x, y)| (x - y).abs() <= eps)
}

/// Minkowski distance `(Σ |aᵢ − bᵢ|^p)^(1/p)` for general `p ≥ 1`. Callers
/// should normalize `p == 2`/`p == 1` to the specialized kernels first
/// (see [`crate::Metric::normalized`]).
#[inline]
pub fn lp_distance(a: &[f64], b: &[f64], p: f64) -> f64 {
    sum4(a, b, |x, y| (x - y).abs().powf(p)).powf(1.0 / p)
}

/// `Σ |aᵢ − bᵢ|^p ≤ eps^p`, the root-free Lp threshold test.
#[inline]
pub fn lp_within(a: &[f64], b: &[f64], eps: f64, p: f64) -> bool {
    within4(a, b, eps.powf(p), |x, y| (x - y).abs().powf(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference scalar implementations (the pre-kernel loops).
    fn scalar_l2_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn pseudo_point(dims: usize, seed: u64) -> Vec<f64> {
        (0..dims)
            .map(|i| {
                let h = seed
                    .rotate_left(i as u32 * 13)
                    .wrapping_mul(0x9e3779b97f4a7c15);
                (h >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn kernels_match_scalar_sums_closely() {
        for dims in [1, 3, 4, 5, 8, 16, 17, 64] {
            let a = pseudo_point(dims, 7);
            let b = pseudo_point(dims, 11);
            let lanes = l2_distance(&a, &b);
            let scalar = scalar_l2_sq(&a, &b).sqrt();
            assert!(
                (lanes - scalar).abs() <= 1e-12 * scalar.max(1.0),
                "d={dims}: {lanes} vs {scalar}"
            );
        }
    }

    #[test]
    fn within_matches_distance_for_every_lane_shape() {
        // Threshold set exactly at / just off the computed distance, across
        // dimensions that exercise full blocks, remainders, and both.
        for dims in [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 64] {
            let a = pseudo_point(dims, 3);
            let b = pseudo_point(dims, 5);
            for (d, within, name) in [
                (
                    l1_distance(&a, &b),
                    l1_within as fn(&[f64], &[f64], f64) -> bool,
                    "l1",
                ),
                (l2_distance(&a, &b), l2_within, "l2"),
                (linf_distance(&a, &b), linf_within, "linf"),
            ] {
                assert!(within(&a, &b, d * (1.0 + 1e-9)), "{name} d={dims} above");
                assert!(!within(&a, &b, d * (1.0 - 1e-9)), "{name} d={dims} below");
            }
            let dp = lp_distance(&a, &b, 3.0);
            assert!(lp_within(&a, &b, dp * (1.0 + 1e-9), 3.0), "lp d={dims}");
            assert!(!lp_within(&a, &b, dp * (1.0 - 1e-9), 3.0), "lp d={dims}");
        }
    }

    #[test]
    fn early_exit_never_changes_the_decision() {
        // Pairs far outside the threshold exit early; the decision must
        // match the no-exit evaluation (distance comparison) exactly.
        for seed in 0..50u64 {
            let a = pseudo_point(16, seed);
            let b = pseudo_point(16, seed.wrapping_mul(31).wrapping_add(1));
            for eps in [0.01, 0.1, 0.5, 1.0, 2.0] {
                assert_eq!(
                    l2_within(&a, &b, eps),
                    l2_distance(&a, &b) <= eps,
                    "seed={seed} eps={eps}"
                );
                assert_eq!(
                    l1_within(&a, &b, eps),
                    l1_distance(&a, &b) <= eps,
                    "seed={seed} eps={eps}"
                );
                assert_eq!(
                    linf_within(&a, &b, eps),
                    linf_distance(&a, &b) <= eps,
                    "seed={seed} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn symmetry_is_bitwise() {
        // |x−y| and (x−y)² are exactly symmetric in IEEE arithmetic, so
        // kernel distances are bit-identical under argument swap — the
        // property the Refiner's self-join canonicalization relies on.
        let a = pseudo_point(13, 21);
        let b = pseudo_point(13, 22);
        assert_eq!(l1_distance(&a, &b).to_bits(), l1_distance(&b, &a).to_bits());
        assert_eq!(l2_distance(&a, &b).to_bits(), l2_distance(&b, &a).to_bits());
        assert_eq!(
            linf_distance(&a, &b).to_bits(),
            linf_distance(&b, &a).to_bits()
        );
        assert_eq!(
            lp_distance(&a, &b, 2.5).to_bits(),
            lp_distance(&b, &a, 2.5).to_bits()
        );
    }

    #[test]
    fn zero_distance_on_identical_points() {
        let a = pseudo_point(9, 77);
        assert_eq!(l2_distance(&a, &a), 0.0);
        assert!(l2_within(&a, &a, 0.0));
        assert!(l1_within(&a, &a, 0.0));
        assert!(linf_within(&a, &a, 0.0));
        assert!(lp_within(&a, &a, 0.0, 3.0));
    }
}

//! S3J — the Size Separation Spatial Join over arbitrary rectangles.
//!
//! MSJ is the high-dimensional specialization of this algorithm (the
//! authors' SIGMOD 1997 join): given two sets of axis-aligned boxes, report
//! every intersecting pair. Unlike the ε-join, every rectangle has its own
//! extent, so size separation does real work: big rectangles float to
//! coarse levels, small ones sink to fine levels, and the sorted-stream
//! sweep joins each cell against its open ancestors exactly as in MSJ.
//!
//! The implementation shares the level-assignment, record-codec, sort, and
//! sweep machinery with the ε-join; only the refinement step differs
//! (exact `Rect::intersects` instead of a metric test).

use crate::assign::{prefix_bits_equal, Assigner, RecordCodec, TAG_A, TAG_B};
use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    Error, IoCounters, JoinKind, JoinSpec, JoinStats, LifecycleCtx, Metric, PairSink, Rect,
    Result, Tracer,
};
use hdsj_sfc::Curve;
use hdsj_storage::sort::{external_sort, SortConfig};
use hdsj_storage::{RecordFile, StorageEngine};

/// Size Separation Spatial Join over rectangle sets.
#[derive(Clone)]
pub struct S3j {
    /// Space-filling curve ordering the grid cells.
    pub curve: Curve,
    /// Hierarchy depth (rectangles of all sizes coexist, so the depth is a
    /// fixed configuration rather than a function of ε).
    pub depth: u32,
    /// In-memory workspace of the external sort, in records.
    pub sort_mem_records: usize,
    /// Buffer-pool frames of the owned engine (when none is supplied).
    pub pool_pages: usize,
    engine: Option<StorageEngine>,
    /// Per-query lifecycle context, polled at phase boundaries and (via the
    /// engine) charged on every page op.
    lifecycle: Option<LifecycleCtx>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl Default for S3j {
    fn default() -> S3j {
        S3j {
            curve: Curve::Hilbert,
            depth: 8,
            sort_mem_records: 128 * 1024,
            pool_pages: 1024,
            engine: None,
            lifecycle: None,
            tracer: Tracer::disabled(),
        }
    }
}

impl S3j {
    /// Runs on an externally supplied storage engine.
    pub fn with_engine(engine: StorageEngine) -> S3j {
        S3j {
            engine: Some(engine),
            ..S3j::default()
        }
    }

    /// Installs a tracer; subsequent runs record spans and counters.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a lifecycle context; subsequent runs poll it at phase
    /// boundaries and charge page I/O against its budgets.
    pub fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    /// Intersection join of two rectangle sets: every `(i, j)` with
    /// `a[i] ∩ b[j] ≠ ∅`, reported as `(index in a, index in b)`.
    pub fn join(&self, a: &[Rect], b: &[Rect], sink: &mut dyn PairSink) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, sink)
    }

    /// Self intersection join: unordered pairs `{i, j}`, `i < j`, of
    /// intersecting rectangles in `a`.
    pub fn self_join(&self, a: &[Rect], sink: &mut dyn PairSink) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, sink)
    }

    fn run(
        &self,
        a: &[Rect],
        b: &[Rect],
        kind: JoinKind,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let dims = validate_rects(a, b)?;
        let engine = match &self.engine {
            Some(e) => e.clone(),
            None => StorageEngine::in_memory(self.pool_pages),
        };
        if let Some(lc) = &self.lifecycle {
            engine.set_lifecycle(lc.clone());
        }
        let result = self.run_inner(&engine, a, b, kind, dims, sink);
        engine.clear_lifecycle();
        result
    }

    fn run_inner(
        &self,
        engine: &StorageEngine,
        a: &[Rect],
        b: &[Rect],
        kind: JoinKind,
        dims: usize,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let io_before = engine.io_counters();
        let codec = RecordCodec::new(dims, self.depth);
        let mut phases = Vec::new();

        let mut root = self.tracer.span("s3j.join");
        root.attr_str("algo", "S3J");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", dims as u64);
        root.attr_u64("depth", self.depth as u64);

        // Phase 1: level assignment. The assigner's ε-expansion is disabled
        // (ε = 0 would be rejected by JoinSpec, but the assigner itself only
        // uses ε for the cube case; faces are passed explicitly here).
        let assign_timer = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "assign",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::S3J_PHASE_ASSIGN_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut assigner = Assigner::new(dims, self.depth, 1.0, self.curve)?;
        let mut file = RecordFile::create(engine, codec.record_len())?;
        let mut rec = vec![0u8; codec.record_len()];
        for (i, r) in a.iter().enumerate() {
            let (key, level) = assigner.assign_faces(r.lo(), r.hi());
            codec.encode(&key, level, TAG_A, i as u32, &mut rec);
            file.push(&rec)?;
        }
        if kind == JoinKind::TwoSets {
            for (i, r) in b.iter().enumerate() {
                let (key, level) = assigner.assign_faces(r.lo(), r.hi());
                codec.encode(&key, level, TAG_B, i as u32, &mut rec);
                file.push(&rec)?;
            }
        }
        file.release_tail();
        assign_timer.finish(&mut phases);

        // Phase 2: DFS-order external sort (identical to the ε-join).
        let sort_timer = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "sort",
            hdsj_core::obs::PhaseClass::Io,
            hdsj_core::obs::names::S3J_PHASE_SORT_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let sorted = external_sort(
            engine,
            &file,
            codec.sort_key_len(),
            SortConfig {
                mem_records: self.sort_mem_records,
                ..SortConfig::default()
            },
        )?;
        // The unsorted level file is consumed; return its pages for reuse.
        file.destroy()?;
        sort_timer.finish(&mut phases);

        // Phase 3: stack sweep with rectangle refinement.
        let sweep_timer = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "sweep",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::S3J_PHASE_SWEEP_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut stats = JoinStats::default();
        let peak = rect_sweep(&sorted, &codec, a, b, kind, sink, &mut stats)?;
        sweep_timer.finish(&mut phases);
        sorted.destroy()?;

        stats.phases = phases;
        stats.structure_bytes = peak;
        let io_after = engine.io_counters();
        stats.io = IoCounters::diff(&io_after, &io_before);
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("s3j.candidates").add(stats.candidates);
            self.tracer.counter("s3j.results").add(stats.results);
            stats.io.record_counters(&self.tracer, "pool");
            engine.pool().stats().record_latency_metrics(&self.tracer);
        }
        root.finish();
        Ok(stats)
    }
}

fn validate_rects(a: &[Rect], b: &[Rect]) -> Result<usize> {
    let dims = a
        .first()
        .or_else(|| b.first())
        .map(|r| r.dims())
        .unwrap_or(1);
    // allow(hdsj::lifecycle_poll): single O(n) validation pass before any
    // phase begins; the join polls at the next phase boundary.
    for r in a.iter().chain(b) {
        if r.dims() != dims {
            return Err(Error::InvalidInput(format!(
                "rectangle dimensionality mismatch: {} vs {}",
                r.dims(),
                dims
            )));
        }
        if r.is_empty() {
            return Err(Error::InvalidInput("empty rectangle in join input".into()));
        }
    }
    Ok(dims)
}

/// One open cell: rectangles keyed by id, with their dim-0 interval for the
/// overlap pre-check.
struct OpenCell {
    key: Vec<u8>,
    level: u8,
    a: Vec<u32>,
    b: Vec<u32>,
}

fn rect_sweep(
    sorted: &RecordFile,
    codec: &RecordCodec,
    a: &[Rect],
    b: &[Rect],
    kind: JoinKind,
    sink: &mut dyn PairSink,
    stats: &mut JoinStats,
) -> Result<u64> {
    let dims = a
        .first()
        .or_else(|| b.first())
        .map(|r| r.dims())
        .unwrap_or(1) as u32;
    let mut stack: Vec<OpenCell> = Vec::new();
    let mut current: Option<OpenCell> = None;
    let mut peak = 0u64;
    let mut cursor = sorted.cursor();

    let close_cell = |cell: OpenCell,
                      stack: &mut Vec<OpenCell>,
                      stats: &mut JoinStats,
                      sink: &mut dyn PairSink,
                      peak: &mut u64| {
        match kind {
            JoinKind::SelfJoin => {
                for (x, &i) in cell.a.iter().enumerate() {
                    for &j in &cell.a[x + 1..] {
                        offer_self(a, i, j, stats, sink);
                    }
                }
                for anc in stack.iter() {
                    for &i in &cell.a {
                        for &j in &anc.a {
                            offer_self(a, i, j, stats, sink);
                        }
                    }
                }
            }
            JoinKind::TwoSets => {
                for &i in &cell.a {
                    for &j in &cell.b {
                        offer_two(a, b, i, j, stats, sink);
                    }
                }
                for anc in stack.iter() {
                    for &i in &cell.a {
                        for &j in &anc.b {
                            offer_two(a, b, i, j, stats, sink);
                        }
                    }
                    for &i in &anc.a {
                        for &j in &cell.b {
                            offer_two(a, b, i, j, stats, sink);
                        }
                    }
                }
            }
        }
        stack.push(cell);
        let bytes: u64 = stack
            .iter()
            .map(|c| (c.key.len() + (c.a.len() + c.b.len()) * 4 + 64) as u64)
            .sum();
        *peak = (*peak).max(bytes);
    };

    while let Some(rec) = cursor.next()? {
        let key = codec.key_of(rec);
        let (level, tag, id) = codec.meta_of(rec);
        let same_cell = current
            .as_ref()
            .map(|c| c.level == level && c.key[..] == *key)
            .unwrap_or(false);
        if !same_cell {
            if let Some(cell) = current.take() {
                close_cell(cell, &mut stack, stats, sink, &mut peak);
            }
            while let Some(top) = stack.last() {
                let is_ancestor = top.level < level
                    && prefix_bits_equal(&top.key, key, dims * top.level as u32);
                if is_ancestor {
                    break;
                }
                stack.pop();
            }
            current = Some(OpenCell {
                key: key.to_vec(),
                level,
                a: Vec::new(),
                b: Vec::new(),
            });
        }
        let Some(cell) = current.as_mut() else {
            // The branch above opens a cell whenever none matched; an empty
            // slot here is a sweep logic bug, reported as a typed error.
            return Err(Error::Storage("S3J sweep lost its open cell".into()));
        };
        if tag == TAG_A {
            cell.a.push(id);
        } else {
            cell.b.push(id);
        }
    }
    if let Some(cell) = current.take() {
        close_cell(cell, &mut stack, stats, sink, &mut peak);
    }
    Ok(peak)
}

fn offer_self(rects: &[Rect], i: u32, j: u32, stats: &mut JoinStats, sink: &mut dyn PairSink) {
    let (i, j) = (i.min(j), i.max(j));
    stats.candidates += 1;
    stats.dist_evals += 1;
    if rects[i as usize].intersects(&rects[j as usize]) {
        stats.results += 1;
        sink.push(i, j);
    }
}

fn offer_two(
    a: &[Rect],
    b: &[Rect],
    i: u32,
    j: u32,
    stats: &mut JoinStats,
    sink: &mut dyn PairSink,
) {
    stats.candidates += 1;
    stats.dist_evals += 1;
    if a[i as usize].intersects(&b[j as usize]) {
        stats.results += 1;
        sink.push(i, j);
    }
}

/// Suppress the unused-import warning for `JoinSpec`/`Metric`: they anchor
/// the doc link in the module comment only.
#[allow(dead_code)]
fn _doc_anchors(_: Option<(JoinSpec, Metric)>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_core::VecSink;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, dims: usize, max_side: f64, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let lo: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>() * 0.95).collect();
                let hi: Vec<f64> = lo
                    .iter()
                    .map(|&v| (v + rng.gen::<f64>() * max_side).min(1.0 - 1e-9))
                    .collect();
                Rect::new(lo, hi)
            })
            .collect()
    }

    fn brute_self(rects: &[Rect]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                if rects[i].intersects(&rects[j]) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    fn brute_two(a: &[Rect], b: &[Rect]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if ra.intersects(rb) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn self_join_matches_brute_force_mixed_sizes() {
        for (dims, max_side) in [(2usize, 0.2), (3, 0.1), (5, 0.3)] {
            let rects = random_rects(300, dims, max_side, dims as u64);
            let mut sink = VecSink::default();
            let stats = S3j::default().self_join(&rects, &mut sink).unwrap();
            hdsj_core::verify::assert_same_results(
                "S3J self",
                &brute_self(&rects),
                &sink.pairs,
            );
            assert_eq!(stats.results as usize, sink.pairs.len());
        }
    }

    #[test]
    fn two_set_join_matches_brute_force() {
        let a = random_rects(250, 3, 0.15, 11);
        let b = random_rects(200, 3, 0.25, 12);
        let mut sink = VecSink::default();
        S3j::default().join(&a, &b, &mut sink).unwrap();
        hdsj_core::verify::assert_same_results("S3J two", &brute_two(&a, &b), &sink.pairs);
    }

    #[test]
    fn giant_and_tiny_rectangles_mix() {
        // One rectangle covering nearly everything (level 0) plus many tiny
        // ones: the size-separation case the algorithm is named for.
        let mut rects = random_rects(200, 2, 0.01, 7);
        rects.push(Rect::new(vec![0.01, 0.01], vec![0.98, 0.98]));
        let mut sink = VecSink::default();
        S3j::default().self_join(&rects, &mut sink).unwrap();
        hdsj_core::verify::assert_same_results("S3J giant", &brute_self(&rects), &sink.pairs);
    }

    #[test]
    fn degenerate_inputs() {
        let mut sink = VecSink::default();
        // Empty input.
        let stats = S3j::default().self_join(&[], &mut sink).unwrap();
        assert_eq!(stats.results, 0);
        // Single rectangle.
        let one = vec![Rect::new(vec![0.2, 0.2], vec![0.4, 0.4])];
        let stats = S3j::default().self_join(&one, &mut sink).unwrap();
        assert_eq!(stats.results, 0);
        // Point rectangles (zero extent).
        let points: Vec<Rect> = (0..50)
            .map(|i| Rect::point(&[i as f64 / 50.0, 0.5]))
            .collect();
        let mut sink = VecSink::default();
        S3j::default().self_join(&points, &mut sink).unwrap();
        assert_eq!(sink.pairs, brute_self(&points));
    }

    #[test]
    fn rejects_mixed_dims_and_empty_rects() {
        let mut sink = VecSink::default();
        let bad = vec![Rect::point(&[0.1, 0.2]), Rect::point(&[0.1, 0.2, 0.3])];
        assert!(S3j::default().self_join(&bad, &mut sink).is_err());
        let empty_rect = vec![Rect::empty(2), Rect::point(&[0.1, 0.2])];
        assert!(S3j::default().self_join(&empty_rect, &mut sink).is_err());
    }

    #[test]
    fn shallow_depth_still_exact() {
        let rects = random_rects(200, 3, 0.2, 21);
        let s3j = S3j {
            depth: 1,
            ..S3j::default()
        };
        let mut sink = VecSink::default();
        s3j.self_join(&rects, &mut sink).unwrap();
        hdsj_core::verify::assert_same_results("S3J depth=1", &brute_self(&rects), &sink.pairs);
    }

    #[test]
    fn reports_phases_and_stats() {
        let rects = random_rects(300, 2, 0.1, 31);
        let mut sink = VecSink::default();
        let stats = S3j::default().self_join(&rects, &mut sink).unwrap();
        for phase in ["assign", "sort", "sweep"] {
            assert!(stats.phase(phase).is_some());
        }
        assert!(stats.candidates >= stats.results);
        assert!(stats.structure_bytes > 0);
    }
}

//! # hdsj-msj — the Multidimensional Spatial Join (the paper's contribution)
//!
//! MSJ generalizes the authors' Size Separation Spatial Join to high
//! dimensions using a space-filling curve. The pipeline:
//!
//! 1. **Expansion** — every point becomes the L∞ cube of side ε centred on
//!    it; two points are within L∞ distance ε iff their cubes intersect.
//! 2. **Size-separation level assignment** ([`assign`]) — each cube is
//!    assigned to the *finest* level of a hierarchy of grids (level `l` has
//!    `2^l` cells per dimension) at which it fits inside a single cell,
//!    together with the Hilbert key of that cell.
//! 3. **Level files** — entries are written to the `hdsj-storage` engine
//!    and **externally sorted** by `(cell key zero-padded to full depth,
//!    level)`. Because the Hilbert curve is hierarchical (a cell's key is a
//!    prefix of every descendant's key — property-tested in `hdsj-sfc`),
//!    this order is exactly a depth-first traversal of the cell hierarchy.
//! 4. **Synchronized sweep** ([`sweep`]) — one pass over the sorted stream
//!    with a stack of "open" ancestor cells: a cube can only intersect
//!    cubes in its own cell or in an ancestor cell, so each cell's points
//!    are joined against the cell itself and the stack. Candidates are
//!    pre-filtered by a dimension-0 plane sweep and refined with the exact
//!    metric.
//!
//! The memory the sweep needs is the stack of at most `depth + 1` open
//! cells — independent of dimensionality, which is the structural reason
//! MSJ scales to high `d` where the ε-KDB directory and the R-tree fan-out
//! collapse (experiments E1, E5).
#![forbid(unsafe_code)]

pub mod assign;
pub mod parallel;
pub mod s3j;
pub mod sweep;

use assign::{Assigner, RecordCodec};
use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, Error, IoCounters, JoinKind, JoinSpec, JoinStats,
    LifecycleCtx, PairSink, Refiner, Result, SimilarityJoin, Tracer,
};
use hdsj_exec::Pool;
use hdsj_sfc::Curve;
use hdsj_storage::sort::{external_sort, external_sort_resumable, SortConfig};
use hdsj_storage::{Checkpointer, ManifestState, RecordFile, StorageEngine};
use std::sync::{Arc, Mutex};

/// Manifest tag of the unsorted level file (assignment output).
const ASSIGN_TAG: &str = "msj.assign";
/// Manifest tag of the fully sorted level file (`{prefix}.out` of the
/// resumable sort under the `msj.sort` prefix).
const SORT_OUT_TAG: &str = "msj.sort.out";

/// Checkpoint/resume context for one resumable MSJ execution: the
/// checkpoint writer (owning the manifest journal) plus the replayed
/// state of a prior incarnation (empty on a fresh run).
pub struct Recovery {
    /// Writes `FileSealed`/`FileDropped`/`Mark` records with the
    /// flush→fsync→append→fsync protocol.
    pub ckpt: Checkpointer,
    /// Live files and marks recovered from the manifest.
    pub state: ManifestState,
}

/// The Multidimensional Spatial Join.
#[derive(Clone)]
pub struct Msj {
    /// Space-filling curve ordering the grid cells (Hilbert by default;
    /// Z-order for the E12 ablation).
    pub curve: Curve,
    /// Cap on the hierarchy depth. The effective depth is
    /// `min(max_depth, ⌈log2(1/ε)⌉)` — cells finer than ε can never host a
    /// cube of side ε, so deeper levels would only lengthen the sort keys.
    pub max_depth: u32,
    /// In-memory workspace of the external sort, in records.
    pub sort_mem_records: usize,
    /// Buffer-pool frames of the owned engine (when none is supplied).
    pub pool_pages: usize,
    /// Worker threads for exact-metric candidate refinement; `1` refines
    /// inline on the sweep thread.
    pub refine_threads: usize,
    /// Worker threads for the pipeline front end (level assignment + run
    /// formation in the external sort); `1` runs fully serial. Refinement
    /// uses `max(threads, refine_threads)`. Results are identical at every
    /// thread count.
    pub threads: usize,
    engine: Option<StorageEngine>,
    /// Per-query lifecycle context: polled at phase boundaries, by the
    /// exec pool at chunk boundaries, and by the buffer pool on every
    /// disk operation (see `set_lifecycle`).
    lifecycle: Option<LifecycleCtx>,
    /// Checkpoint/resume context (see [`Msj::set_recovery`]). Shared so
    /// the configured join stays cloneable; locked once per run.
    recovery: Option<Arc<Mutex<Recovery>>>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
    /// Chaos failpoint: the refinement worker with this index panics on
    /// startup, exercising the panic-containment path. Never set outside
    /// fault-injection tests.
    pub fail_refine_worker: Option<usize>,
}

impl Default for Msj {
    fn default() -> Msj {
        Msj {
            curve: Curve::Hilbert,
            max_depth: 16,
            sort_mem_records: 128 * 1024,
            pool_pages: 1024,
            refine_threads: 1,
            threads: 1,
            engine: None,
            lifecycle: None,
            recovery: None,
            tracer: Tracer::disabled(),
            fail_refine_worker: None,
        }
    }
}

impl Msj {
    /// Runs on an externally supplied storage engine (for the I/O and
    /// buffer-size experiments).
    pub fn with_engine(engine: StorageEngine) -> Msj {
        Msj {
            engine: Some(engine),
            ..Msj::default()
        }
    }

    /// Uses the given curve (the E12 ablation).
    pub fn with_curve(curve: Curve) -> Msj {
        Msj {
            curve,
            ..Msj::default()
        }
    }

    /// Refines candidates on `threads` worker threads.
    pub fn with_refine_threads(threads: usize) -> Msj {
        Msj {
            refine_threads: threads.max(1),
            ..Msj::default()
        }
    }

    /// Runs the whole pipeline (assignment, sort run formation, and
    /// refinement) on `threads` worker threads.
    pub fn with_threads(threads: usize) -> Msj {
        let t = hdsj_exec::resolve_threads(threads).max(1);
        Msj {
            threads: t,
            refine_threads: t,
            ..Msj::default()
        }
    }

    /// Arms checkpoint/resume: every phase boundary seals its output into
    /// `ckpt`'s manifest, and work already live in `state` (from a prior
    /// crashed incarnation) is reused instead of recomputed. The resumed
    /// result is byte-identical to a fresh run.
    pub fn set_recovery(&mut self, ckpt: Checkpointer, state: ManifestState) {
        self.recovery = Some(Arc::new(Mutex::new(Recovery { ckpt, state })));
    }

    /// The hierarchy depth used for a given ε. A cube of side ε only fits in
    /// cells of side ≥ ε, i.e. levels `l ≤ log2(1/ε)`, so deeper levels
    /// would stay empty and only lengthen the sort keys.
    pub fn effective_depth(&self, eps: f64) -> u32 {
        let useful = (1.0 / eps).log2().floor().max(1.0) as u32;
        useful.min(self.max_depth).clamp(1, 20)
    }

    /// Per-level entry counts for a dataset at a given ε — the level
    /// occupancy table (experiment E9).
    pub fn level_histogram(&self, ds: &Dataset, eps: f64) -> Result<Vec<u64>> {
        let depth = self.effective_depth(eps);
        let mut assigner = Assigner::new(ds.dims(), depth, eps, self.curve)?;
        let mut hist = vec![0u64; depth as usize + 1];
        for (n, (_, p)) in ds.iter().enumerate() {
            if n % 4096 == 0 {
                if let Some(lc) = &self.lifecycle {
                    lc.poll()?;
                }
            }
            let (_, level) = assigner.assign(p);
            hist[level as usize] += 1;
        }
        Ok(hist)
    }

    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let dims = validate_inputs(a, b, spec)?;
        let engine = match &self.engine {
            Some(e) => e.clone(),
            None => StorageEngine::in_memory(self.pool_pages),
        };
        if let Some(lc) = &self.lifecycle {
            engine.set_lifecycle(lc.clone());
        }
        let io_before = engine.io_counters();
        let depth = self.effective_depth(spec.eps);
        let codec = RecordCodec::new(dims, depth);

        let mut root = self.tracer.span("msj.join");
        root.attr_str("algo", "MSJ");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", dims as u64);
        root.attr_f64("eps", spec.eps);
        root.attr_u64("depth", depth as u64);
        root.attr_u64("threads", self.threads as u64);
        root.attr_u64("refine_threads", self.refine_threads as u64);

        let mut resumed_files = 0u64;
        let result = self.pipeline(
            &engine,
            &codec,
            dims,
            depth,
            &root,
            a,
            b,
            kind,
            spec,
            sink,
            &mut resumed_files,
        );

        // Observability flushes on *every* exit, including cancellation,
        // deadline/budget exhaustion, and storage faults: partial metrics
        // are the point of terminating gracefully instead of tearing down.
        let io = IoCounters::diff(&engine.io_counters(), &io_before);
        if self.tracer.enabled() {
            io.record_counters(&self.tracer, "pool");
            engine.pool().stats().record_latency_metrics(&self.tracer);
            self.tracer.gauge("pool.hit_rate", io.hit_rate());
            if let Some(lc) = &self.lifecycle {
                let ls = lc.stats();
                self.tracer
                    .counter(hdsj_core::obs::names::LIFECYCLE_CANCEL_POLLS)
                    .add(ls.polls);
                self.tracer
                    .counter(hdsj_core::obs::names::LIFECYCLE_CHECKPOINTS)
                    .add(ls.checkpoints);
            }
            if resumed_files > 0 {
                self.tracer
                    .counter(hdsj_core::obs::names::JOIN_RESUMED_LEVELS)
                    .add(resumed_files);
            }
            match &result {
                Ok(stats) => {
                    root.attr_u64("candidates", stats.candidates);
                    root.attr_u64("results", stats.results);
                    self.tracer.counter("msj.candidates").add(stats.candidates);
                    self.tracer.counter("msj.results").add(stats.results);
                }
                Err(e) => root.attr_str("error", e.variant_name()),
            }
        }
        root.finish();
        engine.clear_lifecycle();
        let mut stats = result?;
        stats.io = io;
        Ok(stats)
    }

    /// The three MSJ phases. Split from [`Msj::run`] so the caller can
    /// flush tracing/metrics uniformly on success *and* error exits.
    #[allow(clippy::too_many_arguments)]
    fn pipeline(
        &self,
        engine: &StorageEngine,
        codec: &RecordCodec,
        dims: usize,
        depth: u32,
        root: &hdsj_core::obs::Span,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
        resumed_files: &mut u64,
    ) -> Result<JoinStats> {
        let mut phases = Vec::new();
        let mut recovery = match &self.recovery {
            Some(r) => Some(
                r.lock()
                    .map_err(|_| Error::Internal("msj recovery lock poisoned".into()))?,
            ),
            None => None,
        };
        // Every live manifest file is work a previous incarnation already
        // finished — count them before any of it is consumed.
        if let Some(r) = recovery.as_ref() {
            *resumed_files = r.state.files.len() as u64;
        }
        let sort_done = recovery
            .as_ref()
            .is_some_and(|r| r.state.files.contains_key(SORT_OUT_TAG));

        // Phase 1: level assignment, one combined file of tagged entries.
        // Chunks of points are assigned and Hilbert-encoded on the pool
        // (each chunk owns its Assigner and encodes into a local buffer);
        // the file writes stay on this thread, in chunk order, so the level
        // file is byte-identical at every thread count. Skipped entirely
        // when a durable sorted file (or the sealed level file itself)
        // survives from a crashed run.
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut assign_timer = TracedPhase::start_classed(
            &self.tracer,
            root,
            "assign",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::MSJ_PHASE_ASSIGN_NS,
        );
        let rec_len = codec.record_len();
        let mut file: Option<RecordFile> = None;
        if !sort_done {
            if let Some(spec_file) = recovery
                .as_ref()
                .and_then(|r| r.state.files.get(ASSIGN_TAG))
            {
                file = Some(spec_file.open(engine)?);
            } else {
                let mut f = RecordFile::create(engine, rec_len)?;
                let mut pool = Pool::with_tracer(self.threads, self.tracer.clone());
                if let Some(lc) = &self.lifecycle {
                    pool = pool.with_lifecycle(lc.clone());
                }
                const ASSIGN_CHUNK: usize = 4096;
                for (ds, tag) in [(a, assign::TAG_A), (b, assign::TAG_B)] {
                    if tag == assign::TAG_B && kind != JoinKind::TwoSets {
                        continue;
                    }
                    let bufs = pool.map_chunks(
                        Some(assign_timer.span_mut()),
                        ds.len(),
                        ASSIGN_CHUNK,
                        |r| {
                            let mut assigner =
                                Assigner::new(dims, depth, spec.eps, self.curve)?;
                            let mut local = Vec::with_capacity(r.len() * rec_len);
                            let mut rec = vec![0u8; rec_len];
                            for i in r {
                                let (key, level) = assigner.assign(ds.point(i as u32));
                                codec.encode(&key, level, tag, i as u32, &mut rec);
                                local.extend_from_slice(&rec);
                            }
                            Ok(local)
                        },
                    )?;
                    for buf in bufs {
                        for rec in buf.chunks_exact(rec_len) {
                            f.push(rec)?;
                        }
                    }
                }
                f.release_tail();
                if let Some(r) = recovery.as_mut() {
                    r.ckpt.seal_file("msj.assign_sealed", ASSIGN_TAG, &f, &[])?;
                }
                file = Some(f);
            }
        }
        assign_timer.finish(&mut phases);

        // Phase 2: external sort by (padded cell key, level) — the DFS
        // order of the cell hierarchy. The level byte directly follows the
        // key bytes, so one prefix comparison covers both. Run formation
        // fans out on the same thread budget; output stays byte-identical.
        // With recovery, every spilled run and merge output checkpoints,
        // and a completed sort is reused outright.
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let sort_timer = TracedPhase::start_classed(
            &self.tracer,
            root,
            "sort",
            hdsj_core::obs::PhaseClass::Io,
            hdsj_core::obs::names::MSJ_PHASE_SORT_NS,
        );
        let sort_config = SortConfig {
            mem_records: self.sort_mem_records,
            threads: self.threads,
            ..SortConfig::default()
        };
        let sorted = match recovery.as_mut() {
            None => {
                let f = file
                    .as_ref()
                    .ok_or_else(|| Error::Internal("msj lost its level file".into()))?;
                let sorted = external_sort(engine, f, codec.sort_key_len(), sort_config)?;
                // The unsorted level file is consumed; return its pages.
                if let Some(f) = file.take() {
                    f.destroy()?;
                }
                sorted
            }
            Some(r) => {
                if sort_done {
                    // Crash landed between the sort's final seal and the
                    // level-file drop: retire the stale level file now.
                    if let Some(spec_file) = r.state.files.get(ASSIGN_TAG) {
                        let stale = spec_file.open(engine)?;
                        r.ckpt.drop_file("msj.assign_dropped", ASSIGN_TAG)?;
                        stale.destroy()?;
                    }
                    r.state.files[SORT_OUT_TAG].open(engine)?
                } else {
                    let f = file
                        .as_ref()
                        .ok_or_else(|| Error::Internal("msj lost its level file".into()))?;
                    let Recovery { ckpt, state } = &mut **r;
                    let sorted = external_sort_resumable(
                        engine,
                        f,
                        codec.sort_key_len(),
                        sort_config,
                        ckpt,
                        "msj.sort",
                        "msj.sort_sealed",
                        state,
                    )?;
                    r.ckpt.drop_file("msj.assign_dropped", ASSIGN_TAG)?;
                    if let Some(f) = file.take() {
                        f.destroy()?;
                    }
                    sorted
                }
            }
        };
        sort_timer.finish(&mut phases);

        // Phase 3: stack-based synchronized sweep, refining inline or on
        // worker threads. Not checkpointed: the sweep is deterministic, so
        // a crash mid-sweep redoes it from the durable sorted file.
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let refine_threads = self.refine_threads.max(self.threads);
        let mut sweep_timer = TracedPhase::start_classed(
            &self.tracer,
            root,
            "sweep",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::MSJ_PHASE_SWEEP_NS,
        );
        let mut stats = JoinStats::default();
        let peak_bytes = if refine_threads <= 1 {
            let mut refiner = Refiner::new(a, b, kind, spec, sink);
            // Batch consecutive candidates that share a probe into one
            // `offer_batch` call, so runs long enough for the SoA
            // across-candidate kernel take it (semantics match per-pair
            // `offer` exactly: same counters, same canonical emission).
            const RUN_CAP: usize = 256;
            let mut run_i = 0u32;
            let mut run: Vec<u32> = Vec::with_capacity(RUN_CAP);
            let peak = {
                let mut emit = |i: u32, j: u32| {
                    if i != run_i || run.len() >= RUN_CAP {
                        if !run.is_empty() {
                            refiner.offer_batch(run_i, &run);
                            run.clear();
                        }
                        run_i = i;
                    }
                    run.push(j);
                };
                sweep::sweep(&sorted, codec, a, b, kind, spec.eps, &mut emit)?
            };
            if !run.is_empty() {
                refiner.offer_batch(run_i, &run);
            }
            stats = refiner.finish(stats);
            peak
        } else {
            let (peak, pairs, candidates) = parallel::sweep_and_refine(
                &sorted,
                codec,
                a,
                b,
                kind,
                spec,
                refine_threads,
                &self.tracer,
                sweep_timer.span_mut(),
                self.fail_refine_worker,
            )?;
            stats.candidates += candidates;
            stats.dist_evals += candidates;
            stats.results += pairs.len() as u64;
            for (i, j) in pairs {
                sink.push(i, j);
            }
            peak
        };
        sweep_timer.finish(&mut phases);
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        if let Some(r) = recovery.as_mut() {
            r.ckpt.drop_file("msj.done", SORT_OUT_TAG)?;
        }
        sorted.destroy()?;

        stats.phases = phases;
        stats.structure_bytes = peak_bytes;
        Ok(stats)
    }
}

impl SimilarityJoin for Msj {
    fn name(&self) -> &'static str {
        "MSJ"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    fn set_threads(&mut self, threads: usize) {
        let t = hdsj_exec::resolve_threads(threads).max(1);
        self.threads = t;
        self.refine_threads = t;
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_bruteforce::BruteForce;
    use hdsj_core::{verify, Metric, VecSink};

    fn compare_with_bf(a: &Dataset, b: Option<&Dataset>, spec: &JoinSpec, msj: &mut Msj) {
        let mut want = VecSink::default();
        let mut got = VecSink::default();
        let mut bf = BruteForce::default();
        match b {
            None => {
                bf.self_join(a, spec, &mut want).unwrap();
                msj.self_join(a, spec, &mut got).unwrap();
            }
            Some(b) => {
                bf.join(a, b, spec, &mut want).unwrap();
                msj.join(a, b, spec, &mut got).unwrap();
            }
        }
        verify::assert_same_results("MSJ", &want.pairs, &got.pairs);
    }

    #[test]
    fn matches_brute_force_on_uniform_self_join() {
        for (dims, eps) in [(2usize, 0.05), (4, 0.15), (8, 0.3), (16, 0.6)] {
            let ds = hdsj_data::uniform(dims, 400, dims as u64 + 7).unwrap();
            compare_with_bf(
                &ds,
                None,
                &JoinSpec::new(eps, Metric::L2),
                &mut Msj::default(),
            );
        }
    }

    #[test]
    fn matches_brute_force_on_two_set_join() {
        let a = hdsj_data::uniform(5, 350, 51).unwrap();
        let b = hdsj_data::uniform(5, 300, 52).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(3.0)] {
            compare_with_bf(
                &a,
                Some(&b),
                &JoinSpec::new(0.2, metric),
                &mut Msj::default(),
            );
        }
    }

    #[test]
    fn matches_brute_force_with_zorder_curve() {
        let ds = hdsj_data::uniform(6, 400, 61).unwrap();
        let mut msj = Msj::with_curve(Curve::ZOrder);
        compare_with_bf(&ds, None, &JoinSpec::new(0.25, Metric::L2), &mut msj);
    }

    #[test]
    fn matches_brute_force_on_clustered_and_correlated_data() {
        let clustered = hdsj_data::gaussian_clusters(
            4,
            500,
            hdsj_data::ClusterSpec {
                clusters: 6,
                sigma: 0.03,
                ..Default::default()
            },
            71,
        )
        .unwrap();
        compare_with_bf(
            &clustered,
            None,
            &JoinSpec::new(0.05, Metric::L2),
            &mut Msj::default(),
        );
        let corr = hdsj_data::correlated(8, 400, 0.04, 72).unwrap();
        compare_with_bf(
            &corr,
            None,
            &JoinSpec::new(0.08, Metric::L2),
            &mut Msj::default(),
        );
    }

    #[test]
    fn matches_brute_force_in_high_dimensions() {
        let ds = hdsj_data::uniform(32, 150, 81).unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(0.7, Metric::L2),
            &mut Msj::default(),
        );
    }

    #[test]
    fn shallow_depth_cap_is_still_exact() {
        // max_depth=1 pushes almost everything into levels 0/1: the sweep
        // degenerates gracefully but stays correct.
        let ds = hdsj_data::uniform(3, 300, 91).unwrap();
        let mut msj = Msj {
            max_depth: 1,
            ..Msj::default()
        };
        compare_with_bf(&ds, None, &JoinSpec::new(0.1, Metric::L2), &mut msj);
    }

    #[test]
    fn boundary_points_are_not_lost() {
        // Cubes touching cell boundaries exactly must be classified into an
        // ancestor cell, not dropped.
        let eps = 0.25;
        let ds = Dataset::from_rows(&[
            vec![0.5, 0.5],   // cube spans the centre: level 0
            vec![0.375, 0.5], // cube touches x=0.5 exactly
            vec![0.625, 0.5],
            vec![0.125, 0.125], // interior of one quadrant
            vec![0.126, 0.126],
        ])
        .unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(eps, Metric::Linf),
            &mut Msj::default(),
        );
    }

    #[test]
    fn duplicate_points() {
        let rows = vec![vec![0.3, 0.3]; 40];
        let ds = Dataset::from_rows(&rows).unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(0.01, Metric::L2),
            &mut Msj::default(),
        );
    }

    #[test]
    fn level_histogram_sums_to_n_and_shifts_with_eps() {
        let ds = hdsj_data::uniform(4, 1000, 3).unwrap();
        let msj = Msj::default();
        let hist_fine = msj.level_histogram(&ds, 0.01).unwrap();
        assert_eq!(hist_fine.iter().sum::<u64>(), 1000);
        let hist_coarse = msj.level_histogram(&ds, 0.4).unwrap();
        assert_eq!(hist_coarse.iter().sum::<u64>(), 1000);
        // Small ε ⇒ cubes fit in deep cells; large ε ⇒ mass at the top.
        let mean_level = |h: &[u64]| {
            h.iter()
                .enumerate()
                .map(|(l, &c)| l as f64 * c as f64)
                .sum::<f64>()
                / 1000.0
        };
        assert!(mean_level(&hist_fine) > mean_level(&hist_coarse) + 1.0);
    }

    #[test]
    fn reports_phases_io_and_peak_memory() {
        let ds = hdsj_data::uniform(4, 8000, 5).unwrap();
        let engine = StorageEngine::in_memory(3); // tiny pool: real I/O
        let mut msj = Msj::with_engine(engine);
        let mut sink = VecSink::default();
        let stats = msj.self_join(&ds, &JoinSpec::l2(0.1), &mut sink).unwrap();
        for phase in ["assign", "sort", "sweep"] {
            assert!(stats.phase(phase).is_some(), "missing phase {phase}");
        }
        assert!(stats.io.reads > 0 && stats.io.writes > 0, "{:?}", stats.io);
        assert!(stats.structure_bytes > 0);
        assert_eq!(stats.results as usize, sink.pairs.len());
    }

    #[test]
    fn effective_depth_tracks_eps() {
        let msj = Msj::default();
        assert_eq!(msj.effective_depth(0.5), 1);
        assert_eq!(msj.effective_depth(0.25), 2);
        assert_eq!(msj.effective_depth(0.1), 3);
        assert_eq!(msj.effective_depth(1e-9), 16, "capped by max_depth");
    }

    #[test]
    fn storage_fault_propagates() {
        let ds = hdsj_data::uniform(3, 200, 5).unwrap();
        let engine = StorageEngine::in_memory(64);
        engine.set_fault_after(Some(2));
        let mut msj = Msj::with_engine(engine);
        let mut sink = VecSink::default();
        assert!(msj.self_join(&ds, &JoinSpec::l2(0.1), &mut sink).is_err());
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use hdsj_core::VecSink;

    #[test]
    fn pre_canceled_join_returns_canceled_not_panic() {
        let ds = hdsj_data::uniform(4, 300, 41).unwrap();
        let lc = LifecycleCtx::unbounded();
        lc.cancel_token().cancel();
        let mut msj = Msj::default();
        msj.set_lifecycle(lc);
        let mut sink = VecSink::default();
        let err = msj
            .self_join(&ds, &JoinSpec::l2(0.1), &mut sink)
            .unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err:?}");
    }

    #[test]
    fn exhausted_io_budget_surfaces_as_typed_error() {
        let ds = hdsj_data::uniform(4, 2000, 42).unwrap();
        let lc = LifecycleCtx::builder().io_budget(3).build();
        let engine = StorageEngine::in_memory(4); // tiny pool: plenty of I/O
        let mut msj = Msj::with_engine(engine.clone());
        msj.set_lifecycle(lc);
        let mut sink = VecSink::default();
        let err = msj
            .self_join(&ds, &JoinSpec::l2(0.1), &mut sink)
            .unwrap_err();
        assert!(matches!(err, Error::BudgetExhausted(_)), "{err:?}");
        // Graceful exit: no pins leaked, and the lifecycle ctx was removed
        // so the engine is reusable.
        assert_eq!(engine.pool().pinned_frames(), 0);
        let mut retry = VecSink::default();
        Msj::with_engine(engine)
            .self_join(&ds, &JoinSpec::l2(0.1), &mut retry)
            .unwrap();
        assert!(!retry.pairs.is_empty());
    }

    #[test]
    fn lifecycle_error_still_flushes_metrics() {
        use hdsj_core::obs::Tracer;
        let ds = hdsj_data::uniform(4, 2000, 43).unwrap();
        let lc = LifecycleCtx::builder().io_budget(3).build();
        let (tracer, events) = Tracer::memory();
        let mut msj = Msj::with_engine(StorageEngine::in_memory(4));
        msj.set_lifecycle(lc);
        msj.set_tracer(tracer.clone());
        let mut sink = VecSink::default();
        assert!(msj.self_join(&ds, &JoinSpec::l2(0.1), &mut sink).is_err());
        tracer.flush();
        // Partial metrics survive the failed join: the poll counter is
        // non-zero and the root span records the error variant.
        let polls = events
            .counter_value(hdsj_core::obs::names::LIFECYCLE_CANCEL_POLLS)
            .unwrap_or(0);
        assert!(polls > 0, "lifecycle polls must be flushed on error");
        let spans = events.spans();
        let root = spans.iter().find(|s| s.name == "msj.join").unwrap();
        assert!(
            root.attrs.iter().any(|(k, v)| k == "error"
                && matches!(v, hdsj_core::obs::AttrValue::Str(s) if s == "BudgetExhausted")),
            "root span must carry the error variant: {:?}",
            root.attrs
        );
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use hdsj_core::{Metric, VecSink};
    use hdsj_storage::Manifest;
    use std::path::Path;

    fn attempt(
        dir: &Path,
        ds: &Dataset,
        spec: &JoinSpec,
        halt: Option<(&str, u64)>,
    ) -> Result<Vec<(u32, u32)>> {
        let man_path = dir.join("join.manifest");
        let data_path = dir.join("join.manifest.pages");
        let (eng, mut ckpt, state);
        if man_path.exists() {
            let (man, recs) = Manifest::open_append(&man_path)?;
            state = ManifestState::replay(&recs)?;
            eng = StorageEngine::builder(64).file_backed_open(&data_path)?;
            eng.adopt_freelist(state.orphan_pages(eng.pool().num_pages()))?;
            ckpt = Checkpointer::new(&eng, man);
        } else {
            eng = StorageEngine::file_backed(&data_path, 64)?;
            state = ManifestState::default();
            ckpt = Checkpointer::new(&eng, Manifest::create(&man_path, 99)?);
        }
        if let Some((point, n)) = halt {
            ckpt.halt_at(point, n);
        }
        let mut msj = Msj {
            sort_mem_records: 64,
            ..Msj::with_engine(eng.clone())
        };
        msj.set_recovery(ckpt, state);
        let mut sink = VecSink::default();
        msj.self_join(ds, spec, &mut sink)?;
        assert_eq!(eng.pool().pinned_frames(), 0, "leaked pins");
        assert_eq!(
            eng.pool().free_pages(),
            eng.pool().num_pages() as usize,
            "completed resumable join must leave every page free"
        );
        Ok(sink.pairs)
    }

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hdsj-rmsj-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpointed_join_without_crash_matches_plain_join() {
        let ds = hdsj_data::uniform(4, 400, 123).unwrap();
        let spec = JoinSpec::new(0.15, Metric::L2);
        let mut want = VecSink::default();
        Msj::default().self_join(&ds, &spec, &mut want).unwrap();
        let dir = fresh_dir("fresh");
        let got = attempt(&dir, &ds, &spec, None).unwrap();
        assert_eq!(got, want.pairs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halted_join_resumes_to_byte_identical_pairs() {
        for seed in [1u64, 7, 31] {
            let ds = hdsj_data::uniform(4, 350 + seed as usize * 29, seed).unwrap();
            let spec = JoinSpec::new(0.12, Metric::L2);
            let mut want = VecSink::default();
            Msj::default().self_join(&ds, &spec, &mut want).unwrap();
            for (point, nth) in [
                ("msj.assign_sealed", 1),
                ("sort.run_sealed", 1),
                ("sort.run_sealed", 3),
                ("sort.merge_sealed", 1),
                ("msj.sort_sealed", 1),
            ] {
                let dir = fresh_dir(&format!("{seed}-{point}-{nth}"));
                let err = attempt(&dir, &ds, &spec, Some((point, nth))).unwrap_err();
                assert!(matches!(err, Error::Canceled(_)), "{point}@{nth}: {err:?}");
                let got = attempt(&dir, &ds, &spec, None)
                    .unwrap_or_else(|e| panic!("resume {point}@{nth} seed {seed}: {e:?}"));
                assert_eq!(got, want.pairs, "{point}@{nth} seed {seed}");
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }

    #[test]
    fn repeated_crashes_at_different_phases_still_converge() {
        let ds = hdsj_data::uniform(5, 500, 77).unwrap();
        let spec = JoinSpec::new(0.2, Metric::Linf);
        let mut want = VecSink::default();
        Msj::default().self_join(&ds, &spec, &mut want).unwrap();
        let dir = fresh_dir("multi");
        assert!(attempt(&dir, &ds, &spec, Some(("msj.assign_sealed", 1))).is_err());
        assert!(attempt(&dir, &ds, &spec, Some(("sort.run_sealed", 2))).is_err());
        assert!(attempt(&dir, &ds, &spec, Some(("msj.sort_sealed", 1))).is_err());
        let got = attempt(&dir, &ds, &spec, None).unwrap();
        assert_eq!(got, want.pairs);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use hdsj_core::{verify, Metric, VecSink};

    #[test]
    fn parallel_refinement_matches_serial() {
        for (dims, eps, n) in [(4usize, 0.2f64, 600usize), (8, 0.35, 400)] {
            let ds = hdsj_data::uniform(dims, n, 1000 + dims as u64).unwrap();
            let spec = JoinSpec::new(eps, Metric::L2);
            let mut serial = VecSink::default();
            let s1 = Msj::default().self_join(&ds, &spec, &mut serial).unwrap();
            let mut par = VecSink::default();
            let s2 = Msj::with_refine_threads(4)
                .self_join(&ds, &spec, &mut par)
                .unwrap();
            verify::assert_same_results("MSJ parallel", &serial.pairs, &par.pairs);
            assert_eq!(s1.candidates, s2.candidates);
            assert_eq!(s1.results, s2.results);
        }
    }

    #[test]
    fn parallel_two_set_join_matches_serial() {
        let a = hdsj_data::uniform(5, 400, 2001).unwrap();
        let b = hdsj_data::uniform(5, 350, 2002).unwrap();
        let spec = JoinSpec::new(0.25, Metric::Linf);
        let mut serial = VecSink::default();
        Msj::default().join(&a, &b, &spec, &mut serial).unwrap();
        let mut par = VecSink::default();
        Msj::with_refine_threads(3)
            .join(&a, &b, &spec, &mut par)
            .unwrap();
        verify::assert_same_results("MSJ parallel two-set", &serial.pairs, &par.pairs);
    }

    #[test]
    fn refine_worker_counters_are_exact_under_concurrency() {
        use hdsj_core::obs::{AttrValue, Tracer};

        let ds = hdsj_data::uniform(6, 1200, 2004).unwrap();
        let spec = JoinSpec::new(0.3, Metric::L2);
        let (tracer, events) = Tracer::memory();
        let mut msj = Msj::with_refine_threads(4);
        msj.set_tracer(tracer.clone());
        let mut out = VecSink::default();
        let stats = msj.self_join(&ds, &spec, &mut out).unwrap();
        tracer.flush();

        // The shared counters are incremented concurrently from every
        // worker, one batch at a time — they must still sum exactly.
        assert_eq!(
            events.counter_value("msj.refine.pairs"),
            Some(stats.results)
        );
        assert_eq!(
            events.counter_value("msj.refine.candidates"),
            Some(stats.candidates)
        );

        // Each worker reports its own span under the sweep phase, and the
        // per-worker attributes also sum to the totals.
        let spans = events.spans();
        let sweep_id = spans
            .iter()
            .find(|s| s.name == "sweep")
            .expect("sweep span")
            .id;
        let attr_total = |key: &str| -> u64 {
            spans
                .iter()
                .filter(|s| s.name == "refine-worker")
                .map(|s| {
                    assert_eq!(s.parent, Some(sweep_id));
                    match s.attrs.iter().find(|(k, _)| k == key) {
                        Some((_, AttrValue::U64(v))) => *v,
                        other => panic!("missing u64 attr {key}: {other:?}"),
                    }
                })
                .sum()
        };
        assert_eq!(
            spans.iter().filter(|s| s.name == "refine-worker").count(),
            4
        );
        assert_eq!(attr_total("pairs"), stats.results);
        assert_eq!(attr_total("candidates"), stats.candidates);
    }

    #[test]
    fn worker_panic_is_contained_as_typed_error() {
        let ds = hdsj_data::uniform(4, 500, 2005).unwrap();
        let spec = JoinSpec::l2(0.2);
        let engine = StorageEngine::in_memory(64);
        let mut msj = Msj {
            refine_threads: 3,
            fail_refine_worker: Some(1),
            ..Msj::with_engine(engine.clone())
        };
        let mut sink = VecSink::default();
        let err = msj.self_join(&ds, &spec, &mut sink).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "typed panic error, got: {msg}");
        assert!(
            msg.contains("injected refine-worker failure"),
            "panic message preserved, got: {msg}"
        );
        // Containment left the pool consistent: nothing pinned, temp files
        // returned their pages, and the same configuration works again with
        // the failpoint off.
        assert_eq!(engine.pool().pinned_frames(), 0);
        assert_eq!(
            engine.pool().free_pages(),
            engine.pool().num_pages() as usize,
            "temp pages must be back on the freelist"
        );
        msj.fail_refine_worker = None;
        let mut retry_sink = VecSink::default();
        msj.self_join(&ds, &spec, &mut retry_sink).unwrap();
        let mut want = VecSink::default();
        Msj::default().self_join(&ds, &spec, &mut want).unwrap();
        verify::assert_same_results("MSJ after panic", &want.pairs, &retry_sink.pairs);
    }

    #[test]
    fn fully_parallel_pipeline_matches_serial() {
        // threads drives assignment, sort run formation, AND refinement;
        // results and counters must be identical to the serial pipeline on
        // both uniform and clustered data.
        let uniform = hdsj_data::uniform(6, 700, 3001).unwrap();
        let clustered = hdsj_data::gaussian_clusters(
            4,
            600,
            hdsj_data::ClusterSpec {
                clusters: 5,
                sigma: 0.04,
                ..Default::default()
            },
            3002,
        )
        .unwrap();
        for (ds, eps) in [(&uniform, 0.3), (&clustered, 0.06)] {
            let spec = JoinSpec::new(eps, Metric::L2);
            let mut serial = VecSink::default();
            let s1 = Msj::default().self_join(ds, &spec, &mut serial).unwrap();
            for threads in [2usize, 4, 8] {
                let mut par = VecSink::default();
                let s2 = Msj::with_threads(threads)
                    .self_join(ds, &spec, &mut par)
                    .unwrap();
                verify::assert_same_results("MSJ full pipeline", &serial.pairs, &par.pairs);
                assert_eq!(s1.candidates, s2.candidates, "threads={threads}");
                assert_eq!(s1.results, s2.results, "threads={threads}");
            }
        }
    }

    #[test]
    fn set_threads_drives_the_whole_pipeline() {
        let ds = hdsj_data::uniform(4, 300, 3003).unwrap();
        let spec = JoinSpec::l2(0.15);
        let mut msj = Msj::default();
        msj.set_threads(3);
        assert_eq!(msj.threads, 3);
        assert_eq!(msj.refine_threads, 3);
        let mut par = VecSink::default();
        msj.self_join(&ds, &spec, &mut par).unwrap();
        let mut want = VecSink::default();
        Msj::default().self_join(&ds, &spec, &mut want).unwrap();
        verify::assert_same_results("MSJ set_threads", &want.pairs, &par.pairs);
    }

    #[test]
    fn single_thread_config_uses_serial_path() {
        let ds = hdsj_data::uniform(3, 200, 2003).unwrap();
        let spec = JoinSpec::l2(0.1);
        let mut sink = VecSink::default();
        Msj::with_refine_threads(1)
            .self_join(&ds, &spec, &mut sink)
            .unwrap();
        let mut want = VecSink::default();
        Msj::default().self_join(&ds, &spec, &mut want).unwrap();
        verify::assert_same_results("MSJ t=1", &want.pairs, &sink.pairs);
    }
}

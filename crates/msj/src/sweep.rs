//! The synchronized stack sweep over the sorted level-file stream.
//!
//! The sorted stream visits cells in depth-first order of the hierarchy.
//! The sweep maintains a stack of *open* cells — exactly the ancestors of
//! the current cell — and joins each arriving cell against itself and the
//! stack. Correctness rests on the size-separation invariant: a cube
//! assigned to cell `c` lies entirely inside `c`, and grid cells of the
//! hierarchy are either nested or disjoint, so two intersecting cubes must
//! sit in ancestor-related cells.
//!
//! Inside a cell pair, a plane sweep along dimension 0 (lists kept sorted
//! by the first coordinate) bounds the candidate set before the exact
//! metric runs.

use crate::assign::{prefix_bits_equal, RecordCodec, TAG_A};
use hdsj_core::{Dataset, Error, JoinKind, Result};
use hdsj_storage::RecordFile;

/// One open cell on the sweep stack: its identity and the points it holds,
/// kept sorted by dimension 0 for the plane sweep.
struct OpenCell {
    key: Vec<u8>,
    level: u8,
    /// `(x0, id)` of left-input points, sorted by `x0`.
    a: Vec<(f64, u32)>,
    /// Right-input points (two-set joins only).
    b: Vec<(f64, u32)>,
}

impl OpenCell {
    fn bytes(&self) -> u64 {
        (self.key.len() + (self.a.len() + self.b.len()) * 12 + 64) as u64
    }
}

/// Runs the sweep, passing every candidate pair to `offer` (serial runs
/// hand it the exact-metric refiner; parallel runs hand it a batching
/// channel). Returns the peak bytes held by the stack (the algorithm's
/// structure memory, experiment E5).
pub fn sweep(
    sorted: &RecordFile,
    codec: &RecordCodec,
    a: &Dataset,
    b: &Dataset,
    kind: JoinKind,
    eps: f64,
    offer: &mut dyn FnMut(u32, u32),
) -> Result<u64> {
    let dims = a.dims() as u32;
    let mut stack: Vec<OpenCell> = Vec::new();
    let mut current: Option<OpenCell> = None;
    let mut peak_bytes = 0u64;
    let mut cursor = sorted.cursor();

    while let Some(rec) = cursor.next()? {
        let key = codec.key_of(rec);
        let (level, tag, id) = codec.meta_of(rec);
        let same_cell = current
            .as_ref()
            .map(|c| c.level == level && c.key[..] == *key)
            .unwrap_or(false);
        if !same_cell {
            // Close out the previous cell: join it and push it.
            if let Some(cell) = current.take() {
                process_cell(cell, &mut stack, kind, eps, offer, &mut peak_bytes);
            }
            // Pop stack cells that are not ancestors of the new cell.
            while let Some(top) = stack.last() {
                let is_ancestor = top.level < level
                    && prefix_bits_equal(&top.key, key, dims * top.level as u32);
                if is_ancestor {
                    break;
                }
                stack.pop();
            }
            current = Some(OpenCell {
                key: key.to_vec(),
                level,
                a: Vec::new(),
                b: Vec::new(),
            });
        }
        let Some(cell) = current.as_mut() else {
            // The branch above opens a cell whenever none matched; an empty
            // slot here is a sweep logic bug, reported as a typed error.
            return Err(Error::Storage("sweep lost its open cell".into()));
        };
        let (ds, list) = if tag == TAG_A {
            (a, &mut cell.a)
        } else {
            (b, &mut cell.b)
        };
        list.push((ds.point(id)[0], id));
    }
    if let Some(cell) = current.take() {
        process_cell(cell, &mut stack, kind, eps, offer, &mut peak_bytes);
    }
    Ok(peak_bytes)
}

/// Joins a freshly completed cell against itself and the open ancestors,
/// then pushes it.
fn process_cell(
    mut cell: OpenCell,
    stack: &mut Vec<OpenCell>,
    kind: JoinKind,
    eps: f64,
    offer: &mut dyn FnMut(u32, u32),
    peak_bytes: &mut u64,
) {
    // total_cmp gives a total order even on NaN coordinates (datasets
    // reject them, but the sweep must not be able to panic on bad data).
    cell.a
        .sort_unstable_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
    cell.b
        .sort_unstable_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));

    match kind {
        JoinKind::SelfJoin => {
            sweep_within(&cell.a, eps, offer);
            // allow(hdsj::lifecycle_poll): ancestor stack depth ≤ curve
            // depth (20); the cursor feeding cells polls per page.
            for anc in stack.iter() {
                sweep_pair(&cell.a, &anc.a, eps, offer);
            }
        }
        JoinKind::TwoSets => {
            sweep_pair(&cell.a, &cell.b, eps, offer);
            // allow(hdsj::lifecycle_poll): ancestor stack depth ≤ curve
            // depth, see the self-join arm.
            for anc in stack.iter() {
                // Left points of the new cell × right points of ancestors,
                // and vice versa; orientation is always (a-id, b-id).
                sweep_pair(&cell.a, &anc.b, eps, offer);
                sweep_pair(&anc.a, &cell.b, eps, offer);
            }
        }
    }

    stack.push(cell);
    let bytes: u64 = stack.iter().map(|c| c.bytes()).sum();
    *peak_bytes = (*peak_bytes).max(bytes);
}

/// Unordered pairs within one sorted list whose `x0` differ by at most ε.
fn sweep_within(xs: &[(f64, u32)], eps: f64, offer: &mut dyn FnMut(u32, u32)) {
    // allow(hdsj::lifecycle_poll): ε-window scan inside one cell; the
    // cursor that fills cells polls on every page fetch.
    for (idx, &(x0, i)) in xs.iter().enumerate() {
        for &(y0, j) in &xs[idx + 1..] {
            if y0 - x0 > eps {
                break;
            }
            offer(i, j);
        }
    }
}

/// Cross pairs of two sorted lists whose `x0` differ by at most ε.
fn sweep_pair(xs: &[(f64, u32)], ys: &[(f64, u32)], eps: f64, offer: &mut dyn FnMut(u32, u32)) {
    let mut start = 0usize;
    // allow(hdsj::lifecycle_poll): ε-window scan across two cells' points;
    // bounded by per-cell occupancy, polled at the cursor feeding them.
    for &(x0, i) in xs {
        while start < ys.len() && ys[start].0 < x0 - eps {
            start += 1;
        }
        for &(y0, j) in &ys[start..] {
            if y0 - x0 > eps {
                break;
            }
            offer(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_within_respects_window() {
        let xs = vec![(0.1, 0), (0.15, 1), (0.5, 2), (0.52, 3)];
        let mut pairs = Vec::new();
        sweep_within(&xs, 0.1, &mut |i, j| pairs.push((i, j)));
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn sweep_pair_windows_both_sides() {
        let xs = vec![(0.1, 0), (0.5, 1)];
        let ys = vec![(0.05, 10), (0.18, 11), (0.45, 12), (0.9, 13)];
        let mut pairs = Vec::new();
        sweep_pair(&xs, &ys, 0.1, &mut |i, j| pairs.push((i, j)));
        assert_eq!(pairs, vec![(0, 10), (0, 11), (1, 12)]);
    }

    #[test]
    fn sweep_pair_empty_lists() {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        sweep_pair(&[], &[(0.5, 1)], 0.1, &mut |i, j| pairs.push((i, j)));
        sweep_pair(&[(0.5, 1)], &[], 0.1, &mut |i, j| pairs.push((i, j)));
        assert!(pairs.is_empty());
    }
}

//! Size-separation level assignment and the level-file record layout.

use hdsj_core::{Error, Result};
use hdsj_sfc::{grid, BitKey, Curve};

/// Tag byte marking entries of the left input.
pub const TAG_A: u8 = 0;
/// Tag byte marking entries of the right input.
pub const TAG_B: u8 = 1;

/// Fixed layout of one level-file record:
///
/// ```text
/// [ cell key, zero-padded to d·depth bits (big-endian) | level: u8 | tag: u8 | id: u32 LE ]
/// ```
///
/// Big-endian key bytes followed by the level byte mean the external sort's
/// `memcmp` prefix order *is* the `(padded key, level)` DFS order of the
/// cell hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct RecordCodec {
    key_bits: u32,
    key_bytes: usize,
}

impl RecordCodec {
    /// Codec for `dims`-dimensional keys at hierarchy depth `depth`.
    pub fn new(dims: usize, depth: u32) -> RecordCodec {
        let key_bits = dims as u32 * depth;
        RecordCodec {
            key_bits,
            key_bytes: BitKey::byte_len(key_bits),
        }
    }

    /// Total record length in bytes.
    pub fn record_len(&self) -> usize {
        self.key_bytes + 1 + 1 + 4
    }

    /// Prefix length the external sort compares: key bytes + level byte.
    pub fn sort_key_len(&self) -> usize {
        self.key_bytes + 1
    }

    /// Width of the padded keys in bits.
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Serializes one entry into `out` (which must be `record_len` long).
    pub fn encode(&self, key: &BitKey, level: u8, tag: u8, id: u32, out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.record_len());
        debug_assert_eq!(key.nbits(), self.key_bits);
        out[..self.key_bytes].copy_from_slice(&key.to_be_bytes());
        out[self.key_bytes] = level;
        out[self.key_bytes + 1] = tag;
        out[self.key_bytes + 2..].copy_from_slice(&id.to_le_bytes());
    }

    /// The key bytes of a record.
    pub fn key_of<'r>(&self, rec: &'r [u8]) -> &'r [u8] {
        &rec[..self.key_bytes]
    }

    /// The `(level, tag, id)` of a record.
    pub fn meta_of(&self, rec: &[u8]) -> (u8, u8, u32) {
        let level = rec[self.key_bytes];
        let tag = rec[self.key_bytes + 1];
        let mut id_bytes = [0u8; 4];
        id_bytes.copy_from_slice(&rec[self.key_bytes + 2..self.key_bytes + 6]);
        (level, tag, u32::from_le_bytes(id_bytes))
    }
}

/// Assigns ε-cubes to hierarchy levels and cell keys.
pub struct Assigner {
    dims: usize,
    depth: u32,
    /// Half cube side, inflated by one part in 10¹² so cubes whose true
    /// extent touches a cell boundary are conservatively classified as
    /// crossing it (extra candidates are refined away; lost candidates would
    /// be wrong answers).
    half: f64,
    curve: Curve,
    key_bits: u32,
    lo: Vec<u32>,
    hi: Vec<u32>,
    cell: Vec<u32>,
}

impl Assigner {
    /// Creates an assigner for the given geometry.
    pub fn new(dims: usize, depth: u32, eps: f64, curve: Curve) -> Result<Assigner> {
        if !(1..=20).contains(&depth) {
            return Err(Error::InvalidInput(format!("depth {depth} not in 1..=20")));
        }
        Ok(Assigner {
            dims,
            depth,
            half: eps / 2.0 * (1.0 + 1e-12),
            curve,
            key_bits: dims as u32 * depth,
            lo: vec![0; dims],
            hi: vec![0; dims],
            cell: vec![0; dims],
        })
    }

    /// The level and zero-padded cell key of the cube centred on `p`.
    ///
    /// Level = the finest grid at which the cube `[p−ε/2, p+ε/2]` crosses no
    /// cell boundary, i.e. the minimum over dimensions of the common prefix
    /// length of the quantized cube faces. The cell key is the curve index
    /// of the containing cell at that level, zero-extended to full depth.
    pub fn assign(&mut self, p: &[f64]) -> (BitKey, u8) {
        debug_assert_eq!(p.len(), self.dims);
        let mut level = self.depth;
        // allow(hdsj::lifecycle_poll): per-dimension loop over one point's
        // coordinates (d entries), bounded by the layout not the dataset.
        for (i, &x) in p.iter().enumerate() {
            self.lo[i] = grid::quantize(x - self.half, self.depth);
            self.hi[i] = grid::quantize(x + self.half, self.depth);
            let common = grid::common_prefix_len(self.lo[i], self.hi[i], self.depth);
            level = level.min(common);
        }
        self.finish_assign(level)
    }

    /// Size-separation assignment of an arbitrary box `[lo, hi]` — the
    /// original S3J case, where every rectangle has its own extent (used by
    /// the rectangle intersection join in [`crate::s3j`]).
    pub fn assign_faces(&mut self, lo_face: &[f64], hi_face: &[f64]) -> (BitKey, u8) {
        debug_assert_eq!(lo_face.len(), self.dims);
        debug_assert_eq!(hi_face.len(), self.dims);
        let mut level = self.depth;
        for i in 0..self.dims {
            self.lo[i] = grid::quantize(lo_face[i], self.depth);
            self.hi[i] = grid::quantize(hi_face[i], self.depth);
            let common = grid::common_prefix_len(self.lo[i], self.hi[i], self.depth);
            level = level.min(common);
        }
        self.finish_assign(level)
    }

    fn finish_assign(&mut self, level: u32) -> (BitKey, u8) {
        if level == 0 {
            return (BitKey::zero(self.key_bits), 0);
        }
        for i in 0..self.dims {
            self.cell[i] = self.lo[i] >> (self.depth - level);
        }
        let key = self.curve.key(&self.cell, level);
        (key.zero_extended(self.key_bits), level as u8)
    }
}

/// Bit-prefix equality on big-endian key bytes: do `a` and `b` agree on
/// their first `nbits` bits? (The sweep's ancestor test.)
pub fn prefix_bits_equal(a: &[u8], b: &[u8], nbits: u32) -> bool {
    let full = (nbits / 8) as usize;
    if a[..full] != b[..full] {
        return false;
    }
    let rem = nbits % 8;
    if rem == 0 {
        return true;
    }
    let mask = 0xffu8 << (8 - rem);
    (a[full] & mask) == (b[full] & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        let codec = RecordCodec::new(3, 5);
        let key = BitKey::interleave(&[1, 2, 3], 5);
        let mut rec = vec![0u8; codec.record_len()];
        codec.encode(&key, 4, TAG_B, 123456, &mut rec);
        assert_eq!(codec.key_of(&rec), key.to_be_bytes());
        assert_eq!(codec.meta_of(&rec), (4, TAG_B, 123456));
        assert_eq!(codec.sort_key_len(), codec.record_len() - 5);
    }

    #[test]
    fn central_cube_lands_in_level_zero() {
        // A cube spanning the centre of the space crosses the level-1
        // boundary in dimension 0.
        let mut a = Assigner::new(2, 8, 0.1, Curve::Hilbert).unwrap();
        let (key, level) = a.assign(&[0.5, 0.25]);
        assert_eq!(level, 0);
        assert_eq!(key, BitKey::zero(16));
    }

    #[test]
    fn interior_cube_lands_in_deep_level() {
        // eps = 2^-6: the cube has side 1/64 and sits well inside a cell of
        // side 1/32 ⇒ level 5 at least.
        let mut a = Assigner::new(2, 8, 1.0 / 64.0, Curve::Hilbert).unwrap();
        let (_, level) = a.assign(&[0.2603, 0.7309]);
        assert!(level >= 5, "level {level}");
    }

    #[test]
    fn level_is_min_over_dimensions() {
        let eps = 0.01;
        let mut a = Assigner::new(2, 8, eps, Curve::Hilbert).unwrap();
        // Dimension 1 crosses the 0.5 boundary; dimension 0 is interior.
        let (_, level) = a.assign(&[0.26, 0.5]);
        assert_eq!(level, 0);
        // Crossing the 0.25 boundary (level-2 grid line) allows level 1.
        let (_, level) = a.assign(&[0.26, 0.25]);
        assert_eq!(level, 1);
    }

    #[test]
    fn boundary_touching_cube_is_conservative() {
        // Cube hi face exactly on a cell boundary: must be classified as
        // crossing (coarser level), so touching pairs are never missed.
        let eps = 0.25;
        let mut a = Assigner::new(1, 4, eps, Curve::Hilbert).unwrap();
        // p = 0.375: cube = [0.25, 0.5] — hi touches the level-1 boundary.
        let (_, level) = a.assign(&[0.375]);
        assert_eq!(level, 0);
    }

    #[test]
    fn cube_sticking_out_of_the_domain_is_clamped() {
        let mut a = Assigner::new(2, 8, 0.2, Curve::Hilbert).unwrap();
        let (_, level) = a.assign(&[0.01, 0.99]);
        // Faces clamp to the domain; assignment must not panic and the cube
        // stays in a valid level.
        assert!(level <= 8);
    }

    #[test]
    fn assigned_key_is_prefix_of_any_interior_point_key() {
        // The invariant the sweep relies on: the cell key (padded) agrees
        // with the full-depth key of the cube's centre on d·level bits.
        let depth = 8u32;
        let dims = 3usize;
        let mut a = Assigner::new(dims, depth, 0.03, Curve::Hilbert).unwrap();
        let mut cell = vec![0u32; dims];
        for seed in 0..50u32 {
            let p: Vec<f64> = (0..dims)
                .map(|i| {
                    let v = (seed.wrapping_mul(2654435761).wrapping_add(i as u32 * 97) % 1000)
                        as f64
                        / 1000.0;
                    v.clamp(0.0, 0.999)
                })
                .collect();
            let (key, level) = a.assign(&p);
            if level == 0 {
                continue;
            }
            grid::quantize_point(&p, depth, &mut cell);
            let full_key = Curve::Hilbert.key(&cell, depth);
            assert!(
                prefix_bits_equal(
                    &key.to_be_bytes(),
                    &full_key.to_be_bytes(),
                    dims as u32 * level as u32
                ),
                "point {p:?} level {level}"
            );
        }
    }

    #[test]
    fn prefix_bits_equal_handles_partial_bytes() {
        let a = [0b1010_1100u8, 0xff];
        let b = [0b1010_1111u8, 0x00];
        assert!(prefix_bits_equal(&a, &b, 4));
        assert!(prefix_bits_equal(&a, &b, 6));
        assert!(!prefix_bits_equal(&a, &b, 7));
        assert!(!prefix_bits_equal(&a, &b, 16));
        assert!(prefix_bits_equal(&a, &a, 16));
        assert!(prefix_bits_equal(&a, &b, 0));
    }

    #[test]
    fn depth_bounds_validated() {
        assert!(Assigner::new(2, 0, 0.1, Curve::Hilbert).is_err());
        assert!(Assigner::new(2, 21, 0.1, Curve::Hilbert).is_err());
        assert!(Assigner::new(2, 20, 0.1, Curve::Hilbert).is_ok());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn assignment_invariants(
            dims in 1usize..6,
            depth in 1u32..10,
            eps in 0.001f64..0.9,
            seed in any::<u64>(),
        ) {
            let mut a = Assigner::new(dims, depth, eps, Curve::Hilbert).unwrap();
            // Deterministic pseudo-random point from the seed.
            let p: Vec<f64> = (0..dims)
                .map(|i| {
                    let h = seed.rotate_left(i as u32 * 9).wrapping_mul(0x9e3779b97f4a7c15);
                    ((h >> 11) as f64 / (1u64 << 53) as f64).min(1.0 - 1e-12)
                })
                .collect();
            let (key, level) = a.assign(&p);
            // Level within bounds, key width fixed.
            prop_assert!(u32::from(level) <= depth);
            prop_assert_eq!(key.nbits(), dims as u32 * depth);
            // Cube-containment: the cell identified by the key contains the
            // (clamped) cube faces in every dimension.
            if level > 0 {
                let cell = key.prefix(dims as u32 * u32::from(level))
                    .deinterleave(dims, u32::from(level));
                // Undo the Hilbert transform by recomputing from the point.
                let mut expected_cell = vec![0u32; dims];
                for (i, &x) in p.iter().enumerate() {
                    expected_cell[i] =
                        grid::quantize(x - eps / 2.0 * (1.0 + 1e-12), depth) >> (depth - u32::from(level));
                }
                // The curve permutes cell coordinates into key space; decode
                // via the curve for comparison.
                let expected_key = Curve::Hilbert.key(&expected_cell, u32::from(level));
                prop_assert_eq!(
                    key.prefix(dims as u32 * u32::from(level)),
                    expected_key
                );
                let _ = cell;
            }
            // Determinism.
            let (key2, level2) = a.assign(&p);
            prop_assert_eq!(key, key2);
            prop_assert_eq!(level, level2);
        }

        #[test]
        fn close_points_share_ancestor_cells(
            dims in 1usize..5,
            eps in 0.01f64..0.4,
            seed in any::<u64>(),
        ) {
            // Two points within L_inf eps: their assigned cells must be
            // ancestor-related (the sweep's correctness condition).
            let depth = 8u32;
            let mut a = Assigner::new(dims, depth, eps, Curve::Hilbert).unwrap();
            let p: Vec<f64> = (0..dims)
                .map(|i| {
                    let h = seed.rotate_left(i as u32 * 7).wrapping_mul(0x2545F4914F6CDD1D);
                    0.1 + 0.8 * ((h >> 11) as f64 / (1u64 << 53) as f64)
                })
                .collect();
            let q: Vec<f64> = p
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let h = seed.rotate_right(i as u32 * 5).wrapping_mul(0x9E3779B97F4A7C15);
                    let jitter = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0 * eps;
                    (x + jitter).clamp(0.0, 1.0 - 1e-12)
                })
                .collect();
            // Only meaningful when they really are within eps.
            let linf = p.iter().zip(&q).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            prop_assume!(linf <= eps);
            let (kp, lp) = a.assign(&p);
            let (kq, lq) = a.assign(&q);
            let (shallow_key, shallow_level, deep_key) =
                if lp <= lq { (&kp, lp, &kq) } else { (&kq, lq, &kp) };
            prop_assert!(
                prefix_bits_equal(
                    &shallow_key.to_be_bytes(),
                    &deep_key.to_be_bytes(),
                    dims as u32 * u32::from(shallow_level)
                ),
                "cells not ancestor-related: {lp} vs {lq}"
            );
        }
    }
}

//! Parallel candidate refinement.
//!
//! The sweep itself is inherently sequential (it follows the sorted stream),
//! but at large ε·d the dominant cost is evaluating the exact metric on the
//! candidate pairs it emits (see experiment E8). This module fans that
//! refinement out on [`hdsj_exec::Pool::producer_consumers`]: the sweep
//! batches candidates into a bounded crossbeam channel and worker threads
//! verify them through the vectorized `Metric::within_batch` kernel, each
//! accumulating its own result list. Results are identical to the serial
//! path (order of sink delivery aside), which the tests pin down.
//!
//! When a tracer is installed, each worker reports a `refine-worker` span
//! (child of the sweep span) carrying its pair/candidate counts and the
//! time it spent blocked on the channel, and increments the shared
//! `msj.refine.pairs` / `msj.refine.candidates` counters; the sweep side
//! reports its channel-send backpressure as `msj.sweep.send_wait_us`.
//!
//! Panic containment lives in the pool: a panicking metric (or the chaos
//! failpoint) becomes a typed `Error::Internal` carrying the panic message,
//! never an unwind across the join.

use crate::assign::RecordCodec;
use crate::sweep;
use hdsj_core::obs::{names, Span};
use hdsj_core::{Dataset, Error, JoinKind, JoinSpec, Metric, Result, SoABlock, Tracer};
use hdsj_exec::Pool;
use hdsj_storage::RecordFile;
use std::time::{Duration, Instant};

/// Candidate pairs per channel message: large enough to amortize channel
/// overhead, small enough to keep workers busy.
const BATCH: usize = 4096;

/// Smallest per-probe candidate group worth transposing into a worker's
/// SoA scratch block for the across-candidate kernel (mirrors the
/// refiner's batch threshold).
const SOA_GROUP_MIN: usize = 16;

/// `(peak_stack_bytes, matched_pairs, candidate_count)` from a refined
/// sweep.
pub type RefineOutcome = (u64, Vec<(u32, u32)>, u64);

/// Runs the sweep with `threads` refinement workers. `parent` is the span
/// the per-worker spans nest under (the caller's sweep phase).
/// `fail_worker` is a chaos-test failpoint: the worker with that index
/// panics on startup, exercising the containment path.
#[allow(clippy::too_many_arguments)]
pub fn sweep_and_refine(
    sorted: &RecordFile,
    codec: &RecordCodec,
    a: &Dataset,
    b: &Dataset,
    kind: JoinKind,
    spec: &JoinSpec,
    threads: usize,
    tracer: &Tracer,
    parent: &Span,
    fail_worker: Option<usize>,
) -> Result<RefineOutcome> {
    let threads = threads.max(1);
    let eps = spec.eps;
    let metric = spec.metric.normalized();
    let traced = tracer.enabled();
    let pairs_counter = tracer.counter(names::MSJ_REFINE_PAIRS);
    let candidates_counter = tracer.counter(names::MSJ_REFINE_CANDIDATES);
    let batch_hist = tracer.histogram(names::MSJ_REFINE_BATCH);
    let pool = Pool::with_tracer(threads, tracer.clone());

    let (tx, rx) = crossbeam::channel::bounded::<Vec<(u32, u32)>>(threads * 4);
    let consumers: Vec<_> = (0..threads)
        .map(|_| {
            let rx = rx.clone();
            let pairs_counter = pairs_counter.clone();
            let candidates_counter = candidates_counter.clone();
            let batch_hist = batch_hist.clone();
            move |worker_idx: usize| -> Result<(Vec<(u32, u32)>, u64)> {
                let mut span = parent.child("refine-worker");
                if fail_worker == Some(worker_idx) {
                    // The panic is contained by the pool and surfaces as a
                    // typed error at the join() site.
                    // allow(hdsj::no_panic): deliberate chaos failpoint.
                    panic!("injected refine-worker failure (worker {worker_idx})");
                }
                let mut pairs: Vec<(u32, u32)> = Vec::new();
                let mut candidates = 0u64;
                let mut wait = Duration::ZERO;
                let mut js: Vec<u32> = Vec::new();
                let mut hits: Vec<u32> = Vec::new();
                let mut soa = SoABlock::empty(b.dims());
                loop {
                    // allow(hdsj::determinism): channel-wait timing feeds the
                    // worker's obs span only; join results never read it.
                    let blocked = Instant::now();
                    let batch = match rx.recv() {
                        Ok(batch) => {
                            wait += blocked.elapsed();
                            batch
                        }
                        Err(_) => {
                            wait += blocked.elapsed();
                            break;
                        }
                    };
                    if traced {
                        batch_hist.record(batch.len() as u64);
                    }
                    let mut batch_pairs = 0u64;
                    let mut batch_candidates = 0u64;
                    // Group consecutive candidates that share a probe so each
                    // group runs through one monomorphized kernel dispatch.
                    // Kernel distances are bit-symmetric under argument swap,
                    // so evaluating in the sweep's orientation matches the
                    // serial canonical-order evaluation exactly.
                    let mut k = 0;
                    while k < batch.len() {
                        let i = batch[k].0;
                        js.clear();
                        while k < batch.len() && batch[k].0 == i {
                            let j = batch[k].1;
                            k += 1;
                            if kind == JoinKind::SelfJoin && j == i {
                                continue;
                            }
                            js.push(j);
                        }
                        batch_candidates += js.len() as u64;
                        hits.clear();
                        // Large probe groups take the across-candidate SoA
                        // kernel (bit-exact with within_batch, so results
                        // are unchanged); small ones skip the transpose.
                        if js.len() >= SOA_GROUP_MIN
                            && hdsj_core::simd::level() > hdsj_core::simd::Level::Scalar
                            && !matches!(metric, Metric::Lp(_))
                        {
                            soa.gather_into(b, &js);
                            metric.within_block(a.point(i), &soa, 0..js.len(), eps, &mut hits);
                        } else {
                            metric.within_batch(a.point(i), b, &js, eps, &mut hits);
                        }
                        for &j in &hits {
                            let pair = match kind {
                                JoinKind::TwoSets => (i, j),
                                JoinKind::SelfJoin => (i.min(j), i.max(j)),
                            };
                            pairs.push(pair);
                            batch_pairs += 1;
                        }
                    }
                    candidates += batch_candidates;
                    if traced {
                        // Per-batch shared increments: concurrent with the
                        // other workers, summing exactly to the totals.
                        candidates_counter.add(batch_candidates);
                        pairs_counter.add(batch_pairs);
                    }
                }
                if traced {
                    span.attr_u64("worker", worker_idx as u64);
                    span.attr_u64("pairs", pairs.len() as u64);
                    span.attr_u64("candidates", candidates);
                    span.attr_u64("wait_us", wait.as_micros() as u64);
                }
                Ok((pairs, candidates))
            }
        })
        .collect();
    // The consumers own their receiver clones; dropping the original lets
    // worker exit terminate the producer's sends.
    drop(rx);

    // The sweep runs on the calling thread, batching candidates outward.
    // The channel send only fails if all workers died, which only happens
    // on panic — the pool's error priority (worker error first) then
    // reports the panic rather than this generic error.
    let producer = move || -> Result<u64> {
        let mut batch: Vec<(u32, u32)> = Vec::with_capacity(BATCH);
        let mut send_error = false;
        let mut send_wait = Duration::ZERO;
        let peak = {
            let mut offer = |i: u32, j: u32| {
                if send_error {
                    return;
                }
                batch.push((i, j));
                if batch.len() == BATCH {
                    // allow(hdsj::determinism): backpressure timing feeds the
                    // producer's obs attrs only; join results never read it.
                    let blocked = Instant::now();
                    if tx
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                        .is_err()
                    {
                        send_error = true;
                    }
                    send_wait += blocked.elapsed();
                }
            };
            sweep::sweep(sorted, codec, a, b, kind, eps, &mut offer)?
        };
        if !batch.is_empty() {
            let _ = tx.send(batch);
        }
        drop(tx);
        if traced {
            tracer
                .counter(names::MSJ_SWEEP_SEND_WAIT_US)
                .add(send_wait.as_micros() as u64);
        }
        if send_error {
            return Err(Error::Storage("refinement channel closed early".into()));
        }
        Ok(peak)
    };

    let (peak, outcomes) = pool.producer_consumers(consumers, producer)?;
    let mut all_pairs = Vec::new();
    let mut candidates = 0u64;
    // allow(hdsj::lifecycle_poll): one outcome per consumer, bounded by
    // the worker count; the consumers polled while refining.
    for (pairs, c) in outcomes {
        all_pairs.extend(pairs);
        candidates += c;
    }
    Ok((peak, all_pairs, candidates))
}

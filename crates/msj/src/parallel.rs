//! Parallel candidate refinement.
//!
//! The sweep itself is inherently sequential (it follows the sorted stream),
//! but at large ε·d the dominant cost is evaluating the exact metric on the
//! candidate pairs it emits (see experiment E8). This module fans that
//! refinement out: the sweep batches candidates into a bounded crossbeam
//! channel and worker threads verify them against the metric, each
//! accumulating its own result list. Results are identical to the serial
//! path (order of sink delivery aside), which the tests pin down.
//!
//! When a tracer is installed, each worker reports a `refine-worker` span
//! (child of the sweep span) carrying its pair/candidate counts and the
//! time it spent blocked on the channel, and increments the shared
//! `msj.refine.pairs` / `msj.refine.candidates` counters; the sweep side
//! reports its channel-send backpressure as `msj.sweep.send_wait_us`.

use crate::assign::RecordCodec;
use crate::sweep;
use hdsj_core::obs::Span;
use hdsj_core::{Dataset, Error, JoinKind, JoinSpec, Result, Tracer};
use hdsj_storage::RecordFile;
use std::time::{Duration, Instant};

/// Candidate pairs per channel message: large enough to amortize channel
/// overhead, small enough to keep workers busy.
const BATCH: usize = 4096;

/// `(peak_stack_bytes, matched_pairs, candidate_count)` from a refined
/// sweep.
pub type RefineOutcome = (u64, Vec<(u32, u32)>, u64);

/// Best-effort human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the sweep with `threads` refinement workers. `parent` is the span
/// the per-worker spans nest under (the caller's sweep phase).
/// `fail_worker` is a chaos-test failpoint: the worker with that index
/// panics on startup, exercising the containment path.
#[allow(clippy::too_many_arguments)]
pub fn sweep_and_refine(
    sorted: &RecordFile,
    codec: &RecordCodec,
    a: &Dataset,
    b: &Dataset,
    kind: JoinKind,
    spec: &JoinSpec,
    threads: usize,
    tracer: &Tracer,
    parent: &Span,
    fail_worker: Option<usize>,
) -> Result<RefineOutcome> {
    let threads = threads.max(1);
    let eps = spec.eps;
    let metric = spec.metric;
    let traced = tracer.enabled();
    let pairs_counter = tracer.counter("msj.refine.pairs");
    let candidates_counter = tracer.counter("msj.refine.candidates");

    let scope_result = crossbeam::thread::scope(|s| -> Result<RefineOutcome> {
        let (tx, rx) = crossbeam::channel::bounded::<Vec<(u32, u32)>>(threads * 4);
        let mut workers = Vec::with_capacity(threads);
        for worker_idx in 0..threads {
            let rx = rx.clone();
            let pairs_counter = pairs_counter.clone();
            let candidates_counter = candidates_counter.clone();
            workers.push(s.spawn(move |_| {
                let mut span = parent.child("refine-worker");
                // Panic containment: a panicking metric (or the chaos
                // failpoint) must not unwind across the scope and abort the
                // whole join — it becomes a typed error at the join() site.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if fail_worker == Some(worker_idx) {
                        // The panic is contained by the catch_unwind above
                        // and surfaces as a typed error at the join() site.
                        // allow(hdsj::no_panic): deliberate chaos failpoint.
                        panic!("injected refine-worker failure (worker {worker_idx})");
                    }
                    let mut pairs: Vec<(u32, u32)> = Vec::new();
                    let mut candidates = 0u64;
                    let mut wait = Duration::ZERO;
                    loop {
                        let blocked = Instant::now();
                        let batch = match rx.recv() {
                            Ok(batch) => {
                                wait += blocked.elapsed();
                                batch
                            }
                            Err(_) => {
                                wait += blocked.elapsed();
                                break;
                            }
                        };
                        let mut batch_pairs = 0u64;
                        let mut batch_candidates = 0u64;
                        for (i, j) in batch {
                            let (i, j) = match kind {
                                JoinKind::TwoSets => (i, j),
                                JoinKind::SelfJoin => {
                                    if i == j {
                                        continue;
                                    }
                                    (i.min(j), i.max(j))
                                }
                            };
                            batch_candidates += 1;
                            if metric.within(a.point(i), b.point(j), eps) {
                                pairs.push((i, j));
                                batch_pairs += 1;
                            }
                        }
                        candidates += batch_candidates;
                        if traced {
                            // Per-batch shared increments: concurrent with
                            // the other workers, summing exactly to the
                            // totals.
                            candidates_counter.add(batch_candidates);
                            pairs_counter.add(batch_pairs);
                        }
                    }
                    (pairs, candidates, wait)
                }));
                match outcome {
                    Ok((pairs, candidates, wait)) => {
                        if traced {
                            span.attr_u64("worker", worker_idx as u64);
                            span.attr_u64("pairs", pairs.len() as u64);
                            span.attr_u64("candidates", candidates);
                            span.attr_u64("wait_us", wait.as_micros() as u64);
                        }
                        Ok((pairs, candidates))
                    }
                    Err(payload) => Err(panic_message(payload.as_ref())),
                }
            }));
        }
        drop(rx);

        // The sweep runs on this thread, batching candidates outward. The
        // channel send only fails if all workers died, which only happens
        // on panic — propagate as a storage error rather than unwinding.
        let mut batch: Vec<(u32, u32)> = Vec::with_capacity(BATCH);
        let mut send_error = false;
        let mut send_wait = Duration::ZERO;
        let peak = {
            let mut offer = |i: u32, j: u32| {
                if send_error {
                    return;
                }
                batch.push((i, j));
                if batch.len() == BATCH {
                    let blocked = Instant::now();
                    if tx
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                        .is_err()
                    {
                        send_error = true;
                    }
                    send_wait += blocked.elapsed();
                }
            };
            sweep::sweep(sorted, codec, a, b, kind, eps, &mut offer)?
        };
        if !batch.is_empty() {
            let _ = tx.send(batch);
        }
        drop(tx);
        if traced {
            tracer
                .counter("msj.sweep.send_wait_us")
                .add(send_wait.as_micros() as u64);
        }

        let mut all_pairs = Vec::new();
        let mut candidates = 0u64;
        let mut worker_panic: Option<String> = None;
        for w in workers {
            match w.join() {
                Ok(Ok((pairs, c))) => {
                    all_pairs.extend(pairs);
                    candidates += c;
                }
                Ok(Err(msg)) => {
                    worker_panic.get_or_insert(msg);
                }
                // catch_unwind should have caught everything; if a panic
                // still escaped (e.g. in the span machinery), contain it
                // here too.
                Err(_) => {
                    worker_panic.get_or_insert_with(|| "unknown worker panic".into());
                }
            }
        }
        // A dead worker explains the closed channel, so it wins over the
        // generic send error.
        if let Some(msg) = worker_panic {
            return Err(Error::Storage(format!("refine worker panicked: {msg}")));
        }
        if send_error {
            return Err(Error::Storage("refinement channel closed early".into()));
        }
        Ok((peak, all_pairs, candidates))
    });
    scope_result.map_err(|_| Error::Storage("refinement scope panicked".into()))?
}

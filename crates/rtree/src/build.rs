//! R-tree construction: Hilbert packing, generalized STR, and dynamic
//! inserts with quadratic splits.

use crate::node::{inner_capacity, leaf_capacity, InnerEntry, LeafEntry, Node};
use hdsj_core::{Dataset, Error, Rect, Result};
use hdsj_sfc::{grid, hilbert};
use hdsj_storage::{PageId, StorageEngine};

/// How an R-tree is built.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildStrategy {
    /// Sort points by Hilbert value, pack leaves and upper levels in order
    /// (the default; best build time and good node quality).
    HilbertPack,
    /// Generalized Sort-Tile-Recursive packing.
    Str,
    /// One-at-a-time inserts with minimum-enlargement descent and Guttman
    /// quadratic splits — the classic dynamic R-tree.
    DynamicInsert,
}

/// Bits per dimension of the Hilbert keys used for ordering.
const ORDER_BITS: u32 = 16;

/// Resolution-ordering of `ds` along the Hilbert curve.
pub fn hilbert_order(ds: &Dataset) -> Vec<u32> {
    let dims = ds.dims();
    let mut enc = hilbert::HilbertEncoder::new(dims, ORDER_BITS);
    let mut cell = vec![0u32; dims];
    let mut keyed: Vec<(hdsj_sfc::BitKey, u32)> = ds
        .iter()
        .map(|(i, p)| {
            grid::quantize_point(p, ORDER_BITS, &mut cell);
            (enc.encode(&cell), i)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Generalized Sort-Tile-Recursive ordering: recursively sorts on each
/// dimension and tiles into equal slabs so the final chunks of `leaf_fill`
/// points become spatially compact leaves.
pub fn str_order(ds: &Dataset, leaf_fill: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..ds.len() as u32).collect();
    let dims = ds.dims();
    fn rec(ds: &Dataset, ids: &mut [u32], dim: usize, dims: usize, leaf_fill: usize) {
        if ids.len() <= leaf_fill || dim >= dims {
            return;
        }
        ids.sort_unstable_by(|&a, &b| {
            ds.point(a)[dim]
                .total_cmp(&ds.point(b)[dim])
                .then(a.cmp(&b))
        });
        let leaves_needed = ids.len().div_ceil(leaf_fill);
        let remaining = (dims - dim) as f64;
        let slabs = (leaves_needed as f64).powf(1.0 / remaining).ceil() as usize;
        let slab_size = ids.len().div_ceil(slabs.max(1));
        // allow(hdsj::lifecycle_poll): STR bulk-load partitioning runs
        // before the query lifecycle; slabs form the tile grid, not data.
        for chunk in ids.chunks_mut(slab_size.max(1)) {
            rec(ds, chunk, dim + 1, dims, leaf_fill);
        }
    }
    rec(ds, &mut ids, 0, dims, leaf_fill);
    ids
}

/// Packs a tree bottom-up from a precomputed point order. Returns
/// `(root page, height)`.
pub fn pack(
    engine: &StorageEngine,
    ds: &Dataset,
    order: &[u32],
    fill: f64,
) -> Result<(PageId, u32)> {
    let dims = ds.dims();
    let leaf_fill = fill_count(leaf_capacity(dims), fill, dims)?;
    let inner_fill = fill_count(inner_capacity(dims), fill, dims)?;

    // Leaf level.
    let mut level: Vec<(PageId, Rect)> = Vec::new();
    if order.is_empty() {
        // Degenerate tree: a single empty leaf as root.
        let page = engine.alloc()?;
        Node::Leaf(Vec::new()).write_to(&mut page.write(), dims)?;
        return Ok((page.id(), 1));
    }
    for chunk in order.chunks(leaf_fill) {
        let entries: Vec<LeafEntry> = chunk
            .iter()
            .map(|&i| LeafEntry {
                id: i,
                coords: ds.point(i).to_vec(),
            })
            .collect();
        let node = Node::Leaf(entries);
        let mbr = node.mbr(dims);
        let page = engine.alloc()?;
        node.write_to(&mut page.write(), dims)?;
        level.push((page.id(), mbr));
    }

    // Upper levels.
    let mut height = 1;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(inner_fill));
        for chunk in level.chunks(inner_fill) {
            let entries: Vec<InnerEntry> = chunk
                .iter()
                .map(|(pid, mbr)| InnerEntry {
                    child: *pid,
                    mbr: mbr.clone(),
                })
                .collect();
            let node = Node::Inner(entries);
            let mbr = node.mbr(dims);
            let page = engine.alloc()?;
            node.write_to(&mut page.write(), dims)?;
            next.push((page.id(), mbr));
        }
        level = next;
        height += 1;
    }
    Ok((level[0].0, height))
}

fn fill_count(cap: usize, fill: f64, dims: usize) -> Result<usize> {
    if cap < 2 {
        return Err(Error::Unsupported(format!(
            "R-tree nodes cannot hold 2 entries at d={dims} with 8 KiB pages"
        )));
    }
    if !(0.0..=1.0).contains(&fill) {
        return Err(Error::InvalidInput(format!(
            "fill factor {fill} not in (0, 1]"
        )));
    }
    Ok(((cap as f64 * fill) as usize).clamp(2, cap))
}

// ---------------------------------------------------------------------------
// Dynamic inserts (Guttman).
// ---------------------------------------------------------------------------

/// Mutable build state for dynamic inserts.
pub struct DynamicTree {
    engine: StorageEngine,
    dims: usize,
    root: PageId,
    height: u32,
}

impl DynamicTree {
    /// An empty tree (single empty leaf).
    pub fn new(engine: &StorageEngine, dims: usize) -> Result<DynamicTree> {
        if inner_capacity(dims) < 2 || leaf_capacity(dims) < 2 {
            return Err(Error::Unsupported(format!(
                "R-tree nodes cannot hold 2 entries at d={dims} with 8 KiB pages"
            )));
        }
        let page = engine.alloc()?;
        Node::Leaf(Vec::new()).write_to(&mut page.write(), dims)?;
        Ok(DynamicTree {
            engine: engine.clone(),
            dims,
            root: page.id(),
            height: 1,
        })
    }

    /// Root page and height, for handing to [`crate::RTree`].
    pub fn finish(self) -> (PageId, u32) {
        (self.root, self.height)
    }

    /// Inserts one point.
    pub fn insert(&mut self, id: u32, coords: &[f64]) -> Result<()> {
        debug_assert_eq!(coords.len(), self.dims);
        // Descend to a leaf, remembering (page, chosen child index).
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut pid = self.root;
        loop {
            let node = Node::load(&self.engine, pid, self.dims)?;
            match node {
                Node::Leaf(mut entries) => {
                    entries.push(LeafEntry {
                        id,
                        coords: coords.to_vec(),
                    });
                    if entries.len() <= leaf_capacity(self.dims) {
                        Node::Leaf(entries).store(&self.engine, pid, self.dims)?;
                        self.grow_path(&path, coords)?;
                        return Ok(());
                    }
                    // Overflow: split and propagate.
                    let (a, b) = split_leaf(entries, leaf_capacity(self.dims));
                    let node_a = Node::Leaf(a);
                    let node_b = Node::Leaf(b);
                    let mbr_a = node_a.mbr(self.dims);
                    let mbr_b = node_b.mbr(self.dims);
                    node_a.store(&self.engine, pid, self.dims)?;
                    let new_page = self.engine.alloc()?;
                    node_b.write_to(&mut new_page.write(), self.dims)?;
                    let new_pid = new_page.id();
                    drop(new_page);
                    return self.propagate_split(path, pid, mbr_a, new_pid, mbr_b);
                }
                Node::Inner(entries) => {
                    let point_rect = Rect::point(coords);
                    let choice = choose_subtree(&entries, &point_rect);
                    path.push((pid, choice));
                    pid = entries[choice].child;
                }
            }
        }
    }

    /// Grows the MBRs along a (non-splitting) insertion path.
    fn grow_path(&self, path: &[(PageId, usize)], coords: &[f64]) -> Result<()> {
        for &(pid, idx) in path {
            let mut node = Node::load(&self.engine, pid, self.dims)?;
            if let Node::Inner(entries) = &mut node {
                entries[idx].mbr.grow_point(coords);
            }
            node.store(&self.engine, pid, self.dims)?;
        }
        Ok(())
    }

    /// Replaces the parent entry of `old_pid` with `old_mbr` and inserts a
    /// sibling `(new_pid, new_mbr)`, splitting upward as needed.
    fn propagate_split(
        &mut self,
        mut path: Vec<(PageId, usize)>,
        old_pid: PageId,
        old_mbr: Rect,
        new_pid: PageId,
        new_mbr: Rect,
    ) -> Result<()> {
        let mut pending = Some((old_pid, old_mbr, new_pid, new_mbr));
        while let Some((old_pid, old_mbr, new_pid, new_mbr)) = pending.take() {
            match path.pop() {
                None => {
                    // Split reached the root: grow the tree by one level.
                    let root_node = Node::Inner(vec![
                        InnerEntry {
                            child: old_pid,
                            mbr: old_mbr,
                        },
                        InnerEntry {
                            child: new_pid,
                            mbr: new_mbr,
                        },
                    ]);
                    let page = self.engine.alloc()?;
                    root_node.write_to(&mut page.write(), self.dims)?;
                    self.root = page.id();
                    self.height += 1;
                }
                Some((parent_pid, idx)) => {
                    let mut entries = match Node::load(&self.engine, parent_pid, self.dims)? {
                        Node::Inner(entries) => entries,
                        Node::Leaf(_) => {
                            return Err(Error::Storage("leaf on inner path".into()))
                        }
                    };
                    entries[idx].mbr = old_mbr.clone();
                    debug_assert_eq!(entries[idx].child, old_pid);
                    entries.push(InnerEntry {
                        child: new_pid,
                        mbr: new_mbr.clone(),
                    });
                    if entries.len() <= inner_capacity(self.dims) {
                        Node::Inner(entries).store(&self.engine, parent_pid, self.dims)?;
                        // MBRs above must cover both split halves: the
                        // freshly inserted point (not yet reflected in any
                        // ancestor) may sit in either group.
                        for &(pid, i) in &path {
                            let mut node = Node::load(&self.engine, pid, self.dims)?;
                            if let Node::Inner(es) = &mut node {
                                es[i].mbr.grow_rect(&old_mbr);
                                es[i].mbr.grow_rect(&new_mbr);
                            }
                            node.store(&self.engine, pid, self.dims)?;
                        }
                    } else {
                        let (a, b) = split_inner(entries, inner_capacity(self.dims));
                        let node_a = Node::Inner(a);
                        let node_b = Node::Inner(b);
                        let mbr_a = node_a.mbr(self.dims);
                        let mbr_b = node_b.mbr(self.dims);
                        node_a.store(&self.engine, parent_pid, self.dims)?;
                        let new_page = self.engine.alloc()?;
                        node_b.write_to(&mut new_page.write(), self.dims)?;
                        let sibling = new_page.id();
                        drop(new_page);
                        pending = Some((parent_pid, mbr_a, sibling, mbr_b));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Minimum-enlargement subtree choice (ties: smaller volume, then first).
fn choose_subtree(entries: &[InnerEntry], rect: &Rect) -> usize {
    let mut best = 0;
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    // allow(hdsj::lifecycle_poll): per-node entries, bounded by the page
    // fan-out.
    for (i, e) in entries.iter().enumerate() {
        let enl = e.mbr.enlargement(rect);
        let vol = e.mbr.volume();
        if enl < best_enl || (enl == best_enl && vol < best_vol) {
            best = i;
            best_enl = enl;
            best_vol = vol;
        }
    }
    best
}

fn split_leaf(entries: Vec<LeafEntry>, cap: usize) -> (Vec<LeafEntry>, Vec<LeafEntry>) {
    let rects: Vec<Rect> = entries.iter().map(|e| Rect::point(&e.coords)).collect();
    let mask = quadratic_partition(&rects, cap);
    partition_by(entries, &mask)
}

fn split_inner(entries: Vec<InnerEntry>, cap: usize) -> (Vec<InnerEntry>, Vec<InnerEntry>) {
    let rects: Vec<Rect> = entries.iter().map(|e| e.mbr.clone()).collect();
    let mask = quadratic_partition(&rects, cap);
    partition_by(entries, &mask)
}

fn partition_by<T>(entries: Vec<T>, group_a: &[bool]) -> (Vec<T>, Vec<T>) {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (e, &in_a) in entries.into_iter().zip(group_a) {
        if in_a {
            a.push(e);
        } else {
            b.push(e);
        }
    }
    (a, b)
}

/// Guttman's quadratic split: returns a boolean membership mask for group A.
/// Guarantees both groups hold at least `min_fill = ⌈0.4·cap⌉.min(half)`
/// entries.
fn quadratic_partition(rects: &[Rect], cap: usize) -> Vec<bool> {
    let n = rects.len();
    let min_fill = ((cap * 2) / 5).clamp(1, n / 2);
    // Seeds: the pair wasting the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let mut u = rects[i].clone();
            u.grow_rect(&rects[j]);
            let waste = u.volume() - rects[i].volume() - rects[j].volume();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut in_a = vec![false; n];
    let mut assigned = vec![false; n];
    in_a[seed_a] = true;
    assigned[seed_a] = true;
    assigned[seed_b] = true;
    let mut mbr_a = rects[seed_a].clone();
    let mut mbr_b = rects[seed_b].clone();
    let mut count_a = 1usize;
    let mut count_b = 1usize;

    for _ in 0..n.saturating_sub(2) {
        let remaining: Vec<usize> = (0..n).filter(|&i| !assigned[i]).collect();
        if remaining.is_empty() {
            break;
        }
        // Under-filled group takes everything left if it must.
        if count_a + remaining.len() <= min_fill {
            for i in remaining {
                in_a[i] = true;
                assigned[i] = true;
            }
            break;
        }
        if count_b + remaining.len() <= min_fill {
            for i in remaining {
                assigned[i] = true;
            }
            break;
        }
        // Pick the entry with the strongest preference.
        let mut pick = remaining[0];
        let mut d_a = mbr_a.enlargement(&rects[pick]);
        let mut d_b = mbr_b.enlargement(&rects[pick]);
        let mut best_pref = (d_a - d_b).abs();
        for &i in &remaining[1..] {
            let da = mbr_a.enlargement(&rects[i]);
            let db = mbr_b.enlargement(&rects[i]);
            let pref = (da - db).abs();
            if pref > best_pref {
                best_pref = pref;
                pick = i;
                d_a = da;
                d_b = db;
            }
        }
        let to_a = match d_a.total_cmp(&d_b) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => count_a <= count_b,
        };
        assigned[pick] = true;
        if to_a {
            in_a[pick] = true;
            mbr_a.grow_rect(&rects[pick]);
            count_a += 1;
        } else {
            mbr_b.grow_rect(&rects[pick]);
            count_b += 1;
        }
    }
    in_a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_order_is_a_permutation() {
        let ds = hdsj_data::uniform(4, 200, 1).unwrap();
        let order = hilbert_order(&ds);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn hilbert_order_groups_nearby_points() {
        // Two tight clusters far apart: the order must not interleave them.
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![0.1 + i as f64 * 1e-4, 0.1]);
        }
        for i in 0..20 {
            rows.push(vec![0.9 + i as f64 * 1e-4, 0.9]);
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let order = hilbert_order(&ds);
        let first_cluster: Vec<bool> = order.iter().map(|&i| i < 20).collect();
        let transitions = first_cluster.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "clusters must be contiguous in the order");
    }

    #[test]
    fn str_order_is_a_permutation() {
        let ds = hdsj_data::uniform(3, 157, 2).unwrap();
        let order = str_order(&ds, 10);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..157u32).collect::<Vec<_>>());
    }

    #[test]
    fn str_chunks_are_spatially_tight_on_first_dim() {
        let ds = hdsj_data::uniform(2, 1000, 3).unwrap();
        let order = str_order(&ds, 50);
        // First slab's x-range must be well under the full extent.
        let first: Vec<f64> = order[..250].iter().map(|&i| ds.point(i)[0]).collect();
        let max = first.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max < 0.5, "first STR slab spans x up to {max}");
    }

    #[test]
    fn quadratic_partition_respects_min_fill() {
        let rects: Vec<Rect> = (0..20)
            .map(|i| Rect::point(&[i as f64 * 0.05, 0.5]))
            .collect();
        let mask = quadratic_partition(&rects, 20);
        let a = mask.iter().filter(|&&x| x).count();
        let b = mask.len() - a;
        let min_fill = (20 * 2) / 5;
        assert!(a >= min_fill.min(10) && b >= min_fill.min(10), "{a} vs {b}");
    }

    #[test]
    fn quadratic_partition_separates_two_clusters() {
        let mut rects = Vec::new();
        for i in 0..5 {
            rects.push(Rect::point(&[0.0 + i as f64 * 0.01, 0.0]));
        }
        for i in 0..5 {
            rects.push(Rect::point(&[1.0 + i as f64 * 0.01, 1.0]));
        }
        let mask = quadratic_partition(&rects, 10);
        let first_group = mask[0];
        assert!(mask[..5].iter().all(|&m| m == first_group));
        assert!(mask[5..].iter().all(|&m| m != first_group));
    }

    #[test]
    fn fill_count_bounds() {
        assert!(fill_count(1, 0.7, 64).is_err());
        assert!(fill_count(100, 1.5, 4).is_err());
        assert_eq!(fill_count(100, 0.7, 4).unwrap(), 70);
        assert_eq!(fill_count(3, 0.1, 4).unwrap(), 2, "clamped to minimum 2");
    }
}

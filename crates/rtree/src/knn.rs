//! Best-first k-nearest-neighbour search over the paged R-tree
//! (Hjaltason & Samet's incremental algorithm).
//!
//! Not part of the paper's join evaluation, but the natural companion
//! query: the same index that accelerates the ε-join answers "give me the k
//! closest points" by expanding nodes in order of their MBR mindist.

use crate::node::Node;
use crate::tree::RTree;
use hdsj_core::{Error, Rect, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One kNN result.
#[derive(Clone, Debug, PartialEq)]
pub struct Neighbour {
    /// Point id in the indexed dataset.
    pub id: u32,
    /// Euclidean distance to the query.
    pub dist: f64,
}

/// Priority-queue element: a node or a point, keyed by (squared) distance.
struct QueueItem {
    dist_sq: f64,
    payload: Payload,
}

enum Payload {
    NodePage(u64),
    Point(u32),
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance: reverse the comparison.
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}

impl RTree {
    /// The `k` nearest points to `query` under L2, ties broken by id order
    /// of heap extraction. Returns fewer than `k` when the tree is smaller.
    pub fn knn(&self, query: &[f64], k: usize) -> Result<Vec<Neighbour>> {
        if query.len() != self.dims() {
            return Err(Error::InvalidInput(format!(
                "query point has {} dims, tree has {}",
                query.len(),
                self.dims()
            )));
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let qrect = Rect::point(query);
        let mut heap = BinaryHeap::new();
        heap.push(QueueItem {
            dist_sq: 0.0,
            payload: Payload::NodePage(self.root()),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            match item.payload {
                Payload::Point(id) => {
                    out.push(Neighbour {
                        id,
                        dist: item.dist_sq.sqrt(),
                    });
                    if out.len() == k {
                        break;
                    }
                }
                Payload::NodePage(pid) => match Node::load(self.engine(), pid, self.dims())? {
                    Node::Leaf(entries) => {
                        for e in entries {
                            let d = qrect.mindist_l2_sq(&Rect::point(&e.coords));
                            heap.push(QueueItem {
                                dist_sq: d,
                                payload: Payload::Point(e.id),
                            });
                        }
                    }
                    Node::Inner(entries) => {
                        for e in entries {
                            heap.push(QueueItem {
                                dist_sq: qrect.mindist_l2_sq(&e.mbr),
                                payload: Payload::NodePage(e.child),
                            });
                        }
                    }
                },
            }
        }
        Ok(out)
    }
}

/// One result of a k-closest-pairs query.
#[derive(Clone, Debug, PartialEq)]
pub struct PairNeighbour {
    /// Point id in the left tree's dataset.
    pub i: u32,
    /// Point id in the right tree's dataset.
    pub j: u32,
    /// Euclidean distance between the points.
    pub dist: f64,
}

struct PairItem {
    dist_sq: f64,
    payload: PairPayload,
}

enum PairPayload {
    Nodes(u64, u64),
    Points(u32, u32),
}

impl PartialEq for PairItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for PairItem {}
impl PartialOrd for PairItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PairItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}

impl RTree {
    /// The `k` closest pairs between this tree and `other` (two-set
    /// variant), in ascending distance — the *distance join* companion of
    /// the ε-join: instead of a threshold, a result budget.
    ///
    /// Best-first search over node pairs ordered by MBR mindist: no node
    /// pair is expanded unless it could still contribute a top-k pair, the
    /// Hjaltason–Samet incremental-distance-join strategy.
    pub fn closest_pairs(&self, other: &RTree, k: usize) -> Result<Vec<PairNeighbour>> {
        if self.dims() != other.dims() {
            return Err(Error::InvalidInput(format!(
                "dimensionality mismatch: {} vs {}",
                self.dims(),
                other.dims()
            )));
        }
        self.closest_pairs_impl(other, k, false)
    }

    /// The `k` closest unordered pairs within this tree (`i < j`), in
    /// ascending distance.
    pub fn closest_pairs_self(&self, k: usize) -> Result<Vec<PairNeighbour>> {
        self.closest_pairs_impl(self, k, true)
    }

    fn closest_pairs_impl(
        &self,
        other: &RTree,
        k: usize,
        self_mode: bool,
    ) -> Result<Vec<PairNeighbour>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let mut heap = BinaryHeap::new();
        heap.push(PairItem {
            dist_sq: 0.0,
            payload: PairPayload::Nodes(self.root(), other.root()),
        });
        let mut out: Vec<PairNeighbour> = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            match item.payload {
                PairPayload::Points(i, j) => {
                    // Self-mode: the symmetric duplicate (j, i) also sits in
                    // the heap; keep only the canonical orientation.
                    if self_mode && i >= j {
                        continue;
                    }
                    out.push(PairNeighbour {
                        i,
                        j,
                        dist: item.dist_sq.sqrt(),
                    });
                    if out.len() == k {
                        break;
                    }
                }
                PairPayload::Nodes(pa, pb) => {
                    let na = Node::load(self.engine(), pa, self.dims())?;
                    let nb = Node::load(other.engine(), pb, other.dims())?;
                    match (&na, &nb) {
                        (Node::Leaf(ea), Node::Leaf(eb)) => {
                            for x in ea {
                                for y in eb {
                                    if self_mode && pa == pb && x.id >= y.id {
                                        continue;
                                    }
                                    let d = Rect::point(&x.coords)
                                        .mindist_l2_sq(&Rect::point(&y.coords));
                                    heap.push(PairItem {
                                        dist_sq: d,
                                        payload: PairPayload::Points(x.id, y.id),
                                    });
                                }
                            }
                        }
                        (Node::Inner(ea), Node::Inner(eb)) => {
                            for x in ea {
                                for y in eb {
                                    heap.push(PairItem {
                                        dist_sq: x.mbr.mindist_l2_sq(&y.mbr),
                                        payload: PairPayload::Nodes(x.child, y.child),
                                    });
                                }
                            }
                        }
                        (Node::Inner(ea), Node::Leaf(_)) => {
                            let mb = nb.mbr(other.dims());
                            for x in ea {
                                heap.push(PairItem {
                                    dist_sq: x.mbr.mindist_l2_sq(&mb),
                                    payload: PairPayload::Nodes(x.child, pb),
                                });
                            }
                        }
                        (Node::Leaf(_), Node::Inner(eb)) => {
                            let ma = na.mbr(self.dims());
                            for y in eb {
                                heap.push(PairItem {
                                    dist_sq: ma.mindist_l2_sq(&y.mbr),
                                    payload: PairPayload::Nodes(pa, y.child),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BuildStrategy;
    use hdsj_core::Dataset;
    use hdsj_storage::StorageEngine;

    fn brute_knn(ds: &Dataset, query: &[f64], k: usize) -> Vec<Neighbour> {
        let mut all: Vec<Neighbour> = ds
            .iter()
            .map(|(id, p)| Neighbour {
                id,
                dist: p
                    .iter()
                    .zip(query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt(),
            })
            .collect();
        all.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_linear_scan() {
        let ds = hdsj_data::uniform(4, 1_000, 55).unwrap();
        let eng = StorageEngine::in_memory(256);
        for strategy in [
            BuildStrategy::HilbertPack,
            BuildStrategy::Str,
            BuildStrategy::DynamicInsert,
        ] {
            let tree = RTree::build(&eng, &ds, strategy, 0.7).unwrap();
            for (qi, k) in [(3u32, 1usize), (77, 5), (500, 20)] {
                let query = ds.point(qi).to_vec();
                let got = tree.knn(&query, k).unwrap();
                let want = brute_knn(&ds, &query, k);
                assert_eq!(got.len(), k);
                // Distances must match exactly (ids may swap on ties).
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.dist - w.dist).abs() < 1e-12,
                        "{strategy:?} q={qi} k={k}: {g:?} vs {w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_of_indexed_point_finds_itself_first() {
        let ds = hdsj_data::uniform(6, 500, 56).unwrap();
        let eng = StorageEngine::in_memory(256);
        let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
        let got = tree.knn(ds.point(123), 1).unwrap();
        assert_eq!(got[0].id, 123);
        assert_eq!(got[0].dist, 0.0);
    }

    #[test]
    fn knn_edge_cases() {
        let ds = hdsj_data::uniform(3, 5, 57).unwrap();
        let eng = StorageEngine::in_memory(64);
        let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
        // k = 0.
        assert!(tree.knn(&[0.5, 0.5, 0.5], 0).unwrap().is_empty());
        // k larger than the dataset.
        assert_eq!(tree.knn(&[0.5, 0.5, 0.5], 50).unwrap().len(), 5);
        // Wrong dimensionality.
        assert!(tree.knn(&[0.5], 3).is_err());
        // Empty tree.
        let empty =
            RTree::build(&eng, &Dataset::new(3).unwrap(), BuildStrategy::Str, 0.7).unwrap();
        assert!(empty.knn(&[0.1, 0.2, 0.3], 4).unwrap().is_empty());
    }

    #[test]
    fn knn_results_are_sorted_by_distance() {
        let ds = hdsj_data::uniform(5, 800, 58).unwrap();
        let eng = StorageEngine::in_memory(256);
        let tree = RTree::build(&eng, &ds, BuildStrategy::Str, 0.7).unwrap();
        let got = tree.knn(&[0.3, 0.7, 0.5, 0.2, 0.9], 25).unwrap();
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}

#[cfg(test)]
mod closest_pair_tests {
    use super::*;
    use crate::build::BuildStrategy;
    use hdsj_storage::StorageEngine;

    fn brute_closest_self(ds: &hdsj_core::Dataset, k: usize) -> Vec<PairNeighbour> {
        let mut all = Vec::new();
        for i in 0..ds.len() as u32 {
            for j in i + 1..ds.len() as u32 {
                let dist = ds
                    .point(i)
                    .iter()
                    .zip(ds.point(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                all.push(PairNeighbour { i, j, dist });
            }
        }
        all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("finite"));
        all.truncate(k);
        all
    }

    #[test]
    fn self_closest_pairs_match_brute_force() {
        let ds = hdsj_data::uniform(4, 400, 91).unwrap();
        let eng = StorageEngine::in_memory(256);
        let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
        for k in [1usize, 5, 25] {
            let got = tree.closest_pairs_self(k).unwrap();
            let want = brute_closest_self(&ds, k);
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-12, "k={k}: {g:?} vs {w:?}");
            }
            // Canonical orientation, no duplicates.
            let mut seen = std::collections::HashSet::new();
            for p in &got {
                assert!(p.i < p.j);
                assert!(seen.insert((p.i, p.j)));
            }
        }
    }

    #[test]
    fn two_tree_closest_pairs_match_brute_force() {
        let a = hdsj_data::uniform(3, 250, 92).unwrap();
        let b = hdsj_data::uniform(3, 200, 93).unwrap();
        let eng = StorageEngine::in_memory(256);
        let ta = RTree::build(&eng, &a, BuildStrategy::Str, 0.7).unwrap();
        let tb = RTree::build(&eng, &b, BuildStrategy::DynamicInsert, 0.7).unwrap();
        let got = ta.closest_pairs(&tb, 10).unwrap();
        let mut all = Vec::new();
        for (i, pa) in a.iter() {
            for (j, pb) in b.iter() {
                let dist = pa
                    .iter()
                    .zip(pb)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                all.push((dist, i, j));
            }
        }
        all.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"));
        for (g, w) in got.iter().zip(&all[..10]) {
            assert!((g.dist - w.0).abs() < 1e-12, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn closest_pairs_edge_cases() {
        let ds = hdsj_data::uniform(2, 5, 94).unwrap();
        let eng = StorageEngine::in_memory(64);
        let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
        assert!(tree.closest_pairs_self(0).unwrap().is_empty());
        // k beyond all pairs: 5 points -> 10 pairs.
        assert_eq!(tree.closest_pairs_self(100).unwrap().len(), 10);
        // Dim mismatch.
        let other = hdsj_data::uniform(3, 5, 95).unwrap();
        let to = RTree::build(&eng, &other, BuildStrategy::HilbertPack, 0.7).unwrap();
        assert!(tree.closest_pairs(&to, 3).is_err());
        // Results ascend.
        let got = tree.closest_pairs_self(10).unwrap();
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}

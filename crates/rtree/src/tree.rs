//! The R-tree handle: construction dispatch, queries, and invariant checks.

use crate::build::{self, BuildStrategy, DynamicTree};
use crate::node::{leaf_capacity, Node};
use hdsj_core::{Dataset, Error, Rect, Result};
use hdsj_storage::{PageId, StorageEngine, PAGE_SIZE};

/// A disk-resident R-tree over one dataset.
pub struct RTree {
    engine: StorageEngine,
    root: PageId,
    height: u32,
    dims: usize,
    len: u64,
    pages: u64,
}

impl RTree {
    /// Builds a tree over `ds` with the given strategy and packing fill
    /// factor (ignored by [`BuildStrategy::DynamicInsert`]).
    pub fn build(
        engine: &StorageEngine,
        ds: &Dataset,
        strategy: BuildStrategy,
        fill: f64,
    ) -> Result<RTree> {
        let pages_before = engine.pool().num_pages();
        let dims = ds.dims();
        let (root, height) = match strategy {
            BuildStrategy::HilbertPack => {
                let order = build::hilbert_order(ds);
                build::pack(engine, ds, &order, fill)?
            }
            BuildStrategy::Str => {
                let leaf_fill = ((leaf_capacity(dims) as f64 * fill) as usize)
                    .clamp(2, leaf_capacity(dims));
                let order = build::str_order(ds, leaf_fill);
                build::pack(engine, ds, &order, fill)?
            }
            BuildStrategy::DynamicInsert => {
                let mut dyn_tree = DynamicTree::new(engine, dims)?;
                for (i, p) in ds.iter() {
                    dyn_tree.insert(i, p)?;
                }
                dyn_tree.finish()
            }
        };
        let pages = engine.pool().num_pages() - pages_before;
        Ok(RTree {
            engine: engine.clone(),
            root,
            height,
            dims,
            len: ds.len() as u64,
            pages,
        })
    }

    /// Root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages occupied by the tree.
    pub fn num_pages(&self) -> u64 {
        self.pages
    }

    /// Structure-resident bytes (pages × page size), the E5 metric.
    pub fn structure_bytes(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    /// The storage engine the tree lives on.
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Ids of all points within L∞ distance `eps` of `point` **before exact
    /// refinement** (the caller applies its metric) — the building block of
    /// index-based similarity search.
    pub fn linf_range(&self, point: &[f64], eps: f64) -> Result<Vec<u32>> {
        if point.len() != self.dims {
            return Err(Error::InvalidInput(format!(
                "query point has {} dims, tree has {}",
                point.len(),
                self.dims
            )));
        }
        let query = Rect::point(point);
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match Node::load(&self.engine, pid, self.dims)? {
                Node::Leaf(entries) => {
                    for e in entries {
                        if query.mindist_linf(&Rect::point(&e.coords)) <= eps {
                            out.push(e.id);
                        }
                    }
                }
                Node::Inner(entries) => {
                    for e in entries {
                        if query.mindist_linf(&e.mbr) <= eps {
                            stack.push(e.child);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Verifies the structural invariants, returning the number of points
    /// found. Used by the test suites.
    ///
    /// * every child's MBR is contained in its parent entry's MBR;
    /// * all leaves sit at the same depth (`height`);
    /// * every indexed id appears exactly once.
    pub fn check_invariants(&self) -> Result<u64> {
        let mut seen = std::collections::HashSet::new();
        let count = self.check_node(self.root, None, self.height, &mut seen)?;
        if count != self.len {
            return Err(Error::Storage(format!(
                "tree claims {} points but holds {count}",
                self.len
            )));
        }
        Ok(count)
    }

    fn check_node(
        &self,
        pid: PageId,
        parent_mbr: Option<&Rect>,
        levels_left: u32,
        seen: &mut std::collections::HashSet<u32>,
    ) -> Result<u64> {
        let node = Node::load(&self.engine, pid, self.dims)?;
        match node {
            Node::Leaf(entries) => {
                if levels_left != 1 {
                    return Err(Error::Storage(format!(
                        "leaf at wrong depth ({levels_left} levels left)"
                    )));
                }
                for e in &entries {
                    if let Some(p) = parent_mbr {
                        if !p.contains_point(&e.coords) {
                            return Err(Error::Storage(format!(
                                "point {} escapes its parent MBR",
                                e.id
                            )));
                        }
                    }
                    if !seen.insert(e.id) {
                        return Err(Error::Storage(format!("duplicate point id {}", e.id)));
                    }
                }
                Ok(entries.len() as u64)
            }
            Node::Inner(entries) => {
                if levels_left <= 1 {
                    return Err(Error::Storage("inner node at leaf depth".into()));
                }
                if entries.is_empty() {
                    return Err(Error::Storage("empty inner node".into()));
                }
                let mut total = 0;
                for e in &entries {
                    if let Some(p) = parent_mbr {
                        if !p.contains_rect(&e.mbr) {
                            return Err(Error::Storage("child MBR escapes parent".into()));
                        }
                    }
                    total += self.check_node(e.child, Some(&e.mbr), levels_left - 1, seen)?;
                }
                Ok(total)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> StorageEngine {
        StorageEngine::in_memory(512)
    }

    fn strategies() -> [BuildStrategy; 3] {
        [
            BuildStrategy::HilbertPack,
            BuildStrategy::Str,
            BuildStrategy::DynamicInsert,
        ]
    }

    #[test]
    fn all_strategies_build_valid_trees() {
        let ds = hdsj_data::uniform(4, 1500, 42).unwrap();
        for strategy in strategies() {
            let eng = engine();
            let tree = RTree::build(&eng, &ds, strategy, 0.7).unwrap();
            assert_eq!(tree.check_invariants().unwrap(), 1500, "{strategy:?}");
            assert!(
                tree.height() >= 2,
                "{strategy:?} must be more than a root leaf"
            );
            assert!(tree.num_pages() > 0);
            assert_eq!(tree.structure_bytes(), tree.num_pages() * PAGE_SIZE as u64);
        }
    }

    #[test]
    fn empty_and_tiny_datasets() {
        for strategy in strategies() {
            let eng = engine();
            let empty = Dataset::new(3).unwrap();
            let tree = RTree::build(&eng, &empty, strategy, 0.7).unwrap();
            assert_eq!(tree.check_invariants().unwrap(), 0);
            assert_eq!(tree.height(), 1);

            let one = Dataset::from_rows(&[vec![0.5, 0.5, 0.5]]).unwrap();
            let tree = RTree::build(&eng, &one, strategy, 0.7).unwrap();
            assert_eq!(tree.check_invariants().unwrap(), 1);
        }
    }

    #[test]
    fn high_dimensional_trees_still_work() {
        // d=64: single-digit fan-out, deep tree — the stress case.
        let ds = hdsj_data::uniform(64, 300, 9).unwrap();
        for strategy in strategies() {
            let eng = engine();
            let tree = RTree::build(&eng, &ds, strategy, 0.9).unwrap();
            assert_eq!(tree.check_invariants().unwrap(), 300, "{strategy:?}");
        }
    }

    #[test]
    fn linf_range_matches_linear_scan() {
        let ds = hdsj_data::uniform(3, 800, 5).unwrap();
        let eng = engine();
        let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
        let q = [0.4, 0.6, 0.5];
        let eps = 0.12;
        let mut want: Vec<u32> = ds
            .iter()
            .filter(|(_, p)| p.iter().zip(&q).all(|(a, b)| (a - b).abs() <= eps))
            .map(|(i, _)| i)
            .collect();
        let mut got = tree.linf_range(&q, eps).unwrap();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
    }

    #[test]
    fn linf_range_rejects_wrong_dims() {
        let ds = hdsj_data::uniform(3, 10, 5).unwrap();
        let eng = engine();
        let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
        assert!(tree.linf_range(&[0.5, 0.5], 0.1).is_err());
    }

    #[test]
    fn dynamic_inserts_in_adversarial_order() {
        // Sorted input is the classic worst case for dynamic R-trees.
        let mut rows: Vec<Vec<f64>> = (0..600)
            .map(|i| vec![i as f64 / 600.0, (i % 7) as f64 / 7.0])
            .collect();
        rows.reverse();
        let ds = Dataset::from_rows(&rows).unwrap();
        let eng = engine();
        let tree = RTree::build(&eng, &ds, BuildStrategy::DynamicInsert, 0.7).unwrap();
        assert_eq!(tree.check_invariants().unwrap(), 600);
    }

    #[test]
    fn packed_trees_use_fewer_pages_than_dynamic() {
        let ds = hdsj_data::uniform(8, 2000, 13).unwrap();
        let eng1 = engine();
        let packed = RTree::build(&eng1, &ds, BuildStrategy::HilbertPack, 0.9).unwrap();
        let eng2 = engine();
        let dynamic = RTree::build(&eng2, &ds, BuildStrategy::DynamicInsert, 0.9).unwrap();
        assert!(
            packed.num_pages() < dynamic.num_pages(),
            "packed {} vs dynamic {}",
            packed.num_pages(),
            dynamic.num_pages()
        );
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn dataset(max_points: usize) -> impl Strategy<Value = Dataset> {
        (1usize..=6, 0usize..max_points).prop_flat_map(|(dims, n)| {
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, dims), n..=n)
                .prop_map(move |rows| {
                    if rows.is_empty() {
                        Dataset::new(dims).unwrap()
                    } else {
                        Dataset::from_rows(&rows).unwrap()
                    }
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_trees_satisfy_invariants(
            ds in dataset(300),
            strategy_pick in 0usize..3,
            fill in 0.3f64..1.0,
        ) {
            let strategy = [
                BuildStrategy::HilbertPack,
                BuildStrategy::Str,
                BuildStrategy::DynamicInsert,
            ][strategy_pick];
            let eng = StorageEngine::in_memory(1024);
            let tree = RTree::build(&eng, &ds, strategy, fill).unwrap();
            prop_assert_eq!(tree.check_invariants().unwrap(), ds.len() as u64);
        }

        #[test]
        fn range_query_equals_scan_on_random_trees(
            ds in dataset(200),
            eps in 0.01f64..0.5,
            q_seed in 0u32..1000,
        ) {
            prop_assume!(!ds.is_empty());
            let eng = StorageEngine::in_memory(1024);
            let tree = RTree::build(&eng, &ds, BuildStrategy::HilbertPack, 0.7).unwrap();
            let q = ds.point(q_seed % ds.len() as u32).to_vec();
            let mut want: Vec<u32> = ds
                .iter()
                .filter(|(_, p)| p.iter().zip(&q).all(|(a, b)| (a - b).abs() <= eps))
                .map(|(i, _)| i)
                .collect();
            let mut got = tree.linf_range(&q, eps).unwrap();
            want.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(want, got);
        }
    }
}

//! On-page R-tree node layout and (de)serialization.
//!
//! ```text
//! page:  [ storage header | kind: u8 | pad: u8 | count: u16 | pad: u32 | entries... ]
//! leaf entry:   [ point_id: u32 | coords: d × f64 ]          (4 + 8d bytes)
//! inner entry:  [ child_pid: u64 | lo: d × f64 | hi: d × f64 ] (8 + 16d bytes)
//! ```
//!
//! The first `PAGE_HEADER` bytes belong to the storage layer (page
//! checksum); node data starts after them.
//!
//! Leaves store the full point coordinates, so a join reads points through
//! the buffer pool like a real disk-resident index — and so leaf fan-out
//! shrinks as `d` grows, which is precisely the high-dimensional R-tree
//! pathology the evaluation exhibits.

use hdsj_core::{Error, Rect, Result};
use hdsj_storage::{Page, PageId, StorageEngine, PAGE_HEADER, PAGE_SIZE};

/// Offset of the node's kind byte (just past the storage header).
const KIND_OFFSET: usize = PAGE_HEADER;
/// Offset of the node's entry count.
const COUNT_OFFSET: usize = PAGE_HEADER + 2;
/// Bytes before the first entry: storage header + node header.
const HEADER: usize = PAGE_HEADER + 8;
const KIND_LEAF: u8 = 1;
const KIND_INNER: u8 = 2;

/// Maximum entries of a leaf node for dimensionality `dims`.
pub fn leaf_capacity(dims: usize) -> usize {
    (PAGE_SIZE - HEADER) / (4 + 8 * dims)
}

/// Maximum entries of an inner node for dimensionality `dims`.
pub fn inner_capacity(dims: usize) -> usize {
    (PAGE_SIZE - HEADER) / (8 + 16 * dims)
}

/// An entry of a leaf node: a point and its dataset index.
#[derive(Clone, Debug, PartialEq)]
pub struct LeafEntry {
    /// Index of the point in its dataset.
    pub id: u32,
    /// The point's coordinates.
    pub coords: Vec<f64>,
}

/// An entry of an inner node: a child page and its MBR.
#[derive(Clone, Debug, PartialEq)]
pub struct InnerEntry {
    /// Page id of the child node.
    pub child: PageId,
    /// Minimum bounding rectangle of the child's subtree.
    pub mbr: Rect,
}

/// A deserialized node.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Leaf level: points.
    Leaf(Vec<LeafEntry>),
    /// Interior level: children with MBRs.
    Inner(Vec<InnerEntry>),
}

impl Node {
    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Inner(v) => v.len(),
        }
    }

    /// True when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The union MBR of all entries.
    pub fn mbr(&self, dims: usize) -> Rect {
        let mut mbr = Rect::empty(dims);
        match self {
            Node::Leaf(entries) => {
                // allow(hdsj::lifecycle_poll): per-node entries, bounded
                // by the page fan-out.
                for e in entries {
                    mbr.grow_point(&e.coords);
                }
            }
            Node::Inner(entries) => {
                // allow(hdsj::lifecycle_poll): per-node entries, bounded
                // by the page fan-out.
                for e in entries {
                    mbr.grow_rect(&e.mbr);
                }
            }
        }
        mbr
    }

    /// Serializes into `page`. Errors when the node exceeds the page.
    pub fn write_to(&self, page: &mut Page, dims: usize) -> Result<()> {
        let (kind, count, entry_size) = match self {
            Node::Leaf(v) => (KIND_LEAF, v.len(), 4 + 8 * dims),
            Node::Inner(v) => (KIND_INNER, v.len(), 8 + 16 * dims),
        };
        if HEADER + count * entry_size > PAGE_SIZE {
            return Err(Error::Storage(format!(
                "node of {count} entries overflows a page at d={dims}"
            )));
        }
        page.bytes_mut()[KIND_OFFSET] = kind;
        page.put_u16(COUNT_OFFSET, count as u16);
        let mut off = HEADER;
        match self {
            Node::Leaf(entries) => {
                // allow(hdsj::lifecycle_poll): serializes one page's
                // entries, bounded by the page fan-out.
                for e in entries {
                    debug_assert_eq!(e.coords.len(), dims);
                    page.put_u32(off, e.id);
                    off += 4;
                    for &c in &e.coords {
                        page.put_f64(off, c);
                        off += 8;
                    }
                }
            }
            Node::Inner(entries) => {
                // allow(hdsj::lifecycle_poll): serializes one page's
                // entries, bounded by the page fan-out.
                for e in entries {
                    debug_assert_eq!(e.mbr.dims(), dims);
                    page.put_u64(off, e.child);
                    off += 8;
                    for &c in e.mbr.lo() {
                        page.put_f64(off, c);
                        off += 8;
                    }
                    for &c in e.mbr.hi() {
                        page.put_f64(off, c);
                        off += 8;
                    }
                }
            }
        }
        Ok(())
    }

    /// Deserializes a node from `page`.
    pub fn read_from(page: &Page, dims: usize) -> Result<Node> {
        let kind = page.bytes()[KIND_OFFSET];
        let count = page.get_u16(COUNT_OFFSET) as usize;
        let mut off = HEADER;
        match kind {
            KIND_LEAF => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = page.get_u32(off);
                    off += 4;
                    let mut coords = Vec::with_capacity(dims);
                    for _ in 0..dims {
                        coords.push(page.get_f64(off));
                        off += 8;
                    }
                    entries.push(LeafEntry { id, coords });
                }
                Ok(Node::Leaf(entries))
            }
            KIND_INNER => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = page.get_u64(off);
                    off += 8;
                    let mut lo = Vec::with_capacity(dims);
                    for _ in 0..dims {
                        lo.push(page.get_f64(off));
                        off += 8;
                    }
                    let mut hi = Vec::with_capacity(dims);
                    for _ in 0..dims {
                        hi.push(page.get_f64(off));
                        off += 8;
                    }
                    entries.push(InnerEntry {
                        child,
                        mbr: Rect::new(lo, hi),
                    });
                }
                Ok(Node::Inner(entries))
            }
            other => Err(Error::Storage(format!(
                "page is not an R-tree node (kind {other})"
            ))),
        }
    }

    /// Convenience: fetches and deserializes the node at `pid`.
    pub fn load(engine: &StorageEngine, pid: PageId, dims: usize) -> Result<Node> {
        let guard = engine.fetch(pid)?;
        let node = Node::read_from(&guard.read(), dims)?;
        Ok(node)
    }

    /// Convenience: serializes the node into the page at `pid`.
    pub fn store(&self, engine: &StorageEngine, pid: PageId, dims: usize) -> Result<()> {
        let guard = engine.fetch(pid)?;
        let mut page = guard.write();
        self.write_to(&mut page, dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_shrink_with_dimensionality() {
        assert!(leaf_capacity(2) > leaf_capacity(16));
        assert!(inner_capacity(2) > inner_capacity(16));
        // The paper's high-d regime: single-digit fan-out at d=64.
        assert!(inner_capacity(64) < 10);
        assert!(inner_capacity(64) >= 2, "pages must still hold a node");
        assert!(leaf_capacity(64) >= 2);
    }

    #[test]
    fn leaf_round_trip() {
        let dims = 3;
        let entries: Vec<LeafEntry> = (0..5)
            .map(|i| LeafEntry {
                id: i,
                coords: vec![i as f64 * 0.1, 0.5, 1.0 - i as f64 * 0.01],
            })
            .collect();
        let node = Node::Leaf(entries);
        let mut page = Page::zeroed();
        node.write_to(&mut page, dims).unwrap();
        assert_eq!(Node::read_from(&page, dims).unwrap(), node);
    }

    #[test]
    fn inner_round_trip() {
        let dims = 2;
        let entries: Vec<InnerEntry> = (0..4)
            .map(|i| InnerEntry {
                child: 100 + i as u64,
                mbr: Rect::new(vec![0.1 * i as f64, 0.0], vec![0.1 * i as f64 + 0.2, 0.5]),
            })
            .collect();
        let node = Node::Inner(entries);
        let mut page = Page::zeroed();
        node.write_to(&mut page, dims).unwrap();
        assert_eq!(Node::read_from(&page, dims).unwrap(), node);
    }

    #[test]
    fn full_capacity_node_fits_exactly() {
        let dims = 7;
        let cap = leaf_capacity(dims);
        let entries: Vec<LeafEntry> = (0..cap as u32)
            .map(|i| LeafEntry {
                id: i,
                coords: vec![0.5; dims],
            })
            .collect();
        let node = Node::Leaf(entries);
        let mut page = Page::zeroed();
        node.write_to(&mut page, dims).unwrap();
        assert_eq!(Node::read_from(&page, dims).unwrap().len(), cap);
    }

    #[test]
    fn overflowing_node_is_rejected() {
        let dims = 7;
        let cap = leaf_capacity(dims);
        let entries: Vec<LeafEntry> = (0..=cap as u32)
            .map(|i| LeafEntry {
                id: i,
                coords: vec![0.5; dims],
            })
            .collect();
        let mut page = Page::zeroed();
        assert!(Node::Leaf(entries).write_to(&mut page, dims).is_err());
    }

    #[test]
    fn garbage_page_is_rejected() {
        let page = Page::zeroed(); // kind byte 0
        assert!(Node::read_from(&page, 2).is_err());
    }

    #[test]
    fn mbr_unions_entries() {
        let node = Node::Leaf(vec![
            LeafEntry {
                id: 0,
                coords: vec![0.2, 0.8],
            },
            LeafEntry {
                id: 1,
                coords: vec![0.6, 0.1],
            },
        ]);
        let mbr = node.mbr(2);
        assert_eq!(mbr.lo(), &[0.2, 0.1]);
        assert_eq!(mbr.hi(), &[0.6, 0.8]);
    }

    #[test]
    fn load_store_through_engine() {
        let engine = StorageEngine::in_memory(4);
        let pid = engine.alloc().unwrap().id();
        let node = Node::Leaf(vec![LeafEntry {
            id: 9,
            coords: vec![0.25, 0.75],
        }]);
        node.store(&engine, pid, 2).unwrap();
        assert_eq!(Node::load(&engine, pid, 2).unwrap(), node);
    }
}

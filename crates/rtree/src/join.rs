//! RSJ — the synchronized R-tree spatial join of Brinkhoff, Kriegel and
//! Seeger, adapted to ε-similarity joins.
//!
//! Both inputs are indexed **as part of the join** (the paper charges index
//! construction to the join, because a similarity-join user rarely has
//! pre-built indexes lying around). The traversal descends both trees in
//! lock-step, pruning every node pair whose MBRs are further than ε apart in
//! L∞ (safe for all supported metrics, whose ε-balls the L∞ cube contains),
//! and plane-sweeps leaf pairs along dimension 0 before handing candidates
//! to the exact-metric refiner.

use crate::build::BuildStrategy;
use crate::node::Node;
use crate::tree::RTree;
use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, Error, IoCounters, JoinKind, JoinSpec, JoinStats,
    LifecycleCtx, PairSink, Rect, Refiner, Result, SimilarityJoin, Tracer,
};
use hdsj_storage::{PageId, StorageEngine};

/// Node visits between lifecycle polls during the synchronized traversal.
const POLL_STRIDE: usize = 256;

/// R-tree spatial join (build-and-join).
#[derive(Clone)]
pub struct RsjJoin {
    /// How the on-the-fly trees are bulk loaded / built.
    pub strategy: BuildStrategy,
    /// Packing fill factor.
    pub fill: f64,
    /// Buffer-pool frames of the owned engine (when none is supplied).
    pub pool_pages: usize,
    engine: Option<StorageEngine>,
    /// Per-query lifecycle context, polled at phase boundaries, every
    /// [`POLL_STRIDE`] node visits, and (via the engine) on every page op.
    lifecycle: Option<LifecycleCtx>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl Default for RsjJoin {
    fn default() -> RsjJoin {
        RsjJoin {
            strategy: BuildStrategy::HilbertPack,
            fill: 0.7,
            pool_pages: 1024,
            engine: None,
            lifecycle: None,
            tracer: Tracer::disabled(),
        }
    }
}

impl RsjJoin {
    /// Runs on an externally supplied storage engine (for the buffer-size
    /// experiments); otherwise each join creates a fresh in-memory engine.
    pub fn with_engine(engine: StorageEngine) -> RsjJoin {
        RsjJoin {
            engine: Some(engine),
            ..RsjJoin::default()
        }
    }

    /// Same, with an explicit build strategy.
    pub fn with_strategy(strategy: BuildStrategy) -> RsjJoin {
        RsjJoin {
            strategy,
            ..RsjJoin::default()
        }
    }

    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        validate_inputs(a, b, spec)?;
        let engine = match &self.engine {
            Some(e) => e.clone(),
            None => StorageEngine::in_memory(self.pool_pages),
        };
        if let Some(lc) = &self.lifecycle {
            engine.set_lifecycle(lc.clone());
        }
        let result = self.run_inner(&engine, a, b, kind, spec, sink);
        engine.clear_lifecycle();
        result
    }

    fn run_inner(
        &self,
        engine: &StorageEngine,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let io_before = engine.io_counters();
        let mut phases = Vec::new();

        let mut root = self.tracer.span("rsj.join");
        root.attr_str("algo", "RSJ");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", a.dims() as u64);
        root.attr_f64("eps", spec.eps);

        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let build = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "build",
            hdsj_core::obs::PhaseClass::Io,
            hdsj_core::obs::names::RSJ_PHASE_BUILD_NS,
        );
        let tree_a = RTree::build(engine, a, self.strategy, self.fill)?;
        let tree_b = match kind {
            JoinKind::SelfJoin => None,
            JoinKind::TwoSets => Some(RTree::build(engine, b, self.strategy, self.fill)?),
        };
        let structure_bytes = tree_a.structure_bytes()
            + tree_b.as_ref().map(|t| t.structure_bytes()).unwrap_or(0);
        build.finish(&mut phases);

        let join = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "join",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::RSJ_PHASE_JOIN_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut refiner = Refiner::new(a, b, kind, spec, sink);
        {
            let mut traversal = Traversal {
                engine,
                dims: a.dims(),
                eps: spec.eps,
                refiner: &mut refiner,
                lifecycle: self.lifecycle.as_ref(),
                visits: 0,
            };
            match (&kind, &tree_b) {
                (JoinKind::SelfJoin, _) => traversal.self_pairs(tree_a.root())?,
                (JoinKind::TwoSets, Some(tb)) => {
                    traversal.cross_pairs(tree_a.root(), tb.root())?
                }
                (JoinKind::TwoSets, None) => {
                    return Err(Error::Internal(
                        "two-set join reached traversal without tree b".into(),
                    ))
                }
            }
        }
        let mut stats = refiner.finish(JoinStats::default());
        join.finish(&mut phases);

        stats.phases = phases;
        stats.structure_bytes = structure_bytes;
        let io_after = engine.io_counters();
        stats.io = IoCounters::diff(&io_after, &io_before);
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("rsj.candidates").add(stats.candidates);
            self.tracer.counter("rsj.results").add(stats.results);
            stats.io.record_counters(&self.tracer, "pool");
            engine.pool().stats().record_latency_metrics(&self.tracer);
        }
        root.finish();
        Ok(stats)
    }
}

struct Traversal<'a, 'r> {
    engine: &'a StorageEngine,
    dims: usize,
    eps: f64,
    refiner: &'r mut Refiner<'a>,
    lifecycle: Option<&'r LifecycleCtx>,
    visits: usize,
}

impl Traversal<'_, '_> {
    /// Polls the lifecycle context every [`POLL_STRIDE`] node visits so
    /// cancellation or a deadline stops the traversal mid-descent.
    fn maybe_poll(&mut self) -> Result<()> {
        if self.visits.is_multiple_of(POLL_STRIDE) {
            if let Some(lc) = self.lifecycle {
                lc.poll()?;
            }
        }
        self.visits += 1;
        Ok(())
    }

    /// Unordered pairs within one subtree (self-join).
    fn self_pairs(&mut self, pid: PageId) -> Result<()> {
        self.maybe_poll()?;
        match Node::load(self.engine, pid, self.dims)? {
            Node::Leaf(mut entries) => {
                sort_by_dim0(&mut entries);
                for (x, e) in entries.iter().enumerate() {
                    for f in &entries[x + 1..] {
                        if f.coords[0] - e.coords[0] > self.eps {
                            break;
                        }
                        if linf_within(&e.coords, &f.coords, self.eps) {
                            self.refiner.offer(e.id, f.id);
                        }
                    }
                }
            }
            Node::Inner(entries) => {
                for (i, e) in entries.iter().enumerate() {
                    self.self_pairs(e.child)?;
                    for f in &entries[i + 1..] {
                        if e.mbr.mindist_linf(&f.mbr) <= self.eps {
                            self.cross_pairs(e.child, f.child)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Pairs across two distinct subtrees (of the same tree or of two
    /// trees; the refiner knows which reporting convention applies).
    fn cross_pairs(&mut self, pa: PageId, pb: PageId) -> Result<()> {
        self.maybe_poll()?;
        let na = Node::load(self.engine, pa, self.dims)?;
        let nb = Node::load(self.engine, pb, self.dims)?;
        match (na, nb) {
            (Node::Leaf(mut ea), Node::Leaf(mut eb)) => {
                sort_by_dim0(&mut ea);
                sort_by_dim0(&mut eb);
                let mut start = 0usize;
                for e in &ea {
                    while start < eb.len() && eb[start].coords[0] < e.coords[0] - self.eps {
                        start += 1;
                    }
                    for f in &eb[start..] {
                        if f.coords[0] - e.coords[0] > self.eps {
                            break;
                        }
                        if linf_within(&e.coords, &f.coords, self.eps) {
                            self.refiner.offer(e.id, f.id);
                        }
                    }
                }
            }
            (Node::Inner(ea), Node::Inner(eb)) => {
                for e in &ea {
                    for f in &eb {
                        if e.mbr.mindist_linf(&f.mbr) <= self.eps {
                            self.cross_pairs(e.child, f.child)?;
                        }
                    }
                }
            }
            (Node::Inner(ea), nb @ Node::Leaf(_)) => {
                // Height mismatch: descend the taller side against the leaf.
                let leaf_mbr = nb.mbr(self.dims);
                for e in &ea {
                    if e.mbr.mindist_linf(&leaf_mbr) <= self.eps {
                        self.cross_pairs(e.child, pb)?;
                    }
                }
            }
            (na @ Node::Leaf(_), Node::Inner(eb)) => {
                let leaf_mbr = na.mbr(self.dims);
                for f in &eb {
                    if leaf_mbr.mindist_linf(&f.mbr) <= self.eps {
                        self.cross_pairs(pa, f.child)?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn sort_by_dim0(entries: &mut [crate::node::LeafEntry]) {
    entries.sort_unstable_by(|a, b| a.coords[0].total_cmp(&b.coords[0]).then(a.id.cmp(&b.id)));
}

fn linf_within(a: &[f64], b: &[f64], eps: f64) -> bool {
    Rect::point(a).mindist_linf(&Rect::point(b)) <= eps
}

impl SimilarityJoin for RsjJoin {
    fn name(&self) -> &'static str {
        "RSJ"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_bruteforce::BruteForce;
    use hdsj_core::{verify, Metric, VecSink};

    fn compare_with_bf(a: &Dataset, b: Option<&Dataset>, spec: &JoinSpec, rsj: &mut RsjJoin) {
        let mut want = VecSink::default();
        let mut got = VecSink::default();
        let mut bf = BruteForce::default();
        match b {
            None => {
                bf.self_join(a, spec, &mut want).unwrap();
                rsj.self_join(a, spec, &mut got).unwrap();
            }
            Some(b) => {
                bf.join(a, b, spec, &mut want).unwrap();
                rsj.join(a, b, spec, &mut got).unwrap();
            }
        }
        verify::assert_same_results("RSJ", &want.pairs, &got.pairs);
    }

    #[test]
    fn matches_brute_force_for_every_build_strategy() {
        let ds = hdsj_data::uniform(4, 500, 11).unwrap();
        for strategy in [
            BuildStrategy::HilbertPack,
            BuildStrategy::Str,
            BuildStrategy::DynamicInsert,
        ] {
            let mut rsj = RsjJoin::with_strategy(strategy);
            compare_with_bf(&ds, None, &JoinSpec::new(0.2, Metric::L2), &mut rsj);
        }
    }

    #[test]
    fn matches_brute_force_on_two_set_join() {
        let a = hdsj_data::uniform(6, 400, 21).unwrap();
        let b = hdsj_data::uniform(6, 350, 22).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(4.0)] {
            compare_with_bf(
                &a,
                Some(&b),
                &JoinSpec::new(0.3, metric),
                &mut RsjJoin::default(),
            );
        }
    }

    #[test]
    fn matches_brute_force_in_high_dimensions() {
        let ds = hdsj_data::uniform(32, 200, 31).unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(0.8, Metric::L2),
            &mut RsjJoin::default(),
        );
    }

    #[test]
    fn matches_brute_force_on_clustered_data() {
        let ds = hdsj_data::gaussian_clusters(
            5,
            600,
            hdsj_data::ClusterSpec {
                clusters: 8,
                sigma: 0.02,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(0.04, Metric::L2),
            &mut RsjJoin::default(),
        );
    }

    #[test]
    fn two_set_join_with_different_tree_heights() {
        // 5 points vs 3000 points: tree heights differ, exercising the
        // mixed leaf/inner traversal arms.
        let a = hdsj_data::uniform(3, 5, 1).unwrap();
        let b = hdsj_data::uniform(3, 3000, 2).unwrap();
        compare_with_bf(
            &a,
            Some(&b),
            &JoinSpec::new(0.15, Metric::L2),
            &mut RsjJoin::default(),
        );
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new(4).unwrap();
        let some = hdsj_data::uniform(4, 50, 1).unwrap();
        let mut sink = VecSink::default();
        let stats = RsjJoin::default()
            .join(&empty, &some, &JoinSpec::l2(0.2), &mut sink)
            .unwrap();
        assert_eq!(stats.results, 0);
        let stats = RsjJoin::default()
            .self_join(&empty, &JoinSpec::l2(0.2), &mut sink)
            .unwrap();
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn reports_structure_bytes_and_io() {
        let ds = hdsj_data::uniform(8, 2000, 5).unwrap();
        let mut sink = VecSink::default();
        // Tiny pool: the trees cannot stay resident, so the join must do
        // real (counted) page reads.
        let engine = StorageEngine::in_memory(16);
        let mut rsj = RsjJoin::with_engine(engine);
        let stats = rsj.self_join(&ds, &JoinSpec::l2(0.1), &mut sink).unwrap();
        assert!(stats.structure_bytes > 0);
        assert!(stats.io.allocs > 0, "tree pages were allocated");
        assert!(
            stats.io.reads > 0,
            "traversal should fault pages in a 16-frame pool"
        );
        assert!(stats.phase("build").is_some() && stats.phase("join").is_some());
    }

    #[test]
    fn candidate_counts_are_bounded_by_quadratic() {
        let ds = hdsj_data::uniform(4, 400, 77).unwrap();
        let mut sink = VecSink::default();
        let stats = RsjJoin::default()
            .self_join(&ds, &JoinSpec::l2(0.05), &mut sink)
            .unwrap();
        let quad = 400u64 * 399 / 2;
        assert!(
            stats.candidates < quad / 4,
            "filter should prune: {}",
            stats.candidates
        );
        assert_eq!(stats.results as usize, sink.pairs.len());
    }
}

//! # hdsj-rtree — paged R-trees and the RSJ spatial join
//!
//! The R-tree baseline of the paper's evaluation: trees are built **on the
//! fly** as part of the join (their construction cost and I/O belong to the
//! join, exactly as the paper charges them), stored in 8 KiB pages of the
//! `hdsj-storage` engine so every node visit is a measured page access.
//!
//! * [`node`] — the on-page node layout. Fan-out is `(page − header) /
//!   entry_size` with entries carrying full `d`-dimensional rectangles, so
//!   fan-out collapses as `d` grows (≈ 7 at `d = 64`) — the structural
//!   reason R-trees lose in high dimensions, reproduced rather than
//!   simulated;
//! * [`build`] — bulk loading by Hilbert packing (default) and by
//!   generalized Sort-Tile-Recursive, plus Guttman-style dynamic inserts
//!   with quadratic splits ([`build::BuildStrategy`]);
//! * [`tree`] — the [`tree::RTree`] handle with invariant checking;
//! * [`join`] — [`RsjJoin`]: the Brinkhoff/Kriegel/Seeger synchronized
//!   traversal, pruning node pairs by L∞ MBR mindist and sweeping leaf
//!   pairs along dimension 0.
#![forbid(unsafe_code)]

pub mod build;
pub mod join;
pub mod knn;
pub mod node;
pub mod tree;

pub use build::BuildStrategy;
pub use join::RsjJoin;
pub use knn::Neighbour;
pub use tree::RTree;

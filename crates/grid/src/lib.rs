//! # hdsj-grid — the ε-grid hash join
//!
//! The textbook low-dimensional filter: overlay a grid of cell side `ε`;
//! two points within L∞ distance ε necessarily fall in the same or in
//! adjacent cells, so each occupied cell only joins with its `3^d`
//! neighbourhood.
//!
//! That `3^d` is the point. At `d = 4` a cell has 80 neighbours; at `d = 16`
//! it has 43 million — the curse-of-dimensionality blow-up that motivates
//! the paper's MSJ. The implementation therefore **refuses** to run above a
//! configurable dimensionality cap ([`GridJoin::max_dims`]) instead of
//! silently burning hours; the dimensionality experiment (E1) reports it as
//! infeasible beyond the cap, just as the paper's grid-style baselines drop
//! out of the high-`d` plots.
//!
//! Cells are kept in a hash directory (occupied cells only), so space is
//! `O(N)` regardless of how fine the grid is.
#![forbid(unsafe_code)]

use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, Error, JoinKind, JoinSpec, JoinStats, LifecycleCtx,
    PairSink, Refiner, Result, SimilarityJoin, Tracer,
};
use std::collections::HashMap;

/// Occupied cells probed between lifecycle polls. Each cell visits up to
/// `3^d` neighbours, so the stride is lower than the sweep-based joins'.
const POLL_STRIDE: usize = 256;

/// ε-grid hash join.
///
/// ```
/// use hdsj_core::{JoinSpec, SimilarityJoin, CountSink};
/// use hdsj_grid::GridJoin;
/// let points = hdsj_data::uniform(3, 200, 7).unwrap();
/// let mut sink = CountSink::default();
/// let stats = GridJoin::default().self_join(&points, &JoinSpec::l2(0.1), &mut sink)?;
/// assert_eq!(stats.results, sink.count);
/// # Ok::<(), hdsj_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct GridJoin {
    /// Refuse dimensionalities above this (3^d neighbour enumeration).
    pub max_dims: usize,
    /// Per-query lifecycle context, polled at phase boundaries and every
    /// [`POLL_STRIDE`] probed cells.
    lifecycle: Option<LifecycleCtx>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl Default for GridJoin {
    fn default() -> GridJoin {
        GridJoin {
            max_dims: 10,
            lifecycle: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// A point's cell coordinates at grid resolution `1/eps`.
fn cell_of(p: &[f64], eps: f64) -> Vec<i64> {
    p.iter().map(|&x| (x / eps).floor() as i64).collect()
}

/// Hash directory: occupied cell → point ids, with deterministic iteration
/// order (sorted cell coordinates).
struct Directory {
    cells: HashMap<Vec<i64>, Vec<u32>>,
}

impl Directory {
    fn build(ds: &Dataset, eps: f64) -> Directory {
        let mut cells: HashMap<Vec<i64>, Vec<u32>> = HashMap::new();
        for (i, p) in ds.iter() {
            cells.entry(cell_of(p, eps)).or_default().push(i);
        }
        Directory { cells }
    }

    fn sorted_keys(&self) -> Vec<&Vec<i64>> {
        let mut keys: Vec<&Vec<i64>> = self.cells.keys().collect();
        keys.sort_unstable();
        keys
    }

    fn bytes(&self) -> u64 {
        self.cells
            .iter()
            .map(|(k, v)| (k.len() * 8 + v.len() * 4 + 48) as u64)
            .sum()
    }
}

/// Calls `f` for every offset in `{-1,0,1}^d`, including the zero offset.
fn for_each_offset(d: usize, f: &mut impl FnMut(&[i64])) {
    let mut offset = vec![-1i64; d];
    // allow(hdsj::lifecycle_poll): 3^d odometer over the neighbourhood —
    // bounded by dimensionality, not by the dataset.
    loop {
        f(&offset);
        // Odometer increment over {-1,0,1}.
        let mut i = 0;
        loop {
            if i == d {
                return;
            }
            if offset[i] < 1 {
                offset[i] += 1;
                break;
            }
            offset[i] = -1;
            i += 1;
        }
    }
}

/// True when `offset` is lexicographically positive (first non-zero entry is
/// `+1`) — the half-neighbourhood used by self-joins so each cell pair is
/// visited once.
fn is_positive(offset: &[i64]) -> bool {
    // allow(hdsj::lifecycle_poll): d entries, bounded by dimensionality.
    for &o in offset {
        if o > 0 {
            return true;
        }
        if o < 0 {
            return false;
        }
    }
    false
}

impl GridJoin {
    fn check_dims(&self, dims: usize) -> Result<()> {
        if dims > self.max_dims {
            return Err(Error::Unsupported(format!(
                "epsilon-grid join at d={dims} would enumerate 3^{dims} neighbour cells; \
                 cap is {} (raise GridJoin::max_dims to force it)",
                self.max_dims
            )));
        }
        Ok(())
    }

    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let dims = validate_inputs(a, b, spec)?;
        self.check_dims(dims)?;
        let mut phases = Vec::new();

        let mut root = self.tracer.span("grid.join");
        root.attr_str("algo", "GRID");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", dims as u64);
        root.attr_f64("eps", spec.eps);

        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let build = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "build",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::GRID_PHASE_BUILD_NS,
        );
        let dir_a = Directory::build(a, spec.eps);
        let dir_b = match kind {
            JoinKind::SelfJoin => None,
            JoinKind::TwoSets => Some(Directory::build(b, spec.eps)),
        };
        let structure_bytes = dir_a.bytes() + dir_b.as_ref().map(|d| d.bytes()).unwrap_or(0);
        build.finish(&mut phases);

        let sweep = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "probe",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::GRID_PHASE_PROBE_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut refiner = Refiner::new(a, b, kind, spec, sink);
        let mut neighbour = vec![0i64; dims];
        match kind {
            JoinKind::SelfJoin => {
                for (idx, key) in dir_a.sorted_keys().into_iter().enumerate() {
                    if idx % POLL_STRIDE == 0 {
                        if let Some(lc) = &self.lifecycle {
                            lc.poll()?;
                        }
                    }
                    let points = &dir_a.cells[key];
                    // Within-cell pairs.
                    for (x, &i) in points.iter().enumerate() {
                        for &j in &points[x + 1..] {
                            refiner.offer(i, j);
                        }
                    }
                    // Positive half of the neighbourhood.
                    for_each_offset(dims, &mut |off| {
                        if !is_positive(off) {
                            return;
                        }
                        for ((n, &k), &o) in neighbour.iter_mut().zip(key.iter()).zip(off) {
                            *n = k + o;
                        }
                        if let Some(others) = dir_a.cells.get(&neighbour) {
                            for &i in points {
                                for &j in others {
                                    refiner.offer(i, j);
                                }
                            }
                        }
                    });
                }
            }
            JoinKind::TwoSets => {
                let Some(dir_b) = dir_b.as_ref() else {
                    return Err(Error::Internal(
                        "two-set grid join reached probe without directory b".into(),
                    ));
                };
                for (idx, key) in dir_a.sorted_keys().into_iter().enumerate() {
                    if idx % POLL_STRIDE == 0 {
                        if let Some(lc) = &self.lifecycle {
                            lc.poll()?;
                        }
                    }
                    let points = &dir_a.cells[key];
                    for_each_offset(dims, &mut |off| {
                        for ((n, &k), &o) in neighbour.iter_mut().zip(key.iter()).zip(off) {
                            *n = k + o;
                        }
                        if let Some(others) = dir_b.cells.get(&neighbour) {
                            for &i in points {
                                for &j in others {
                                    refiner.offer(i, j);
                                }
                            }
                        }
                    });
                }
            }
        }
        let mut stats = refiner.finish(JoinStats::default());
        sweep.finish(&mut phases);
        stats.phases = phases;
        stats.structure_bytes = structure_bytes;
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("grid.candidates").add(stats.candidates);
            self.tracer.counter("grid.results").add(stats.results);
        }
        root.finish();
        Ok(stats)
    }
}

impl SimilarityJoin for GridJoin {
    fn name(&self) -> &'static str {
        "GRID"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_bruteforce::BruteForce;
    use hdsj_core::{verify, Metric, VecSink};

    fn compare_with_bf(a: &Dataset, b: Option<&Dataset>, spec: &JoinSpec) {
        let mut want = VecSink::default();
        let mut got = VecSink::default();
        let mut bf = BruteForce::default();
        let mut grid = GridJoin::default();
        match b {
            None => {
                bf.self_join(a, spec, &mut want).unwrap();
                grid.self_join(a, spec, &mut got).unwrap();
            }
            Some(b) => {
                bf.join(a, b, spec, &mut want).unwrap();
                grid.join(a, b, spec, &mut got).unwrap();
            }
        }
        verify::assert_same_results("GRID", &want.pairs, &got.pairs);
    }

    #[test]
    fn matches_brute_force_on_uniform_self_join() {
        for (dims, eps) in [(2usize, 0.05), (3, 0.15), (6, 0.4)] {
            let ds = hdsj_data::uniform(dims, 400, dims as u64).unwrap();
            compare_with_bf(&ds, None, &JoinSpec::new(eps, Metric::L2));
        }
    }

    #[test]
    fn matches_brute_force_on_two_set_join() {
        let a = hdsj_data::uniform(4, 300, 1).unwrap();
        let b = hdsj_data::uniform(4, 250, 2).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(3.0)] {
            compare_with_bf(&a, Some(&b), &JoinSpec::new(0.25, metric));
        }
    }

    #[test]
    fn matches_brute_force_on_clustered_data() {
        let ds = hdsj_data::gaussian_clusters(
            3,
            500,
            hdsj_data::ClusterSpec {
                clusters: 5,
                sigma: 0.03,
                ..Default::default()
            },
            9,
        )
        .unwrap();
        compare_with_bf(&ds, None, &JoinSpec::new(0.05, Metric::L2));
    }

    #[test]
    fn points_on_cell_boundaries_are_not_lost() {
        // Exact multiples of eps sit on cell edges; the neighbour sweep must
        // still find cross-boundary pairs.
        let eps = 0.125;
        let ds = Dataset::from_rows(&[
            vec![0.25, 0.25],  // corner of 4 cells
            vec![0.249, 0.25], // just left
            vec![0.375, 0.25], // exactly eps to the right
            vec![0.25, 0.375],
        ])
        .unwrap();
        compare_with_bf(&ds, None, &JoinSpec::new(eps, Metric::Linf));
    }

    #[test]
    fn large_eps_degenerates_to_single_cell() {
        let ds = hdsj_data::uniform(2, 100, 5).unwrap();
        compare_with_bf(&ds, None, &JoinSpec::new(0.9, Metric::L2));
    }

    #[test]
    fn refuses_high_dimensionality() {
        let ds = hdsj_data::uniform(16, 10, 1).unwrap();
        let mut sink = VecSink::default();
        let err = GridJoin::default()
            .self_join(&ds, &JoinSpec::l2(0.1), &mut sink)
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err}");
        // Raising the cap overrides the refusal.
        let ds_small = hdsj_data::uniform(11, 50, 1).unwrap();
        GridJoin {
            max_dims: 16,
            ..GridJoin::default()
        }
        .self_join(&ds_small, &JoinSpec::l2(0.5), &mut sink)
        .unwrap();
    }

    #[test]
    fn reports_phases_and_structure_bytes() {
        let ds = hdsj_data::uniform(3, 200, 2).unwrap();
        let mut sink = VecSink::default();
        let stats = GridJoin::default()
            .self_join(&ds, &JoinSpec::l2(0.1), &mut sink)
            .unwrap();
        assert!(stats.phase("build").is_some());
        assert!(stats.phase("probe").is_some());
        assert!(stats.structure_bytes > 0);
        assert!(stats.candidates >= stats.results);
    }

    #[test]
    fn offsets_enumerate_exactly_3_pow_d() {
        for d in 1..=5usize {
            let mut n = 0;
            let mut positive = 0;
            for_each_offset(d, &mut |off| {
                n += 1;
                if is_positive(off) {
                    positive += 1;
                }
            });
            assert_eq!(n, 3usize.pow(d as u32));
            assert_eq!(positive, (3usize.pow(d as u32) - 1) / 2);
        }
    }
}

//! The named-metric registry behind a [`crate::Tracer`]: counters, gauges,
//! and histograms, each shared by name, plus a typed [`MetricsSnapshot`]
//! and a Prometheus text exposition.
//!
//! This is the object a serving layer exposes per query (`hdsj stats
//! --format prom` renders it from a trace file today; `hdsj serve` will
//! render it live). Metric *names* are governed by [`crate::names`] and
//! the R6 `counter_registry` analyze rule, exactly as counters always
//! were.

use crate::hist::{bucket_upper, Histogram, HistogramSnapshot};
use crate::{json, lock_recover};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared storage for every named metric a tracer owns. All maps are
/// name-keyed `BTreeMap`s so snapshots iterate in one deterministic order.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// The named counter cell, created at zero on first use.
    pub fn counter_cell(&self, name: impl Into<String>) -> Arc<AtomicU64> {
        let mut map = lock_recover(&self.counters);
        Arc::clone(
            map.entry(name.into())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Sets a gauge to its latest value.
    pub fn set_gauge(&self, name: impl Into<String>, value: f64) {
        lock_recover(&self.gauges).insert(name.into(), value);
    }

    /// The named histogram, created empty on first use. All handles to one
    /// name share the same sharded cells.
    pub fn histogram(&self, name: impl Into<String>) -> Arc<Histogram> {
        let mut map = lock_recover(&self.hists);
        Arc::clone(
            map.entry(name.into())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Current values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_recover(&self.counters)
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: lock_recover(&self.gauges)
                .iter()
                .map(|(name, v)| (name.clone(), *v))
                .collect(),
            hists: lock_recover(&self.hists)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time view of a [`MetricsRegistry`] (or of the metric events
/// in a parsed trace file), sorted by name within each kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, HistogramSnapshot)>,
}

/// A metric name as a Prometheus metric family name: `hdsj_` + the dotted
/// name with `.` → `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("hdsj_");
    for c in name.chars() {
        out.push(match c {
            '.' => '_',
            c if c.is_ascii_alphanumeric() || c == '_' => c,
            _ => '_',
        });
    }
    out
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// The named histogram snapshot, if present.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Prometheus text exposition (text format 0.0.4): counters and gauges
    /// as single samples, histograms as cumulative `_bucket{le=…}` series
    /// plus `_sum` / `_count`. Only non-empty buckets get an `le` sample
    /// (any subset of the fixed bucket bounds is a valid Prometheus
    /// histogram); `+Inf` always closes the series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, value) in &self.gauges {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", json::encode_f64(*value));
        }
        for (name, snap) in &self.hists {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cumulative = 0u64;
            for (idx, c) in snap
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
            {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{p}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper(idx)
                );
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{p}_sum {}", snap.sum);
            let _ = writeln!(out, "{p}_count {}", snap.count);
        }
        out
    }

    /// A human-oriented rendering: one line per metric, histograms as
    /// count/mean/p50/p90/p99/max.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {value:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {value:>14.6}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, s) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={:<8} mean={:<12.1} p50={:<10} p90={:<10} p99={:<10} max={}",
                    s.count,
                    s.mean(),
                    s.percentile(0.5),
                    s.percentile(0.9),
                    s.percentile(0.99),
                    s.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shares_cells_by_name() {
        let reg = MetricsRegistry::default();
        reg.counter_cell("pairs").fetch_add(3, Ordering::Relaxed);
        reg.counter_cell("pairs").fetch_add(4, Ordering::Relaxed);
        reg.set_gauge("rate", 0.5);
        reg.set_gauge("rate", 0.75);
        reg.histogram("lat").record(8);
        reg.histogram("lat").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("pairs".to_string(), 7)]);
        assert_eq!(snap.gauges, vec![("rate".to_string(), 0.75)]);
        assert_eq!(snap.hist("lat").unwrap().count, 2);
        assert_eq!(snap.hist("lat").unwrap().sum, 17);
        assert!(snap.hist("missing").is_none());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::default();
        reg.counter_cell("pool.hits")
            .fetch_add(9, Ordering::Relaxed);
        reg.set_gauge("pool.hit_rate", 0.9);
        let h = reg.histogram("pool.read_ns");
        h.record(3);
        h.record(900);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hdsj_pool_hits counter"));
        assert!(text.contains("hdsj_pool_hits 9"));
        assert!(text.contains("# TYPE hdsj_pool_hit_rate gauge"));
        assert!(text.contains("hdsj_pool_hit_rate 0.9"));
        assert!(text.contains("# TYPE hdsj_pool_read_ns histogram"));
        // Cumulative buckets: value 3 lands in [2,3], 900 in [512,1023].
        assert!(
            text.contains("hdsj_pool_read_ns_bucket{le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hdsj_pool_read_ns_bucket{le=\"1023\"} 2"),
            "{text}"
        );
        assert!(text.contains("hdsj_pool_read_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hdsj_pool_read_ns_sum 903"));
        assert!(text.contains("hdsj_pool_read_ns_count 2"));
    }

    #[test]
    fn human_rendering_summarizes_histograms() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("exec.chunk_ns");
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = reg.snapshot().to_human();
        assert!(text.contains("exec.chunk_ns"), "{text}");
        assert!(text.contains("n=100"), "{text}");
        assert!(text.contains("max=100"), "{text}");
    }
}

//! # hdsj-obs — structured tracing and metrics for the join workspace
//!
//! The paper this workspace reproduces is a *performance evaluation*: its
//! contribution is measuring where similarity-join time and I/O go. This
//! crate is the measurement substrate — a deliberately small span / counter
//! / gauge model with pluggable sinks, no external dependencies, and a
//! hand-rolled JSONL codec so it builds in fully offline environments.
//!
//! * [`Tracer`] — a cheap-to-clone handle. A disabled tracer (the default)
//!   costs one branch per operation, so the algorithms thread it through
//!   unconditionally.
//! * [`Span`] — an RAII guard for a named, timed region. Spans nest via
//!   [`Span::child`], carry typed attributes, and record themselves to the
//!   sink when finished (or dropped).
//! * [`Counter`] — a named `AtomicU64` from the tracer's registry; clones
//!   share the cell, so concurrent increments from worker threads are
//!   exact. [`Tracer::flush`] emits final values as counter events.
//! * Sinks: [`JsonlSink`] (one JSON object per line, schema below),
//!   [`MemorySink`] (for tests), and the implicit null sink of a disabled
//!   tracer. The [`report`] module parses the JSONL back and renders a
//!   flamegraph-style phase tree.
//!
//! ## JSONL schema
//!
//! ```json
//! {"t":"span","id":2,"parent":1,"name":"sort","start_us":120,"dur_us":4567,"attrs":{"records":10000}}
//! {"t":"counter","name":"pool.hits","value":913}
//! {"t":"gauge","name":"filter.precision","value":0.42}
//! {"t":"hist","name":"pool.read_ns","count":12,"sum":48000,"min":900,"max":9000,"buckets":[[10,7],[14,5]]}
//! ```
//!
//! `id` is unique per tracer; `parent` is absent (or `null`) for root
//! spans; `start_us` is microseconds since the tracer's epoch; attribute
//! values are unsigned integers, floats, or strings. Histogram `buckets`
//! are sparse `[bucket_index, count]` pairs over the fixed log₂ layout of
//! [`hist::bucket_index`].
//!
//! Counters, gauges, and histograms all live in the tracer's
//! [`MetricsRegistry`]; [`Tracer::metrics_snapshot`] returns them as one
//! typed struct and [`MetricsSnapshot::to_prometheus`] renders the
//! text exposition served by `hdsj stats --format prom`.
#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod metrics;
pub mod names;
pub mod report;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{MetricsRegistry, MetricsSnapshot};

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Locks `m`, recovering the data if a panicking thread poisoned it.
/// Every mutex in this crate guards state that stays valid under partial
/// updates (an event vector, a name→cell map, an optional tracer), so
/// after a panic elsewhere observability keeps working — better a
/// truncated trace than a second panic while unwinding.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A typed attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

/// The span attribute key that carries a [`PhaseClass`].
pub const PHASE_ATTR: &str = "phase";

/// Cost class of a span, after the paper's CPU/I-O decomposition of each
/// join phase (§6 of the evaluation splits every algorithm's time this
/// way). `Wait` covers time blocked on other workers — the class the
/// paper folds into CPU but a parallel implementation must separate.
///
/// Attached to spans as the string attribute [`PHASE_ATTR`]; children
/// without their own class inherit the nearest classed ancestor's in
/// `trace-report --phases`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseClass {
    Cpu,
    Io,
    Wait,
}

impl PhaseClass {
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseClass::Cpu => "cpu",
            PhaseClass::Io => "io",
            PhaseClass::Wait => "wait",
        }
    }

    /// The class encoded by a `phase` attribute value, if recognized.
    pub fn parse(s: &str) -> Option<PhaseClass> {
        match s {
            "cpu" => Some(PhaseClass::Cpu),
            "io" => Some(PhaseClass::Io),
            "wait" => Some(PhaseClass::Wait),
            _ => None,
        }
    }
}

impl std::fmt::Display for PhaseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A completed span, as delivered to sinks and read back by the report
/// parser.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    /// Microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    pub attrs: Vec<(String, AttrValue)>,
}

/// A counter's final value, emitted by [`Tracer::flush`].
#[derive(Clone, Debug, PartialEq)]
pub struct CounterEvent {
    pub name: String,
    pub value: u64,
}

/// A point-in-time measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeEvent {
    pub name: String,
    pub value: f64,
}

/// A histogram's final state, emitted by [`Tracer::flush`]. Buckets are
/// sparse `(bucket_index, count)` pairs over the fixed log₂ layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistEvent {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistEvent {
    /// This event's distribution as a dense snapshot.
    pub fn to_snapshot(&self) -> Result<HistogramSnapshot, String> {
        HistogramSnapshot::from_sparse(self.count, self.sum, self.min, self.max, &self.buckets)
    }

    /// The flush-time encoding of `snap` under `name`.
    pub fn from_snapshot(name: impl Into<String>, snap: &HistogramSnapshot) -> HistEvent {
        HistEvent {
            name: name.into(),
            count: snap.count,
            sum: snap.sum,
            min: snap.min,
            max: snap.max,
            buckets: snap.sparse_buckets(),
        }
    }
}

/// Everything a sink can receive.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    Span(SpanEvent),
    Counter(CounterEvent),
    Gauge(GaugeEvent),
    Hist(HistEvent),
}

/// Receives trace events. Implementations must be internally synchronized:
/// spans finish on whatever thread holds them.
pub trait TraceSink: Send + Sync {
    fn record(&self, event: &Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Writes one JSON object per event line to a buffered file.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = json::encode_event(event);
        let mut out = lock_recover(&self.out);
        // A failed trace write must never fail the traced join.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = lock_recover(&self.out).flush();
    }
}

/// Collects events in memory; the test-facing sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A shared handle suitable for `Tracer::with_sink`.
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        lock_recover(&self.events).clone()
    }

    /// All recorded spans, in completion order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// All recorded counter events.
    pub fn counters(&self) -> Vec<CounterEvent> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Counter(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// The value of the named counter event, if one was recorded.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters()
            .into_iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// All recorded histogram events.
    pub fn hists(&self) -> Vec<HistEvent> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Hist(h) => Some(h),
                _ => None,
            })
            .collect()
    }

    /// The named histogram event's distribution, if one was recorded and
    /// is internally consistent.
    pub fn hist_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.hists()
            .into_iter()
            .find(|h| h.name == name)
            .and_then(|h| h.to_snapshot().ok())
    }
}

impl TraceSink for Arc<MemorySink> {
    fn record(&self, event: &Event) {
        lock_recover(&self.events).push(event.clone());
    }
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    sink: Box<dyn TraceSink>,
    metrics: MetricsRegistry,
}

/// Handle to a trace session. Cloning is cheap (an `Arc` bump); all clones
/// share the sink, the span-id allocator, and the counter registry.
///
/// The default tracer is disabled: every operation short-circuits, so code
/// can be instrumented unconditionally.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer recording into the given sink.
    pub fn with_sink<S: TraceSink + 'static>(sink: S) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                sink: Box::new(sink),
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    /// A tracer writing JSONL to `path`.
    pub fn jsonl<P: AsRef<Path>>(path: P) -> std::io::Result<Tracer> {
        Ok(Tracer::with_sink(JsonlSink::create(path)?))
    }

    /// A tracer backed by an in-memory sink, returned alongside it.
    pub fn memory() -> (Tracer, Arc<MemorySink>) {
        let sink = MemorySink::shared();
        (Tracer::with_sink(Arc::clone(&sink)), sink)
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a root span.
    pub fn span(&self, name: &'static str) -> Span {
        self.start_span(name, None)
    }

    fn start_span(&self, name: &'static str, parent: Option<u64>) -> Span {
        let id = self
            .inner
            .as_ref()
            .map(|inner| inner.next_id.fetch_add(1, Ordering::Relaxed))
            .unwrap_or(0);
        Span {
            tracer: self.clone(),
            id,
            parent,
            name,
            started: Instant::now(),
            attrs: Vec::new(),
            finished: false,
        }
    }

    /// The named counter from the shared registry, creating it at zero on
    /// first use. All handles to one name share the same atomic cell.
    /// Counters on a disabled tracer still count (into a private cell) but
    /// are never emitted.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        match &self.inner {
            None => Counter {
                cell: Arc::new(AtomicU64::new(0)),
            },
            Some(inner) => Counter {
                cell: inner.metrics.counter_cell(name),
            },
        }
    }

    /// Records a point-in-time measurement immediately and remembers its
    /// latest value in the registry.
    pub fn gauge(&self, name: impl Into<String>, value: f64) {
        if let Some(inner) = &self.inner {
            let name = name.into();
            inner.metrics.set_gauge(name.clone(), value);
            inner.sink.record(&Event::Gauge(GaugeEvent { name, value }));
        }
    }

    /// The named histogram from the shared registry, created empty on
    /// first use. All handles to one name share the same sharded cells.
    /// A disabled tracer returns a private histogram that still records
    /// but is never emitted — the same contract as [`Tracer::counter`].
    pub fn histogram(&self, name: impl Into<String>) -> Arc<Histogram> {
        match &self.inner {
            None => Arc::new(Histogram::new()),
            Some(inner) => inner.metrics.histogram(name),
        }
    }

    /// Current values of all registered counters, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.metrics.snapshot().counters,
        }
    }

    /// Current values of every registered metric (counters, gauges,
    /// histograms), sorted by name within each kind.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => inner.metrics.snapshot(),
        }
    }

    /// Emits every registered counter's current value as a counter event
    /// and every non-empty histogram as a hist event, then flushes the
    /// sink. Call once at the end of a traced run. (Gauges were already
    /// emitted when set.)
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let snap = inner.metrics.snapshot();
            for (name, value) in snap.counters {
                inner
                    .sink
                    .record(&Event::Counter(CounterEvent { name, value }));
            }
            for (name, hist) in snap.hists {
                if !hist.is_empty() {
                    inner
                        .sink
                        .record(&Event::Hist(HistEvent::from_snapshot(name, &hist)));
                }
            }
            inner.sink.flush();
        }
    }

    fn micros_since_epoch(&self, at: Instant) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => at.saturating_duration_since(inner.epoch).as_micros() as u64,
        }
    }

    fn record(&self, event: &Event) {
        if let Some(inner) = &self.inner {
            inner.sink.record(event);
        }
    }
}

/// RAII guard for a named, timed region. Records itself on [`Span::finish`]
/// or on drop; nested regions come from [`Span::child`].
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    started: Instant,
    attrs: Vec<(String, AttrValue)>,
    finished: bool,
}

impl Span {
    /// Starts a child span of this one.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer
            .start_span(name, self.tracer.enabled().then_some(self.id))
    }

    /// This span's id (0 on a disabled tracer).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Attaches an integer attribute.
    pub fn attr_u64(&mut self, key: impl Into<String>, value: u64) {
        if self.tracer.enabled() {
            self.attrs.push((key.into(), AttrValue::U64(value)));
        }
    }

    /// Attaches a float attribute.
    pub fn attr_f64(&mut self, key: impl Into<String>, value: f64) {
        if self.tracer.enabled() {
            self.attrs.push((key.into(), AttrValue::F64(value)));
        }
    }

    /// Attaches a string attribute.
    pub fn attr_str(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if self.tracer.enabled() {
            self.attrs.push((key.into(), AttrValue::Str(value.into())));
        }
    }

    /// Classifies this span's cost as CPU, I/O, or wait time for
    /// `trace-report --phases`. Children inherit the class unless they set
    /// their own.
    pub fn set_phase(&mut self, class: PhaseClass) {
        self.attr_str(PHASE_ATTR, class.as_str());
    }

    /// Ends the span, records it, and returns its wall-clock duration —
    /// the hook by which spans subsume the older `PhaseTimer`.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.record_now();
        self.finished = true;
        elapsed
    }

    fn record_now(&mut self) -> Duration {
        let elapsed = self.started.elapsed();
        if self.tracer.enabled() {
            self.tracer.record(&Event::Span(SpanEvent {
                id: self.id,
                parent: self.parent,
                name: self.name.to_string(),
                start_us: self.tracer.micros_since_epoch(self.started),
                dur_us: elapsed.as_micros() as u64,
                attrs: std::mem::take(&mut self.attrs),
            }));
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.record_now();
        }
    }
}

/// A named atomic counter. Clones share the cell, so increments from many
/// threads aggregate exactly.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Process-global tracer.
//
// Free functions (the `hdsj-data` generators) have no struct to hang a
// tracer on; they read this instead. The CLI installs its tracer here so
// one `--trace` flag covers the whole process.

static GLOBAL: Mutex<Option<Tracer>> = Mutex::new(None);

/// Installs `tracer` as the process-global tracer (replacing any previous
/// one).
pub fn set_global(tracer: Tracer) {
    *lock_recover(&GLOBAL) = Some(tracer);
}

/// The process-global tracer; disabled unless [`set_global`] was called.
pub fn global() -> Tracer {
    lock_recover(&GLOBAL).clone().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_costs_little() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut sp = t.span("root");
        sp.attr_u64("n", 1);
        let child = sp.child("inner");
        drop(child);
        sp.finish();
        t.counter("x").add(5);
        t.gauge("g", 1.0);
        t.flush();
        assert!(t.counter_snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_record_on_finish_or_drop() {
        let (t, sink) = Tracer::memory();
        let mut root = t.span("join");
        root.attr_str("algo", "MSJ");
        {
            let child = root.child("sort");
            drop(child); // recorded by Drop
        }
        let root_id = root.id();
        root.finish();

        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        // Children finish (and record) before their parents.
        assert_eq!(spans[0].name, "sort");
        assert_eq!(spans[0].parent, Some(root_id));
        assert_eq!(spans[1].name, "join");
        assert_eq!(spans[1].parent, None);
        assert_eq!(
            spans[1].attrs,
            vec![("algo".to_string(), AttrValue::Str("MSJ".to_string()))]
        );
        assert!(spans[1].dur_us >= spans[0].dur_us);
    }

    #[test]
    fn counter_handles_share_one_cell() {
        let (t, sink) = Tracer::memory();
        let a = t.counter("pairs");
        let b = t.counter("pairs");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        t.flush();
        assert_eq!(sink.counter_value("pairs"), Some(7));
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let (t, _sink) = Tracer::memory();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = t.counter("hot");
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(t.counter("hot").get(), threads * per_thread);
    }

    #[test]
    fn gauges_record_immediately_and_register_latest_value() {
        let (t, sink) = Tracer::memory();
        t.gauge("precision", 0.25);
        let events = sink.events();
        assert_eq!(
            events,
            vec![Event::Gauge(GaugeEvent {
                name: "precision".to_string(),
                value: 0.25
            })]
        );
        t.gauge("precision", 0.5);
        assert_eq!(
            t.metrics_snapshot().gauges,
            vec![("precision".to_string(), 0.5)]
        );
    }

    #[test]
    fn histogram_handles_share_cells_and_flush_emits_them() {
        let (t, sink) = Tracer::memory();
        let a = t.histogram("lat");
        let b = t.histogram("lat");
        a.record(100);
        b.record(200);
        t.histogram("registered.but.empty");
        t.flush();
        let hists = sink.hists();
        // Empty histograms are not emitted.
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].name, "lat");
        let snap = sink.hist_snapshot("lat").unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 300);
        assert_eq!(snap.min, 100);
        assert_eq!(snap.max, 200);
        assert_eq!(snap, t.metrics_snapshot().hist("lat").unwrap().clone());
    }

    #[test]
    fn disabled_tracer_histograms_record_privately() {
        let t = Tracer::disabled();
        let h = t.histogram("lat");
        h.record(7);
        assert_eq!(h.snapshot().count, 1);
        assert!(t.metrics_snapshot().is_empty());
        t.flush();
    }

    #[test]
    fn set_phase_attaches_the_phase_attribute() {
        let (t, sink) = Tracer::memory();
        let mut sp = t.span("sort");
        sp.set_phase(PhaseClass::Io);
        sp.finish();
        let spans = sink.spans();
        assert_eq!(
            spans[0].attrs,
            vec![(PHASE_ATTR.to_string(), AttrValue::Str("io".to_string()))]
        );
        assert_eq!(PhaseClass::parse("io"), Some(PhaseClass::Io));
        assert_eq!(PhaseClass::parse("gpu"), None);
    }

    #[test]
    fn global_tracer_round_trips() {
        // Serialized with other tests through the registry lock; keep the
        // installed tracer harmless (memory sink).
        let (t, _sink) = Tracer::memory();
        set_global(t);
        assert!(global().enabled());
        set_global(Tracer::disabled());
        assert!(!global().enabled());
    }
}

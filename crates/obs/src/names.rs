//! Metric-name registry: the single source of truth for every counter and
//! gauge name the workspace records.
//!
//! Counter names are stringly-typed at their call sites; a typo there (or
//! in a test's `counter_value` assertion) silently creates a metric nobody
//! else reads. The `hdsj-analyze` rule R6 (`counter_registry`)
//! cross-checks every literal metric name in the workspace against the
//! string literals in **this file** — add new names here first.
//!
//! Dynamically built names (`IoCounters::record_counters` emits
//! `<prefix>.<field>`) cannot be checked lexically; their expansions for
//! the `pool` prefix are listed here so literal references to them (tests,
//! the trace reporter) still verify.

/// Candidate pairs examined by the brute-force join.
pub const BF_CANDIDATES: &str = "bf.candidates";
/// Result pairs emitted by the brute-force join.
pub const BF_RESULTS: &str = "bf.results";

/// Candidate pairs examined by the ε-KDB-tree join.
pub const EKDB_CANDIDATES: &str = "ekdb.candidates";
/// Result pairs emitted by the ε-KDB-tree join.
pub const EKDB_RESULTS: &str = "ekdb.results";

/// Candidate pairs examined by the ε-grid join.
pub const GRID_CANDIDATES: &str = "grid.candidates";
/// Result pairs emitted by the ε-grid join.
pub const GRID_RESULTS: &str = "grid.results";

/// Candidate pairs examined by the multidimensional spatial join (MSJ).
pub const MSJ_CANDIDATES: &str = "msj.candidates";
/// Result pairs emitted by MSJ.
pub const MSJ_RESULTS: &str = "msj.results";
/// Candidates forwarded from MSJ's sweep phase into refinement.
pub const MSJ_REFINE_CANDIDATES: &str = "msj.refine.candidates";
/// Pairs surviving MSJ refinement.
pub const MSJ_REFINE_PAIRS: &str = "msj.refine.pairs";
/// Microseconds MSJ sweep workers spent blocked on the refine channel.
pub const MSJ_SWEEP_SEND_WAIT_US: &str = "msj.sweep.send_wait_us";

/// Chunks dispatched by the hdsj-exec pool.
pub const EXEC_TASKS: &str = "exec.tasks";
/// Worker threads spawned by the hdsj-exec pool.
pub const EXEC_WORKERS: &str = "exec.workers";
/// Times an hdsj-exec worker polled the chunk cursor and found no work
/// left (tail imbalance).
pub const EXEC_STEAL_WAITS: &str = "exec.steal_waits";

/// Candidate pairs examined by the R-tree spatial join (RSJ).
pub const RSJ_CANDIDATES: &str = "rsj.candidates";
/// Result pairs emitted by RSJ.
pub const RSJ_RESULTS: &str = "rsj.results";

/// Candidate pairs examined by the seeded-tree/S3J variant.
pub const S3J_CANDIDATES: &str = "s3j.candidates";
/// Result pairs emitted by the seeded-tree/S3J variant.
pub const S3J_RESULTS: &str = "s3j.results";

/// Candidate pairs examined by the 1-d sort-merge baseline.
pub const SM1D_CANDIDATES: &str = "sm1d.candidates";
/// Result pairs emitted by the 1-d sort-merge baseline.
pub const SM1D_RESULTS: &str = "sm1d.results";

/// Buffer-pool pages read from disk (`IoCounters::reads`).
pub const POOL_READS: &str = "pool.reads";
/// Buffer-pool pages written to disk (`IoCounters::writes`).
pub const POOL_WRITES: &str = "pool.writes";
/// Buffer-pool pages allocated (`IoCounters::allocs`).
pub const POOL_ALLOCS: &str = "pool.allocs";
/// Buffer-pool cache hits (`IoCounters::hits`).
pub const POOL_HITS: &str = "pool.hits";
/// Frames evicted to make room (`IoCounters::evictions`).
pub const POOL_EVICTIONS: &str = "pool.evictions";
/// Dirty frames written back on eviction (`IoCounters::writebacks`).
pub const POOL_WRITEBACKS: &str = "pool.writebacks";
/// Transient-fault retries that eventually succeeded (`IoCounters::retries`).
pub const POOL_RETRIES: &str = "pool.retries";
/// Injected faults observed (`IoCounters::faults`).
pub const POOL_FAULTS: &str = "pool.faults";
/// Checksum mismatches detected on page read (`IoCounters::corruptions`).
pub const POOL_CORRUPTION_DETECTED: &str = "pool.corruption_detected";
/// Buffer-pool hit rate over a run (gauge, 0.0–1.0).
pub const POOL_HIT_RATE: &str = "pool.hit_rate";

/// Every registered metric name, for exhaustiveness tests.
pub const ALL: &[&str] = &[
    BF_CANDIDATES,
    BF_RESULTS,
    EKDB_CANDIDATES,
    EKDB_RESULTS,
    GRID_CANDIDATES,
    GRID_RESULTS,
    MSJ_CANDIDATES,
    MSJ_RESULTS,
    MSJ_REFINE_CANDIDATES,
    MSJ_REFINE_PAIRS,
    MSJ_SWEEP_SEND_WAIT_US,
    EXEC_TASKS,
    EXEC_WORKERS,
    EXEC_STEAL_WAITS,
    RSJ_CANDIDATES,
    RSJ_RESULTS,
    S3J_CANDIDATES,
    S3J_RESULTS,
    SM1D_CANDIDATES,
    SM1D_RESULTS,
    POOL_READS,
    POOL_WRITES,
    POOL_ALLOCS,
    POOL_HITS,
    POOL_EVICTIONS,
    POOL_WRITEBACKS,
    POOL_RETRIES,
    POOL_FAULTS,
    POOL_CORRUPTION_DETECTED,
    POOL_HIT_RATE,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate registry entry {name:?}");
        }
    }

    #[test]
    fn names_are_well_formed() {
        for name in ALL {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || c == '.'
                    || c == '_'),
                "metric name {name:?} must be lowercase dotted.snake_case"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
    }
}

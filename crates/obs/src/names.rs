//! Metric-name registry: the single source of truth for every counter,
//! gauge, and histogram name the workspace records.
//!
//! Metric names are stringly-typed at their call sites; a typo there (or
//! in a test's `counter_value` assertion) silently creates a metric nobody
//! else reads. The `hdsj-analyze` rule R6 (`counter_registry`)
//! cross-checks every literal metric name in the workspace against the
//! string literals in **this file** — add new names here first.
//!
//! Naming convention: histograms of durations end in `_ns` (values are
//! nanoseconds); per-phase duration histograms are
//! `<algo>.phase.<phase>_ns`.
//!
//! Dynamically built names (`IoCounters::record_counters` emits
//! `<prefix>.<field>`) cannot be checked lexically; their expansions for
//! the `pool` prefix are listed here so literal references to them (tests,
//! the trace reporter) still verify.

/// Candidate pairs examined by the brute-force join.
pub const BF_CANDIDATES: &str = "bf.candidates";
/// Result pairs emitted by the brute-force join.
pub const BF_RESULTS: &str = "bf.results";

/// Candidate pairs examined by the ε-KDB-tree join.
pub const EKDB_CANDIDATES: &str = "ekdb.candidates";
/// Result pairs emitted by the ε-KDB-tree join.
pub const EKDB_RESULTS: &str = "ekdb.results";

/// Candidate pairs examined by the ε-grid join.
pub const GRID_CANDIDATES: &str = "grid.candidates";
/// Result pairs emitted by the ε-grid join.
pub const GRID_RESULTS: &str = "grid.results";

/// Candidate pairs examined by the multidimensional spatial join (MSJ).
pub const MSJ_CANDIDATES: &str = "msj.candidates";
/// Result pairs emitted by MSJ.
pub const MSJ_RESULTS: &str = "msj.results";
/// Candidates forwarded from MSJ's sweep phase into refinement.
pub const MSJ_REFINE_CANDIDATES: &str = "msj.refine.candidates";
/// Pairs surviving MSJ refinement.
pub const MSJ_REFINE_PAIRS: &str = "msj.refine.pairs";
/// Microseconds MSJ sweep workers spent blocked on the refine channel.
pub const MSJ_SWEEP_SEND_WAIT_US: &str = "msj.sweep.send_wait_us";

/// Chunks dispatched by the hdsj-exec pool.
pub const EXEC_TASKS: &str = "exec.tasks";
/// Worker threads spawned by the hdsj-exec pool.
pub const EXEC_WORKERS: &str = "exec.workers";
/// Times an hdsj-exec worker polled the chunk cursor and found no work
/// left (tail imbalance).
pub const EXEC_STEAL_WAITS: &str = "exec.steal_waits";

/// Candidate pairs examined by the R-tree spatial join (RSJ).
pub const RSJ_CANDIDATES: &str = "rsj.candidates";
/// Result pairs emitted by RSJ.
pub const RSJ_RESULTS: &str = "rsj.results";

/// Candidate pairs examined by the seeded-tree/S3J variant.
pub const S3J_CANDIDATES: &str = "s3j.candidates";
/// Result pairs emitted by the seeded-tree/S3J variant.
pub const S3J_RESULTS: &str = "s3j.results";

/// Candidate pairs examined by the 1-d sort-merge baseline.
pub const SM1D_CANDIDATES: &str = "sm1d.candidates";
/// Result pairs emitted by the 1-d sort-merge baseline.
pub const SM1D_RESULTS: &str = "sm1d.results";

/// Buffer-pool pages read from disk (`IoCounters::reads`).
pub const POOL_READS: &str = "pool.reads";
/// Buffer-pool pages written to disk (`IoCounters::writes`).
pub const POOL_WRITES: &str = "pool.writes";
/// Buffer-pool pages allocated (`IoCounters::allocs`).
pub const POOL_ALLOCS: &str = "pool.allocs";
/// Buffer-pool cache hits (`IoCounters::hits`).
pub const POOL_HITS: &str = "pool.hits";
/// Frames evicted to make room (`IoCounters::evictions`).
pub const POOL_EVICTIONS: &str = "pool.evictions";
/// Dirty frames written back on eviction (`IoCounters::writebacks`).
pub const POOL_WRITEBACKS: &str = "pool.writebacks";
/// Transient-fault retries that eventually succeeded (`IoCounters::retries`).
pub const POOL_RETRIES: &str = "pool.retries";
/// Injected faults observed (`IoCounters::faults`).
pub const POOL_FAULTS: &str = "pool.faults";
/// Checksum mismatches detected on page read (`IoCounters::corruptions`).
pub const POOL_CORRUPTION_DETECTED: &str = "pool.corruption_detected";
/// Buffer-pool hit rate over a run (gauge, 0.0–1.0).
pub const POOL_HIT_RATE: &str = "pool.hit_rate";

/// Disk-read latency per buffer-pool page (histogram, ns).
pub const POOL_READ_NS: &str = "pool.read_ns";
/// Disk-write latency per buffer-pool page (histogram, ns).
pub const POOL_WRITE_NS: &str = "pool.write_ns";
/// Eviction write-back latency per dirty frame (histogram, ns).
pub const POOL_WRITEBACK_NS: &str = "pool.writeback_ns";

/// Per-chunk execution time in the hdsj-exec pool (histogram, ns).
pub const EXEC_CHUNK_NS: &str = "exec.chunk_ns";
/// Time each hdsj-exec worker waited between spawn and its first chunk
/// claim (histogram, ns) — queue/startup latency.
pub const EXEC_QUEUE_WAIT_NS: &str = "exec.queue_wait_ns";

/// Candidate batch sizes received by MSJ refine workers (histogram).
pub const MSJ_REFINE_BATCH: &str = "msj.refine.batch_size";

/// Brute-force join phase duration (histogram, ns).
pub const BF_PHASE_JOIN_NS: &str = "bf.phase.join_ns";
/// 1-d sort-merge sort-phase duration (histogram, ns).
pub const SM1D_PHASE_SORT_NS: &str = "sm1d.phase.sort_ns";
/// 1-d sort-merge sweep-phase duration (histogram, ns).
pub const SM1D_PHASE_SWEEP_NS: &str = "sm1d.phase.sweep_ns";
/// ε-grid build-phase duration (histogram, ns).
pub const GRID_PHASE_BUILD_NS: &str = "grid.phase.build_ns";
/// ε-grid probe-phase duration (histogram, ns).
pub const GRID_PHASE_PROBE_NS: &str = "grid.phase.probe_ns";
/// ε-KDB-tree build-phase duration (histogram, ns).
pub const EKDB_PHASE_BUILD_NS: &str = "ekdb.phase.build_ns";
/// ε-KDB-tree join-phase duration (histogram, ns).
pub const EKDB_PHASE_JOIN_NS: &str = "ekdb.phase.join_ns";
/// R-tree spatial join build-phase duration (histogram, ns).
pub const RSJ_PHASE_BUILD_NS: &str = "rsj.phase.build_ns";
/// R-tree spatial join join-phase duration (histogram, ns).
pub const RSJ_PHASE_JOIN_NS: &str = "rsj.phase.join_ns";
/// S3J assign-phase duration (histogram, ns).
pub const S3J_PHASE_ASSIGN_NS: &str = "s3j.phase.assign_ns";
/// S3J sort-phase duration (histogram, ns).
pub const S3J_PHASE_SORT_NS: &str = "s3j.phase.sort_ns";
/// S3J sweep-phase duration (histogram, ns).
pub const S3J_PHASE_SWEEP_NS: &str = "s3j.phase.sweep_ns";
/// MSJ assign-phase duration (histogram, ns).
pub const MSJ_PHASE_ASSIGN_NS: &str = "msj.phase.assign_ns";
/// MSJ sort-phase duration (histogram, ns).
pub const MSJ_PHASE_SORT_NS: &str = "msj.phase.sort_ns";
/// MSJ sweep-phase duration (histogram, ns).
pub const MSJ_PHASE_SWEEP_NS: &str = "msj.phase.sweep_ns";

/// Cooperative cancellation/deadline polls observed by a query's
/// lifecycle context (`LifecycleStats::polls`).
pub const LIFECYCLE_CANCEL_POLLS: &str = "lifecycle.cancel_polls";
/// Durable checkpoints written by a resumable query
/// (`LifecycleStats::checkpoints`).
pub const LIFECYCLE_CHECKPOINTS: &str = "lifecycle.checkpoints";
/// Manifest files reused (not recomputed) by a resumed join.
pub const JOIN_RESUMED_LEVELS: &str = "join.resumed_levels";

/// Every registered metric name, for exhaustiveness tests.
pub const ALL: &[&str] = &[
    BF_CANDIDATES,
    BF_RESULTS,
    EKDB_CANDIDATES,
    EKDB_RESULTS,
    GRID_CANDIDATES,
    GRID_RESULTS,
    MSJ_CANDIDATES,
    MSJ_RESULTS,
    MSJ_REFINE_CANDIDATES,
    MSJ_REFINE_PAIRS,
    MSJ_SWEEP_SEND_WAIT_US,
    EXEC_TASKS,
    EXEC_WORKERS,
    EXEC_STEAL_WAITS,
    RSJ_CANDIDATES,
    RSJ_RESULTS,
    S3J_CANDIDATES,
    S3J_RESULTS,
    SM1D_CANDIDATES,
    SM1D_RESULTS,
    POOL_READS,
    POOL_WRITES,
    POOL_ALLOCS,
    POOL_HITS,
    POOL_EVICTIONS,
    POOL_WRITEBACKS,
    POOL_RETRIES,
    POOL_FAULTS,
    POOL_CORRUPTION_DETECTED,
    POOL_HIT_RATE,
    POOL_READ_NS,
    POOL_WRITE_NS,
    POOL_WRITEBACK_NS,
    EXEC_CHUNK_NS,
    EXEC_QUEUE_WAIT_NS,
    MSJ_REFINE_BATCH,
    BF_PHASE_JOIN_NS,
    SM1D_PHASE_SORT_NS,
    SM1D_PHASE_SWEEP_NS,
    GRID_PHASE_BUILD_NS,
    GRID_PHASE_PROBE_NS,
    EKDB_PHASE_BUILD_NS,
    EKDB_PHASE_JOIN_NS,
    RSJ_PHASE_BUILD_NS,
    RSJ_PHASE_JOIN_NS,
    S3J_PHASE_ASSIGN_NS,
    S3J_PHASE_SORT_NS,
    S3J_PHASE_SWEEP_NS,
    MSJ_PHASE_ASSIGN_NS,
    MSJ_PHASE_SORT_NS,
    MSJ_PHASE_SWEEP_NS,
    LIFECYCLE_CANCEL_POLLS,
    LIFECYCLE_CHECKPOINTS,
    JOIN_RESUMED_LEVELS,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate registry entry {name:?}");
        }
    }

    #[test]
    fn names_are_well_formed() {
        for name in ALL {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || c == '.'
                    || c == '_'),
                "metric name {name:?} must be lowercase dotted.snake_case"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
    }
}

//! Log-bucketed, lock-free histograms with deterministic merge.
//!
//! The paper's evaluation reports *distributions* — per-phase costs,
//! page-latency spreads, candidate-count skew — not just totals, so the
//! tracer needs a recording primitive that many worker threads can hit
//! concurrently without serializing on a lock and whose aggregate is
//! independent of how the work was scheduled.
//!
//! ## Bucket layout
//!
//! A [`Histogram`] has [`BUCKETS`] (= 64) fixed log₂ buckets over `u64`
//! values: bucket 0 holds exactly the value 0, and bucket `k ≥ 1` holds
//! the range `[2^(k-1), 2^k - 1]` (the last bucket saturates at
//! `u64::MAX`). That spans 1 ns to ~146 years when recording durations in
//! nanoseconds, and 1 to beyond 10⁹ when recording counts — HDR-style
//! coverage with a one-`leading_zeros` index computation and a worst-case
//! relative quantile error of 2× (one bucket).
//!
//! ## Sharding and determinism
//!
//! Recording increments atomics in one of [`SHARDS`] shards; each thread
//! is pinned to a shard by a round-robin thread-local (no `thread::current`
//! — the id source is our own atomic, keeping the R8 determinism surface
//! clean). [`Histogram::snapshot`] folds the shards with commutative
//! operations only (sums, min, max), so the merged [`HistogramSnapshot`]
//! is a pure function of the *multiset* of recorded values: any thread
//! count, interleaving, or shard assignment yields byte-identical
//! snapshots. That property is what lets histograms live inside the
//! byte-deterministic pipelines without widening the R8 exemption surface.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of log₂ buckets (bucket 0 = zero values; bucket k ≥ 1 covers
/// `[2^(k-1), 2^k - 1]`, the last saturating at `u64::MAX`).
pub const BUCKETS: usize = 64;

/// Fixed shard count: small enough to fold cheaply, large enough that the
/// handful of workers the pool spawns rarely share a cache line.
pub const SHARDS: usize = 8;

/// Round-robin shard assignment source. Using our own atomic instead of
/// `thread::current().id()` keeps thread identity out of the deterministic
/// modules (R8) — and the assignment only steers *where* a value is
/// counted, never the merged result.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`,
/// saturating at `BUCKETS - 1`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// The smallest value a bucket can hold.
pub fn bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64 << (idx - 1)
    }
}

/// The largest value a bucket can hold.
pub fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

#[derive(Debug)]
struct Shard {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// `u64::MAX` while the shard is empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free, sharded, log-bucketed histogram. Cheap to record into from
/// any number of threads; see the module docs for the bucket layout and
/// the determinism contract of [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    shards: [Shard; SHARDS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            shards: std::array::from_fn(|_| Shard::new()),
        }
    }

    /// Records one value (four relaxed RMWs on the calling thread's shard).
    pub fn record(&self, value: u64) {
        let shard = &self.shards[SHARD.with(|&s| s)];
        let bucket = &shard.counts[bucket_index(value)];
        bucket.fetch_add(1, Ordering::Relaxed);
        let sum = &shard.sum;
        sum.fetch_add(value, Ordering::Relaxed);
        let min = &shard.min;
        min.fetch_min(value, Ordering::Relaxed);
        let max = &shard.max;
        max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds a previously taken snapshot into this histogram (used to fold
    /// always-on storage-layer histograms into a tracer's registry after a
    /// run). Deterministic for the same reason recording is: every merged
    /// quantity is commutative.
    pub fn merge(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        let shard = &self.shards[0];
        for (idx, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                let bucket = &shard.counts[idx];
                bucket.fetch_add(c, Ordering::Relaxed);
            }
        }
        let sum = &shard.sum;
        sum.fetch_add(snap.sum, Ordering::Relaxed);
        let min = &shard.min;
        min.fetch_min(snap.min, Ordering::Relaxed);
        let max = &shard.max;
        max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Folds the shards into one deterministic snapshot: identical for any
    /// thread count and interleaving that recorded the same multiset of
    /// values.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        let mut min = u64::MAX;
        for shard in &self.shards {
            for (idx, bucket) in shard.counts.iter().enumerate() {
                let c = bucket.load(Ordering::Relaxed);
                snap.buckets[idx] = snap.buckets[idx].wrapping_add(c);
                snap.count = snap.count.wrapping_add(c);
            }
            let sum = &shard.sum;
            snap.sum = snap.sum.wrapping_add(sum.load(Ordering::Relaxed));
            let smin = &shard.min;
            min = min.min(smin.load(Ordering::Relaxed));
            let smax = &shard.max;
            snap.max = snap.max.max(smax.load(Ordering::Relaxed));
        }
        snap.min = if snap.count == 0 { 0 } else { min };
        snap
    }

    /// Zeroes every shard (mirrors `IoStats::reset`).
    pub fn reset(&self) {
        for shard in &self.shards {
            for bucket in &shard.counts {
                bucket.store(0, Ordering::Relaxed);
            }
            let sum = &shard.sum;
            sum.store(0, Ordering::Relaxed);
            let min = &shard.min;
            min.store(u64::MAX, Ordering::Relaxed);
            let max = &shard.max;
            max.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable, merged view of a [`Histogram`]: total count and sum, the
/// exact min/max, and the per-bucket counts. Equality is byte equality —
/// the determinism tests compare snapshots directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// 0 when the histogram is empty.
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The q-quantile (`q ∈ [0, 1]`), estimated by linear interpolation
    /// inside the bucket holding the rank-⌈q·count⌉ value and clamped to
    /// the exact `[min, max]`. The estimate always lands inside the same
    /// log₂ bucket as the true order statistic, bounding relative error
    /// at 2×.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lower(idx);
                let hi = bucket_upper(idx);
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
                return (est as u64).clamp(self.min.max(lo), self.max.min(hi));
            }
            seen += c;
        }
        self.max
    }

    /// Adds another snapshot into this one (commutative, like every other
    /// merge in this module).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        for (idx, &c) in other.buckets.iter().enumerate() {
            self.buckets[idx] = self.buckets[idx].wrapping_add(c);
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(index, count)` pairs — the JSONL wire
    /// form.
    pub fn sparse_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect()
    }

    /// Rebuilds a snapshot from its wire form. The bucket counts are
    /// authoritative for `count`; a mismatch (or an out-of-range index) is
    /// a corrupt event.
    pub fn from_sparse(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: &[(u64, u64)],
    ) -> Result<HistogramSnapshot, String> {
        let mut snap = HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets: [0; BUCKETS],
        };
        let mut total = 0u64;
        for &(idx, c) in sparse {
            let idx = usize::try_from(idx)
                .ok()
                .filter(|&i| i < BUCKETS)
                .ok_or_else(|| format!("hist bucket index {idx} out of range"))?;
            snap.buckets[idx] = snap.buckets[idx].wrapping_add(c);
            total = total.wrapping_add(c);
        }
        if total != count {
            return Err(format!(
                "hist bucket counts sum to {total}, event says count={count}"
            ));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(idx)), idx, "lower({idx})");
            assert_eq!(bucket_index(bucket_upper(idx)), idx, "upper({idx})");
        }
        // Adjacent buckets tile with no gap.
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(idx) + 1, bucket_lower(idx + 1));
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let h = Histogram::new();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().min, 0);
        for v in [0u64, 1, 7, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2008);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[bucket_index(1000)], 2);
        assert!((s.mean() - 401.6).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate_and_clamp() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Every estimate lands in the same bucket as the exact order
        // statistic (2× relative error bound).
        for (q, exact) in [(0.5, 50u64), (0.9, 90), (0.99, 99), (1.0, 100)] {
            let est = s.percentile(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(HistogramSnapshot::empty().percentile(0.5), 0);
    }

    #[test]
    fn single_value_histogram_is_exact_at_every_quantile() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(42);
        }
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 42, "q={q}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [3u64, 9, 27] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 81] {
            b.record(v);
            both.record(v);
        }
        let merged = {
            let target = Histogram::new();
            target.merge(&a.snapshot());
            target.merge(&b.snapshot());
            target.snapshot()
        };
        assert_eq!(merged, both.snapshot());
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap, both.snapshot());
    }

    #[test]
    fn reset_empties_every_shard() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..100u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 400);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::empty());
    }

    #[test]
    fn sparse_round_trip_and_corruption_detection() {
        let h = Histogram::new();
        for v in [0u64, 5, 5, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let back =
            HistogramSnapshot::from_sparse(s.count, s.sum, s.min, s.max, &s.sparse_buckets())
                .unwrap();
        assert_eq!(back, s);
        assert!(HistogramSnapshot::from_sparse(2, 0, 0, 0, &[(1, 1)]).is_err());
        assert!(HistogramSnapshot::from_sparse(1, 0, 0, 0, &[(64, 1)]).is_err());
    }
}

//! Hand-rolled JSON encoding/decoding for trace events.
//!
//! The workspace builds with no external dependencies, so the JSONL codec
//! is written out by hand: an event encoder producing one compact object
//! per line, and a small recursive-descent parser covering the JSON subset
//! those lines use (objects, arrays, strings with escapes, numbers, bools,
//! null). The parser is general enough for any well-formed JSON document,
//! which keeps the round-trip property testable.

use crate::{AttrValue, CounterEvent, Event, GaugeEvent, HistEvent, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Encoding

/// Escapes and quotes a string per JSON.
pub fn encode_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes an `f64` so it parses back as a JSON number (`NaN`/`inf` have no
/// JSON representation and encode as `null`).
pub fn encode_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `format!("{}", 1.0)` yields "1"; keep a decimal point so readers
        // see a float.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn encode_attrs(attrs: &[(String, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&encode_str(key));
        out.push(':');
        match value {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::F64(v) => out.push_str(&encode_f64(*v)),
            AttrValue::Str(s) => out.push_str(&encode_str(s)),
        }
    }
    out.push('}');
    out
}

/// One event as a single-line JSON object (no trailing newline).
pub fn encode_event(event: &Event) -> String {
    match event {
        Event::Span(s) => {
            let mut out = format!("{{\"t\":\"span\",\"id\":{}", s.id);
            if let Some(parent) = s.parent {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            let _ = write!(
                out,
                ",\"name\":{},\"start_us\":{},\"dur_us\":{}",
                encode_str(&s.name),
                s.start_us,
                s.dur_us
            );
            if !s.attrs.is_empty() {
                let _ = write!(out, ",\"attrs\":{}", encode_attrs(&s.attrs));
            }
            out.push('}');
            out
        }
        Event::Counter(c) => format!(
            "{{\"t\":\"counter\",\"name\":{},\"value\":{}}}",
            encode_str(&c.name),
            c.value
        ),
        Event::Gauge(g) => format!(
            "{{\"t\":\"gauge\",\"name\":{},\"value\":{}}}",
            encode_str(&g.name),
            encode_f64(g.value)
        ),
        Event::Hist(h) => {
            let mut out = format!(
                "{{\"t\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                encode_str(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (i, (idx, count)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{count}]");
            }
            out.push_str("]}");
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing

/// A parsed JSON value. Integers that fit `u64` are kept exact (`U64`);
/// everything else numeric becomes `F64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the full input.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our encoder;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The input originated as a
                // &str, so a valid scalar starts here; decode it from its
                // ≤4-byte prefix instead of trusting that invariant with
                // `unsafe`. The fallback slice up to `valid_up_to()` is
                // valid UTF-8 by construction, so the second parse cannot
                // fail.
                let rest = &bytes[*pos..];
                let take = rest.len().min(4);
                let c = match std::str::from_utf8(&rest[..take]) {
                    Ok(s) => s.chars().next(),
                    Err(e) => std::str::from_utf8(&rest[..e.valid_up_to()])
                        .ok()
                        .and_then(|s| s.chars().next()),
                }
                .ok_or("invalid utf-8 in string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|e| format!("invalid number '{text}': {e}"))
}

// ---------------------------------------------------------------------------
// Event decoding

/// Decodes one JSONL line back into an [`Event`] — the inverse of
/// [`encode_event`].
pub fn decode_event(line: &str) -> Result<Event, String> {
    let value = parse(line)?;
    let tag = value
        .get("t")
        .and_then(Value::as_str)
        .ok_or("event missing \"t\" tag")?;
    match tag {
        "span" => {
            let attrs = match value.get("attrs") {
                None => Vec::new(),
                Some(Value::Obj(map)) => map
                    .iter()
                    .map(|(k, v)| {
                        let attr = match v {
                            Value::U64(n) => AttrValue::U64(*n),
                            Value::F64(f) => AttrValue::F64(*f),
                            Value::Str(s) => AttrValue::Str(s.clone()),
                            other => AttrValue::Str(format!("{other:?}")),
                        };
                        (k.clone(), attr)
                    })
                    .collect(),
                Some(other) => return Err(format!("attrs must be an object, got {other:?}")),
            };
            Ok(Event::Span(SpanEvent {
                id: value.get("id").and_then(Value::as_u64).ok_or("span.id")?,
                parent: value.get("parent").and_then(Value::as_u64),
                name: value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("span.name")?
                    .to_string(),
                start_us: value
                    .get("start_us")
                    .and_then(Value::as_u64)
                    .ok_or("span.start_us")?,
                dur_us: value
                    .get("dur_us")
                    .and_then(Value::as_u64)
                    .ok_or("span.dur_us")?,
                attrs,
            }))
        }
        "counter" => Ok(Event::Counter(CounterEvent {
            name: value
                .get("name")
                .and_then(Value::as_str)
                .ok_or("counter.name")?
                .to_string(),
            value: value
                .get("value")
                .and_then(Value::as_u64)
                .ok_or("counter.value")?,
        })),
        "gauge" => Ok(Event::Gauge(GaugeEvent {
            name: value
                .get("name")
                .and_then(Value::as_str)
                .ok_or("gauge.name")?
                .to_string(),
            value: value
                .get("value")
                .and_then(Value::as_f64)
                .ok_or("gauge.value")?,
        })),
        "hist" => {
            let buckets = match value.get("buckets") {
                None => Vec::new(),
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(|pair| match pair {
                        Value::Arr(kv) if kv.len() == 2 => {
                            match (kv[0].as_u64(), kv[1].as_u64()) {
                                (Some(idx), Some(count)) => Ok((idx, count)),
                                _ => Err("hist.buckets entries must be u64 pairs".to_string()),
                            }
                        }
                        other => {
                            Err(format!("hist.buckets entry must be a pair, got {other:?}"))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(other) => {
                    return Err(format!("hist.buckets must be an array, got {other:?}"))
                }
            };
            Ok(Event::Hist(HistEvent {
                name: value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("hist.name")?
                    .to_string(),
                count: value
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or("hist.count")?,
                sum: value.get("sum").and_then(Value::as_u64).ok_or("hist.sum")?,
                min: value.get("min").and_then(Value::as_u64).ok_or("hist.min")?,
                max: value.get("max").and_then(Value::as_u64).ok_or("hist.max")?,
                buckets,
            }))
        }
        other => Err(format!("unknown event tag {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "a \"quoted\" line\nwith\ttabs \\ and unicode: ε";
        let encoded = encode_str(original);
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed, Value::Str(original.to_string()));
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse("0").unwrap(), Value::U64(0));
        assert_eq!(parse("-3.5").unwrap(), Value::F64(-3.5));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert!(parse("-").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn documents_parse_structurally() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":"x"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d").and_then(Value::as_str), Some("x"));
        match v.get("a") {
            Some(Value::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
        assert!(parse(r#"{"a":1"#).is_err());
        assert!(parse("[1,2] tail").is_err());
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            Event::Span(SpanEvent {
                id: 7,
                parent: Some(3),
                name: "sweep \"inner\"".to_string(),
                start_us: 1234,
                dur_us: u64::MAX,
                attrs: vec![
                    ("pairs".to_string(), AttrValue::U64(42)),
                    ("rate".to_string(), AttrValue::F64(0.5)),
                    ("algo".to_string(), AttrValue::Str("MSJ".to_string())),
                ],
            }),
            Event::Span(SpanEvent {
                id: 1,
                parent: None,
                name: "join".to_string(),
                start_us: 0,
                dur_us: 0,
                attrs: Vec::new(),
            }),
            Event::Counter(CounterEvent {
                name: "pool.hits".to_string(),
                value: u64::MAX,
            }),
            Event::Gauge(GaugeEvent {
                name: "precision".to_string(),
                value: 0.125,
            }),
            Event::Hist(HistEvent {
                name: "pool.read_ns".to_string(),
                count: 12,
                sum: 48_000,
                min: 900,
                max: 9_000,
                buckets: vec![(10, 7), (14, 5)],
            }),
            Event::Hist(HistEvent {
                name: "empty".to_string(),
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            }),
        ];
        for event in events {
            let line = encode_event(&event);
            let mut back = decode_event(&line).unwrap();
            // Attribute order is not part of the schema (objects are
            // unordered); compare sorted.
            if let (Event::Span(a), Event::Span(b)) = (&event, &mut back) {
                let mut want = a.clone();
                want.attrs.sort_by(|x, y| x.0.cmp(&y.0));
                b.attrs.sort_by(|x, y| x.0.cmp(&y.0));
                assert_eq!(&want, b);
            } else {
                assert_eq!(event, back);
            }
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(encode_f64(1.0), "1.0");
        assert_eq!(encode_f64(0.25), "0.25");
        assert_eq!(encode_f64(f64::NAN), "null");
    }
}

//! Trace-file analysis: parse a JSONL trace back into events and render a
//! flamegraph-style phase tree with top counters, a CPU/IO/Wait phase
//! table ([`phase_breakdown`]), and the critical path ([`critical_path`]).
//!
//! This is the consumer side of the [`crate::JsonlSink`] schema, used by
//! the `hdsj trace-report` and `hdsj stats` subcommands and by tests that
//! check the JSONL round trip.

use crate::json;
use crate::{
    AttrValue, CounterEvent, Event, GaugeEvent, HistEvent, MetricsSnapshot, PhaseClass,
    SpanEvent, PHASE_ATTR,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fully parsed trace file.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub spans: Vec<SpanEvent>,
    pub counters: Vec<CounterEvent>,
    pub gauges: Vec<GaugeEvent>,
    pub hists: Vec<HistEvent>,
}

impl Trace {
    /// Parses JSONL text (one event object per non-empty line).
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match json::decode_event(line).map_err(|e| format!("line {}: {e}", lineno + 1))? {
                Event::Span(s) => trace.spans.push(s),
                Event::Counter(c) => trace.counters.push(c),
                Event::Gauge(g) => trace.gauges.push(g),
                Event::Hist(h) => trace.hists.push(h),
            }
        }
        Ok(trace)
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The first span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&SpanEvent> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Root spans (no parent), ordered by start time.
    pub fn roots(&self) -> Vec<&SpanEvent> {
        let mut roots: Vec<&SpanEvent> =
            self.spans.iter().filter(|s| s.parent.is_none()).collect();
        roots.sort_by_key(|s| s.start_us);
        roots
    }

    /// The trace's metric events (counters, gauges, histograms) as one
    /// snapshot — what `hdsj stats` renders. A gauge recorded several
    /// times keeps its last value; a malformed hist event is an error.
    pub fn metrics_snapshot(&self) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for c in &self.counters {
            counters.insert(c.name.clone(), c.value);
        }
        snap.counters = counters.into_iter().collect();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        for g in &self.gauges {
            gauges.insert(g.name.clone(), g.value);
        }
        snap.gauges = gauges.into_iter().collect();
        let mut hists = BTreeMap::new();
        for h in &self.hists {
            let parsed = h
                .to_snapshot()
                .map_err(|e| format!("hist {:?}: {e}", h.name))?;
            hists.insert(h.name.clone(), parsed);
        }
        snap.hists = hists.into_iter().collect();
        Ok(snap)
    }
}

/// The span's own `phase` attribute, if set and recognized.
fn span_class(span: &SpanEvent) -> Option<PhaseClass> {
    span.attrs.iter().find_map(|(k, v)| match v {
        AttrValue::Str(s) if k == PHASE_ATTR => PhaseClass::parse(s),
        _ => None,
    })
}

/// Self-time of a span: its duration minus the duration of its direct
/// children. Saturating, so overlapping (parallel) children attribute 0
/// rather than underflowing.
fn self_us(span: &SpanEvent, children: &BTreeMap<u64, Vec<&SpanEvent>>) -> u64 {
    let child_total: u64 = children
        .get(&span.id)
        .map(|kids| kids.iter().map(|c| c.dur_us).sum())
        .unwrap_or(0);
    span.dur_us.saturating_sub(child_total)
}

fn child_index(trace: &Trace) -> BTreeMap<u64, Vec<&SpanEvent>> {
    let mut children: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for span in &trace.spans {
        if let Some(parent) = span.parent {
            children.entry(parent).or_default().push(span);
        }
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|s| s.start_us);
    }
    children
}

// ---------------------------------------------------------------------------
// Phase cost attribution (`trace-report --phases`)

/// One row of a [`PhaseBreakdown`]: total self-time attributed to one
/// (span name, class) pair within a root's tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    pub name: String,
    pub class: PhaseClass,
    pub self_us: u64,
}

/// CPU/IO/Wait attribution for one root span's tree, after the paper's
/// per-phase cost decomposition.
#[derive(Clone, Debug)]
pub struct PhaseBreakdown {
    /// Root span name.
    pub root: String,
    /// Root span wall-clock duration.
    pub root_dur_us: u64,
    /// Self-time per (span name, class), largest first.
    pub rows: Vec<PhaseRow>,
    /// Totals per class: `[cpu, io, wait]` microseconds.
    pub class_us: [u64; 3],
}

impl PhaseBreakdown {
    /// Total attributed time across all classes. For a serial run with
    /// strictly nested spans this equals `root_dur_us` exactly; parallel
    /// children can only lose (never double-count) time.
    pub fn total_us(&self) -> u64 {
        self.class_us.iter().sum()
    }
}

/// Attributes every span's *self-time* (duration minus direct children)
/// to its phase class — its own `phase` attribute if set, else the
/// nearest classed ancestor's, else CPU — one breakdown per root span.
pub fn phase_breakdown(trace: &Trace) -> Vec<PhaseBreakdown> {
    let children = child_index(trace);

    fn walk<'t>(
        span: &'t SpanEvent,
        inherited: PhaseClass,
        children: &BTreeMap<u64, Vec<&'t SpanEvent>>,
        acc: &mut BTreeMap<(String, PhaseClass), u64>,
        class_us: &mut [u64; 3],
    ) {
        let class = span_class(span).unwrap_or(inherited);
        let own = self_us(span, children);
        *acc.entry((span.name.clone(), class)).or_insert(0) += own;
        class_us[class as usize] += own;
        if let Some(kids) = children.get(&span.id) {
            for child in kids {
                walk(child, class, children, acc, class_us);
            }
        }
    }

    trace
        .roots()
        .into_iter()
        .map(|root| {
            let mut acc = BTreeMap::new();
            let mut class_us = [0u64; 3];
            walk(root, PhaseClass::Cpu, &children, &mut acc, &mut class_us);
            let mut rows: Vec<PhaseRow> = acc
                .into_iter()
                .map(|((name, class), self_us)| PhaseRow {
                    name,
                    class,
                    self_us,
                })
                .collect();
            rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
            PhaseBreakdown {
                root: root.name.clone(),
                root_dur_us: root.dur_us,
                rows,
                class_us,
            }
        })
        .collect()
}

/// Renders [`phase_breakdown`] as the `--phases` table.
pub fn render_phases(trace: &Trace) -> String {
    let mut out = String::new();
    let breakdowns = phase_breakdown(trace);
    if breakdowns.is_empty() {
        let _ = writeln!(out, "(no root spans)");
        return out;
    }
    for b in breakdowns {
        let _ = writeln!(out, "{}  (wall {})", b.root, fmt_us(b.root_dur_us));
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>12} {:>8}",
            "phase", "class", "self", "share"
        );
        let total = b.total_us().max(1);
        for row in &b.rows {
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>12} {:>7.1}%",
                row.name,
                row.class.as_str(),
                fmt_us(row.self_us),
                100.0 * row.self_us as f64 / total as f64
            );
        }
        let _ = writeln!(out, "  {:-<58}", "");
        for (class, us) in [PhaseClass::Cpu, PhaseClass::Io, PhaseClass::Wait]
            .iter()
            .zip(b.class_us.iter())
        {
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>12} {:>7.1}%",
                "total",
                class.as_str(),
                fmt_us(*us),
                100.0 * *us as f64 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "  attributed {} of {} root wall time",
            fmt_us(b.total_us()),
            fmt_us(b.root_dur_us)
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Critical path (`trace-report --critical-path`)

/// One node on a critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathNode {
    pub name: String,
    pub dur_us: u64,
    /// Duration minus direct children — the time this node itself adds.
    pub self_us: u64,
}

/// The longest chain through each root's span tree, descending into the
/// longest child at every level (ties break to the earliest start).
pub fn critical_path(trace: &Trace) -> Vec<Vec<PathNode>> {
    let children = child_index(trace);
    trace
        .roots()
        .into_iter()
        .map(|root| {
            let mut path = Vec::new();
            let mut cur = root;
            loop {
                path.push(PathNode {
                    name: cur.name.clone(),
                    dur_us: cur.dur_us,
                    self_us: self_us(cur, &children),
                });
                match children
                    .get(&cur.id)
                    .and_then(|kids| kids.iter().max_by_key(|s| s.dur_us))
                {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            path
        })
        .collect()
}

/// Renders [`critical_path`] as the `--critical-path` listing.
pub fn render_critical_path(trace: &Trace) -> String {
    let mut out = String::new();
    let paths = critical_path(trace);
    if paths.is_empty() {
        let _ = writeln!(out, "(no root spans)");
        return out;
    }
    for path in paths {
        let root_dur = path.first().map(|n| n.dur_us).unwrap_or(0).max(1);
        let _ = writeln!(
            out,
            "critical path ({} nodes, {} wall):",
            path.len(),
            fmt_us(root_dur)
        );
        let _ = writeln!(
            out,
            "  {:<32} {:>12} {:>12} {:>8}",
            "span", "dur", "self", "self%"
        );
        for (depth, node) in path.iter().enumerate() {
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            let _ = writeln!(
                out,
                "  {:<32} {:>12} {:>12} {:>7.1}%",
                label,
                fmt_us(node.dur_us),
                fmt_us(node.self_us),
                100.0 * node.self_us as f64 / root_dur as f64
            );
        }
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn fmt_attrs(span: &SpanEvent) -> String {
    if span.attrs.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = span
        .attrs
        .iter()
        .map(|(k, v)| match v {
            crate::AttrValue::U64(n) => format!("{k}={n}"),
            crate::AttrValue::F64(f) => format!("{k}={f:.4}"),
            crate::AttrValue::Str(s) => format!("{k}={s}"),
        })
        .collect();
    format!("  [{}]", parts.join(" "))
}

const BAR_WIDTH: usize = 24;

fn render_span(
    out: &mut String,
    span: &SpanEvent,
    children: &BTreeMap<u64, Vec<&SpanEvent>>,
    depth: usize,
    root_dur: u64,
) {
    let share = if root_dur == 0 {
        0.0
    } else {
        span.dur_us as f64 / root_dur as f64
    };
    let filled = ((share * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    let bar: String = std::iter::repeat_n('█', filled)
        .chain(std::iter::repeat_n('·', BAR_WIDTH - filled))
        .collect();
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", span.name);
    let _ = writeln!(
        out,
        "{label:<32} {bar} {:>10} {:>6.1}%{}",
        fmt_us(span.dur_us),
        share * 100.0,
        fmt_attrs(span)
    );
    if let Some(kids) = children.get(&span.id) {
        for child in kids {
            render_span(out, child, children, depth + 1, root_dur);
        }
    }
}

/// Renders the span tree (one indented line per span, with a duration bar
/// scaled to its root) followed by the top `max_counters` counters and all
/// gauges.
pub fn render(trace: &Trace, max_counters: usize) -> String {
    let mut out = String::new();
    let children = child_index(trace);

    let roots = trace.roots();
    if roots.is_empty() && !trace.spans.is_empty() {
        let _ = writeln!(out, "(no root spans; {} orphaned)", trace.spans.len());
    }
    for root in roots {
        render_span(&mut out, root, &children, 0, root.dur_us.max(1));
    }

    if !trace.counters.is_empty() {
        let mut counters = trace.counters.clone();
        counters.sort_by(|a, b| b.value.cmp(&a.value).then_with(|| a.name.cmp(&b.name)));
        let _ = writeln!(out, "\ntop counters:");
        for c in counters.iter().take(max_counters) {
            let _ = writeln!(out, "  {:<40} {:>14}", c.name, c.value);
        }
        if counters.len() > max_counters {
            let _ = writeln!(out, "  … {} more", counters.len() - max_counters);
        }
    }

    if !trace.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges:");
        for g in &trace.gauges {
            let _ = writeln!(out, "  {:<40} {:>14.6}", g.name, g.value);
        }
    }

    if !trace.hists.is_empty() {
        let _ = writeln!(out, "\nhistograms:");
        for h in &trace.hists {
            match h.to_snapshot() {
                Ok(s) => {
                    let _ = writeln!(
                        out,
                        "  {:<40} n={:<8} p50={:<10} p90={:<10} p99={:<10} max={}",
                        h.name,
                        s.count,
                        s.percentile(0.5),
                        s.percentile(0.9),
                        s.percentile(0.99),
                        s.max
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  {:<40} (malformed: {e})", h.name);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_trace() -> Trace {
        let (tracer, sink) = Tracer::memory();
        {
            let mut root = tracer.span("join");
            root.attr_str("algo", "MSJ");
            {
                let assign = root.child("assign");
                assign.finish();
            }
            {
                let sort = root.child("sort");
                let _merge = sort.child("merge");
            }
            tracer.counter("pairs").add(10);
            tracer.counter("pool.hits").add(99);
            tracer.gauge("precision", 0.5);
        }
        tracer.flush();
        // Round-trip through the JSONL codec to exercise the parser.
        let text: String = sink
            .events()
            .iter()
            .map(|e| crate::json::encode_event(e) + "\n")
            .collect();
        Trace::parse(&text).unwrap()
    }

    #[test]
    fn jsonl_round_trip_preserves_structure() {
        let trace = sample_trace();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.roots().len(), 1);
        let root = trace.span("join").unwrap();
        assert!(root.parent.is_none());
        let sort = trace.span("sort").unwrap();
        assert_eq!(sort.parent, Some(root.id));
        let merge = trace.span("merge").unwrap();
        assert_eq!(merge.parent, Some(sort.id));
        assert_eq!(trace.counter("pairs"), Some(10));
        assert_eq!(trace.counter("pool.hits"), Some(99));
        assert_eq!(trace.gauges.len(), 1);
    }

    #[test]
    fn render_shows_every_span_and_top_counters() {
        let trace = sample_trace();
        let text = render(&trace, 10);
        for name in ["join", "assign", "sort", "merge"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("pool.hits"));
        assert!(text.contains("precision"));
        assert!(text.contains('%'));
        // Children are indented under their parents.
        let join_line = text
            .lines()
            .position(|l| l.trim_start().starts_with("join"))
            .unwrap();
        let merge_line = text.lines().position(|l| l.contains("merge")).unwrap();
        assert!(merge_line > join_line);
    }

    #[test]
    fn counter_list_truncates() {
        let mut trace = Trace::default();
        for i in 0..10 {
            trace.counters.push(crate::CounterEvent {
                name: format!("c{i}"),
                value: i,
            });
        }
        let text = render(&trace, 3);
        assert!(text.contains("… 7 more"));
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = Trace::parse("{\"t\":\"span\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = Trace::parse("{\"t\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let trace =
            Trace::parse("\n\n{\"t\":\"gauge\",\"name\":\"g\",\"value\":1.5}\n\n").unwrap();
        assert_eq!(trace.gauges.len(), 1);
    }

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_us: u64,
        dur_us: u64,
        class: Option<PhaseClass>,
    ) -> SpanEvent {
        SpanEvent {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us,
            attrs: class
                .map(|c| {
                    vec![(
                        PHASE_ATTR.to_string(),
                        AttrValue::Str(c.as_str().to_string()),
                    )]
                })
                .unwrap_or_default(),
        }
    }

    /// A serial MSJ-shaped tree: join(1000) → assign(cpu,200),
    /// sort(io,500)→merge(100, inherits io), sweep(cpu,250).
    fn phased_trace() -> Trace {
        Trace {
            spans: vec![
                span(1, None, "join", 0, 1000, None),
                span(2, Some(1), "assign", 0, 200, Some(PhaseClass::Cpu)),
                span(3, Some(1), "sort", 200, 500, Some(PhaseClass::Io)),
                span(4, Some(3), "merge", 300, 100, None),
                span(5, Some(1), "sweep", 700, 250, Some(PhaseClass::Cpu)),
            ],
            ..Trace::default()
        }
    }

    #[test]
    fn phase_breakdown_attributes_self_time_with_inheritance() {
        let trace = phased_trace();
        let breakdowns = phase_breakdown(&trace);
        assert_eq!(breakdowns.len(), 1);
        let b = &breakdowns[0];
        assert_eq!(b.root, "join");
        assert_eq!(b.root_dur_us, 1000);
        // Self-times: join 1000-950=50 (cpu, root default), assign 200,
        // sort 400, merge 100 (inherits io), sweep 250.
        // cpu = 50+200+250 = 500; io = 400+100 = 500; wait = 0.
        assert_eq!(b.class_us, [500, 500, 0]);
        // Serial nested tree: attribution is exact.
        assert_eq!(b.total_us(), b.root_dur_us);
        let sort_row = b.rows.iter().find(|r| r.name == "sort").expect("sort row");
        assert_eq!(sort_row.class, PhaseClass::Io);
        assert_eq!(sort_row.self_us, 400);
        let merge_row = b.rows.iter().find(|r| r.name == "merge").unwrap();
        assert_eq!(merge_row.class, PhaseClass::Io);

        let text = render_phases(&trace);
        assert!(text.contains("join"), "{text}");
        assert!(text.contains("io"), "{text}");
        assert!(text.contains("attributed"), "{text}");
    }

    #[test]
    fn critical_path_follows_longest_children() {
        let trace = phased_trace();
        let paths = critical_path(&trace);
        assert_eq!(paths.len(), 1);
        let names: Vec<&str> = paths[0].iter().map(|n| n.name.as_str()).collect();
        // sort (500) beats sweep (250) and assign (200); merge is sort's
        // only child.
        assert_eq!(names, vec!["join", "sort", "merge"]);
        assert_eq!(paths[0][1].self_us, 400);
        let text = render_critical_path(&trace);
        assert!(text.contains("critical path (3 nodes"), "{text}");
    }

    #[test]
    fn trace_metrics_snapshot_collects_all_kinds() {
        let text = "\
{\"t\":\"counter\",\"name\":\"pairs\",\"value\":5}\n\
{\"t\":\"gauge\",\"name\":\"rate\",\"value\":0.25}\n\
{\"t\":\"gauge\",\"name\":\"rate\",\"value\":0.75}\n\
{\"t\":\"hist\",\"name\":\"lat\",\"count\":2,\"sum\":10,\"min\":2,\"max\":8,\"buckets\":[[2,1],[4,1]]}\n";
        let trace = Trace::parse(text).unwrap();
        let snap = trace.metrics_snapshot().unwrap();
        assert_eq!(snap.counters, vec![("pairs".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("rate".to_string(), 0.75)]);
        assert_eq!(snap.hist("lat").unwrap().count, 2);
        assert!(snap.to_prometheus().contains("hdsj_lat_count 2"));

        // A malformed hist (bucket counts don't sum to count) is an error.
        let bad = "{\"t\":\"hist\",\"name\":\"lat\",\"count\":9,\"sum\":10,\"min\":2,\"max\":8,\"buckets\":[[2,1]]}";
        let trace = Trace::parse(bad).unwrap();
        assert!(trace.metrics_snapshot().is_err());
    }
}

//! Trace-file analysis: parse a JSONL trace back into events and render a
//! flamegraph-style phase tree with top counters.
//!
//! This is the consumer side of the [`crate::JsonlSink`] schema, used by
//! the `hdsj trace-report` subcommand and by tests that check the JSONL
//! round trip.

use crate::json;
use crate::{CounterEvent, Event, GaugeEvent, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fully parsed trace file.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub spans: Vec<SpanEvent>,
    pub counters: Vec<CounterEvent>,
    pub gauges: Vec<GaugeEvent>,
}

impl Trace {
    /// Parses JSONL text (one event object per non-empty line).
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match json::decode_event(line).map_err(|e| format!("line {}: {e}", lineno + 1))? {
                Event::Span(s) => trace.spans.push(s),
                Event::Counter(c) => trace.counters.push(c),
                Event::Gauge(g) => trace.gauges.push(g),
            }
        }
        Ok(trace)
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The first span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&SpanEvent> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Root spans (no parent), ordered by start time.
    pub fn roots(&self) -> Vec<&SpanEvent> {
        let mut roots: Vec<&SpanEvent> =
            self.spans.iter().filter(|s| s.parent.is_none()).collect();
        roots.sort_by_key(|s| s.start_us);
        roots
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn fmt_attrs(span: &SpanEvent) -> String {
    if span.attrs.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = span
        .attrs
        .iter()
        .map(|(k, v)| match v {
            crate::AttrValue::U64(n) => format!("{k}={n}"),
            crate::AttrValue::F64(f) => format!("{k}={f:.4}"),
            crate::AttrValue::Str(s) => format!("{k}={s}"),
        })
        .collect();
    format!("  [{}]", parts.join(" "))
}

const BAR_WIDTH: usize = 24;

fn render_span(
    out: &mut String,
    span: &SpanEvent,
    children: &BTreeMap<u64, Vec<&SpanEvent>>,
    depth: usize,
    root_dur: u64,
) {
    let share = if root_dur == 0 {
        0.0
    } else {
        span.dur_us as f64 / root_dur as f64
    };
    let filled = ((share * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    let bar: String = std::iter::repeat_n('█', filled)
        .chain(std::iter::repeat_n('·', BAR_WIDTH - filled))
        .collect();
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", span.name);
    let _ = writeln!(
        out,
        "{label:<32} {bar} {:>10} {:>6.1}%{}",
        fmt_us(span.dur_us),
        share * 100.0,
        fmt_attrs(span)
    );
    if let Some(kids) = children.get(&span.id) {
        for child in kids {
            render_span(out, child, children, depth + 1, root_dur);
        }
    }
}

/// Renders the span tree (one indented line per span, with a duration bar
/// scaled to its root) followed by the top `max_counters` counters and all
/// gauges.
pub fn render(trace: &Trace, max_counters: usize) -> String {
    let mut out = String::new();
    let mut children: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for span in &trace.spans {
        if let Some(parent) = span.parent {
            children.entry(parent).or_default().push(span);
        }
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|s| s.start_us);
    }

    let roots = trace.roots();
    if roots.is_empty() && !trace.spans.is_empty() {
        let _ = writeln!(out, "(no root spans; {} orphaned)", trace.spans.len());
    }
    for root in roots {
        render_span(&mut out, root, &children, 0, root.dur_us.max(1));
    }

    if !trace.counters.is_empty() {
        let mut counters = trace.counters.clone();
        counters.sort_by(|a, b| b.value.cmp(&a.value).then_with(|| a.name.cmp(&b.name)));
        let _ = writeln!(out, "\ntop counters:");
        for c in counters.iter().take(max_counters) {
            let _ = writeln!(out, "  {:<40} {:>14}", c.name, c.value);
        }
        if counters.len() > max_counters {
            let _ = writeln!(out, "  … {} more", counters.len() - max_counters);
        }
    }

    if !trace.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges:");
        for g in &trace.gauges {
            let _ = writeln!(out, "  {:<40} {:>14.6}", g.name, g.value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_trace() -> Trace {
        let (tracer, sink) = Tracer::memory();
        {
            let mut root = tracer.span("join");
            root.attr_str("algo", "MSJ");
            {
                let assign = root.child("assign");
                assign.finish();
            }
            {
                let sort = root.child("sort");
                let _merge = sort.child("merge");
            }
            tracer.counter("pairs").add(10);
            tracer.counter("pool.hits").add(99);
            tracer.gauge("precision", 0.5);
        }
        tracer.flush();
        // Round-trip through the JSONL codec to exercise the parser.
        let text: String = sink
            .events()
            .iter()
            .map(|e| crate::json::encode_event(e) + "\n")
            .collect();
        Trace::parse(&text).unwrap()
    }

    #[test]
    fn jsonl_round_trip_preserves_structure() {
        let trace = sample_trace();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.roots().len(), 1);
        let root = trace.span("join").unwrap();
        assert!(root.parent.is_none());
        let sort = trace.span("sort").unwrap();
        assert_eq!(sort.parent, Some(root.id));
        let merge = trace.span("merge").unwrap();
        assert_eq!(merge.parent, Some(sort.id));
        assert_eq!(trace.counter("pairs"), Some(10));
        assert_eq!(trace.counter("pool.hits"), Some(99));
        assert_eq!(trace.gauges.len(), 1);
    }

    #[test]
    fn render_shows_every_span_and_top_counters() {
        let trace = sample_trace();
        let text = render(&trace, 10);
        for name in ["join", "assign", "sort", "merge"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("pool.hits"));
        assert!(text.contains("precision"));
        assert!(text.contains('%'));
        // Children are indented under their parents.
        let join_line = text
            .lines()
            .position(|l| l.trim_start().starts_with("join"))
            .unwrap();
        let merge_line = text.lines().position(|l| l.contains("merge")).unwrap();
        assert!(merge_line > join_line);
    }

    #[test]
    fn counter_list_truncates() {
        let mut trace = Trace::default();
        for i in 0..10 {
            trace.counters.push(crate::CounterEvent {
                name: format!("c{i}"),
                value: i,
            });
        }
        let text = render(&trace, 3);
        assert!(text.contains("… 7 more"));
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = Trace::parse("{\"t\":\"span\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = Trace::parse("{\"t\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let trace =
            Trace::parse("\n\n{\"t\":\"gauge\",\"name\":\"g\",\"value\":1.5}\n\n").unwrap();
        assert_eq!(trace.gauges.len(), 1);
    }
}

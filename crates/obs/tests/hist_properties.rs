//! Property tests for the sharded histogram: merge determinism and
//! percentile correctness against a sorted-reference oracle.
//!
//! The histogram is the one obs structure whose answers depend on
//! arithmetic, not just bookkeeping, so it gets adversarial inputs:
//! random value multisets recorded across random thread counts, and
//! percentile queries checked against the exact sorted ranks.

use hdsj_obs::hist::{bucket_index, bucket_lower, bucket_upper};
use hdsj_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Records `values` into a fresh histogram from `threads` OS threads,
/// dealing values round-robin, and returns the snapshot.
fn record_across_threads(values: &[u64], threads: usize) -> HistogramSnapshot {
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = &h;
            let slice: Vec<u64> = values.iter().copied().skip(t).step_by(threads).collect();
            scope.spawn(move || {
                for v in slice {
                    h.record(v);
                }
            });
        }
    });
    h.snapshot()
}

proptest! {
    /// The snapshot of a value multiset is byte-identical no matter how
    /// many threads recorded it or in what order the values arrived:
    /// count, sum, min, max, and every bucket agree exactly.
    #[test]
    fn sharded_recording_is_thread_count_independent(
        values in proptest::collection::vec(0u64..1u64 << 40, 1..400),
        threads in 1usize..8,
    ) {
        let serial = record_across_threads(&values, 1);
        let sharded = record_across_threads(&values, threads);
        prop_assert_eq!(&serial, &sharded);

        // Recording in reverse order changes nothing either.
        let mut rev = values.clone();
        rev.reverse();
        let reversed = record_across_threads(&rev, threads.max(2));
        prop_assert_eq!(&serial, &reversed);
    }

    /// Merging per-part snapshots is associative-in-effect: any split of
    /// the multiset, merged in any order, equals the all-at-once
    /// snapshot.
    #[test]
    fn merge_is_split_independent(
        values in proptest::collection::vec(0u64..1u64 << 40, 2..300),
        split in 1usize..10,
        merge_reversed in 0usize..2,
    ) {
        let whole = record_across_threads(&values, 1);
        let parts: Vec<HistogramSnapshot> = values
            .chunks(values.len().div_ceil(split.min(values.len())))
            .map(|part| record_across_threads(part, 1))
            .collect();
        let mut order: Vec<&HistogramSnapshot> = parts.iter().collect();
        if merge_reversed == 1 {
            order.reverse();
        }
        let h = Histogram::new();
        for part in order {
            h.merge(part);
        }
        prop_assert_eq!(&whole, &h.snapshot());
    }
}

/// Percentiles answered from the log-bucketed histogram must land within
/// the bucket that holds the exact rank statistic: the oracle value's
/// bucket bounds contain the histogram's answer.
#[test]
fn percentiles_agree_with_sorted_oracle_on_random_distributions() {
    let mut rng = StdRng::seed_from_u64(0x0b5e_5eed);
    for dist in 0..1_000 {
        // Mix distribution shapes: uniform ranges of varying magnitude,
        // plus occasional heavy-tailed doubling walks.
        let n: usize = rng.gen_range(1..200);
        let magnitude = 1u64 << rng.gen_range(1..50);
        let heavy = dist % 4 == 0;
        let mut values: Vec<u64> = (0..n)
            .map(|_| {
                if heavy {
                    let base: u64 = rng.gen_range(0..magnitude);
                    base.saturating_mul(1u64 << rng.gen_range(0u32..8))
                } else {
                    rng.gen_range(0..magnitude)
                }
            })
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        values.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let oracle = values[rank - 1];
            let got = h.snapshot().percentile(q);
            // The histogram can only answer to bucket resolution: the
            // estimate must sit inside the oracle's bucket.
            let idx = bucket_index(oracle);
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(
                got >= lo && got <= hi,
                "dist {dist} q={q}: percentile {got} outside oracle bucket \
                 [{lo}, {hi}] (oracle value {oracle}, n={n})"
            );
        }
        // Exact invariants that hold regardless of bucket resolution.
        assert_eq!(snap.count, n as u64);
        assert_eq!(snap.min, values[0]);
        assert_eq!(snap.max, values[n - 1]);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
    }
}

//! # hdsj-data — workload generators for the evaluation
//!
//! Everything the experiment harness joins comes from here:
//!
//! * [`uniform`] — i.i.d. uniform points in `[0,1)^d`, the baseline
//!   synthetic workload;
//! * [`gaussian_clusters`] — Gaussian clusters with optional Zipf-skewed
//!   cluster sizes and background noise, the "skewed / clustered" workload
//!   (experiment E6);
//! * [`correlated`] — points concentrated around the main diagonal,
//!   modelling strongly correlated attributes;
//! * [`timeseries`] — the real-data surrogate (see `DESIGN.md` §5): seeded
//!   random-walk / seasonal series reduced to their leading DFT
//!   coefficients, reproducing the correlated, energy-concentrated feature
//!   vectors the paper's real datasets consist of (experiment E7);
//! * [`analytic`] — closed-form selectivity helpers used to pick ε values
//!   that keep the expected result size constant across dimensionalities
//!   (experiment E1).
//!
//! All generators are deterministic in their `seed` so every experiment is
//! reproducible bit-for-bit.
#![forbid(unsafe_code)]

pub mod analytic;
pub mod histograms;
pub mod io;
pub mod synthetic;
pub mod timeseries;
pub mod util;

pub use histograms::{color_histograms, HistogramSpec};
pub use synthetic::{correlated, gaussian_clusters, uniform, ClusterSpec};
pub use util::{concat, eps_for_target_pairs, estimate_self_join_size, sample, split};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_work() {
        let ds = super::uniform(3, 10, 1).unwrap();
        assert_eq!((ds.dims(), ds.len()), (3, 10));
    }

    #[test]
    fn generators_record_spans_on_the_global_tracer() {
        use hdsj_core::obs;
        let (tracer, events) = obs::Tracer::memory();
        obs::set_global(tracer);
        let _ = super::uniform(3, 50, 9);
        let _ = super::gaussian_clusters(3, 40, super::ClusterSpec::default(), 9);
        obs::set_global(obs::Tracer::disabled());
        let spans = events.spans();
        for name in ["data.uniform", "data.gaussian_clusters"] {
            let span = spans.iter().find(|s| s.name == name).expect(name);
            assert!(span.attrs.iter().any(|(k, _)| k == "seed"));
        }
        // Generators after the reset stay untraced.
        let before = events.spans().len();
        let _ = super::uniform(2, 10, 1);
        assert_eq!(events.spans().len(), before);
    }
}

//! Synthetic color-histogram features — the second real-data surrogate.
//!
//! The high-dimensional similarity-join literature of the period (the
//! ε-KDB paper in particular) evaluated on **color histograms of images**:
//! each image is a `d`-bin histogram (d = 16..64), entries sum to 1, and
//! most mass sits in a few bins determined by the image's dominant colors.
//! Those image collections are not redistributable, so this module builds
//! the same statistical shape synthetically: every "image" mixes a few
//! latent color *themes* (shared across the collection, which is what makes
//! near-neighbours exist) plus per-image noise, then normalizes.
//!
//! The result is a sparse, simplex-constrained, highly-correlated workload —
//! the opposite corner of workload space from uniform data, and exactly the
//! regime where the paper's real experiments live.

use hdsj_core::{Dataset, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic color-histogram collection.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSpec {
    /// Latent color themes shared across the collection.
    pub themes: usize,
    /// Themes mixed into each image (≤ `themes`).
    pub themes_per_image: usize,
    /// Per-bin noise amplitude added before normalization.
    pub noise: f64,
}

impl Default for HistogramSpec {
    fn default() -> HistogramSpec {
        HistogramSpec {
            themes: 20,
            themes_per_image: 3,
            noise: 0.01,
        }
    }
}

/// Generates `n` color histograms with `bins` bins each.
///
/// Every histogram is non-negative and sums to ~1 (before the final clamp
/// into `[0,1)`), so points live on the probability simplex like real
/// color histograms do.
pub fn color_histograms(
    bins: usize,
    n: usize,
    spec: HistogramSpec,
    seed: u64,
) -> Result<Dataset> {
    let _span = crate::synthetic::gen_span("data.color_histograms", bins, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let themes = spec.themes.max(1);
    let per_image = spec.themes_per_image.clamp(1, themes);

    // Each theme concentrates mass on a handful of adjacent bins (dominant
    // colors are contiguous in color space).
    let mut theme_profiles: Vec<Vec<f64>> = Vec::with_capacity(themes);
    for _ in 0..themes {
        let mut profile = vec![0.0; bins];
        let center = rng.gen_range(0..bins);
        let width = rng.gen_range(1..=3.max(bins / 8));
        for off in 0..width {
            let idx = (center + off) % bins;
            profile[idx] = rng.gen_range(0.5..1.0);
        }
        let total: f64 = profile.iter().sum();
        for v in profile.iter_mut() {
            *v /= total;
        }
        theme_profiles.push(profile);
    }

    let mut ds = Dataset::with_capacity(bins, n)?;
    let mut hist = vec![0.0f64; bins];
    for _ in 0..n {
        hist.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..per_image {
            let theme = rng.gen_range(0..themes);
            let weight = rng.gen_range(0.2..1.0);
            for (h, t) in hist.iter_mut().zip(&theme_profiles[theme]) {
                *h += weight * t;
            }
        }
        for h in hist.iter_mut() {
            *h += rng.gen::<f64>() * spec.noise;
        }
        let total: f64 = hist.iter().sum();
        for h in hist.iter_mut() {
            *h = (*h / total).min(1.0 - 1e-12);
        }
        ds.push(&hist)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_live_on_the_simplex() {
        let ds = color_histograms(32, 200, HistogramSpec::default(), 8).unwrap();
        assert_eq!((ds.dims(), ds.len()), (32, 200));
        ds.check_unit_domain().unwrap();
        for (_, h) in ds.iter() {
            let sum: f64 = h.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            assert!(h.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn mass_concentrates_in_few_bins() {
        let ds = color_histograms(64, 100, HistogramSpec::default(), 9).unwrap();
        for (_, h) in ds.iter() {
            let mut sorted: Vec<f64> = h.to_vec();
            sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
            let top: f64 = sorted[..12].iter().sum();
            assert!(top > 0.5, "top-12 of 64 bins hold only {top}");
        }
    }

    #[test]
    fn shared_themes_create_near_neighbours() {
        // With few themes, many images share a dominant profile, so tight
        // neighbours must exist — unlike uniform data at d=32.
        let spec = HistogramSpec {
            themes: 4,
            themes_per_image: 1,
            noise: 0.001,
        };
        let ds = color_histograms(32, 300, spec, 10).unwrap();
        let mut close_pairs = 0;
        for i in 0..100u32 {
            for j in (i + 1)..100u32 {
                let d: f64 = ds
                    .point(i)
                    .iter()
                    .zip(ds.point(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d < 0.05 {
                    close_pairs += 1;
                }
            }
        }
        assert!(close_pairs > 50, "only {close_pairs} close pairs");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = color_histograms(16, 50, HistogramSpec::default(), 11).unwrap();
        let b = color_histograms(16, 50, HistogramSpec::default(), 11).unwrap();
        assert_eq!(a, b);
    }
}

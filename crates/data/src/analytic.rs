//! Closed-form selectivity helpers.
//!
//! The dimensionality sweep (experiment E1) follows the paper in keeping the
//! *expected result size* roughly constant while `d` grows — otherwise the
//! join output itself would dominate the comparison. For uniform data the
//! expected number of self-join result pairs is approximately
//! `C(n,2) · V_d(ε)` where `V_d` is the volume of the metric ball (boundary
//! effects ignored), so inverting `V_d` gives the ε for a target
//! selectivity.

use hdsj_core::Metric;

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
/// Accurate to ~1e-13 over the range used here.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Volume of the `d`-dimensional ball of radius `r` under `metric`.
///
/// * L2: `π^(d/2) / Γ(d/2 + 1) · r^d`
/// * L1: `(2r)^d / d!`
/// * L∞: `(2r)^d`
/// * Lp: `(2Γ(1/p + 1))^d / Γ(d/p + 1) · r^d`
pub fn ball_volume(metric: Metric, d: usize, r: f64) -> f64 {
    let d_f = d as f64;
    let ln_vol = match metric {
        Metric::L2 => {
            d_f / 2.0 * std::f64::consts::PI.ln() - ln_gamma(d_f / 2.0 + 1.0) + d_f * r.ln()
        }
        Metric::L1 => d_f * (2.0 * r).ln() - ln_gamma(d_f + 1.0),
        Metric::Linf => d_f * (2.0 * r).ln(),
        Metric::Lp(p) => {
            d_f * ((2.0 * r).ln() + ln_gamma(1.0 / p + 1.0)) - ln_gamma(d_f / p + 1.0)
        }
    };
    ln_vol.exp()
}

/// The ε whose metric ball has the given volume — the inverse of
/// [`ball_volume`] in `r`.
pub fn eps_for_ball_volume(metric: Metric, d: usize, volume: f64) -> f64 {
    let d_f = d as f64;
    let ln_v = volume.ln();
    let ln_r = match metric {
        Metric::L2 => {
            (ln_v - d_f / 2.0 * std::f64::consts::PI.ln() + ln_gamma(d_f / 2.0 + 1.0)) / d_f
        }
        Metric::L1 => (ln_v + ln_gamma(d_f + 1.0)) / d_f - 2.0f64.ln(),
        Metric::Linf => ln_v / d_f - 2.0f64.ln(),
        Metric::Lp(p) => {
            (ln_v + ln_gamma(d_f / p + 1.0)) / d_f - 2.0f64.ln() - ln_gamma(1.0 / p + 1.0)
        }
    };
    ln_r.exp()
}

/// ε such that a uniform self-join of `n` points in `[0,1)^d` is expected to
/// return about `target_pairs` result pairs (boundary effects ignored, so
/// treat it as a calibration, not a promise).
pub fn eps_for_expected_pairs(metric: Metric, d: usize, n: usize, target_pairs: f64) -> f64 {
    let pairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    let volume = (target_pairs / pairs).min(1.0);
    eps_for_ball_volume(metric, d, volume)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ball_volumes_match_low_dim_formulas() {
        // d=2 L2: πr²; d=3 L2: 4/3 πr³; d=2 L1: 2r²·... (2r)²/2! = 2r².
        let r = 0.3;
        assert!((ball_volume(Metric::L2, 2, r) - std::f64::consts::PI * r * r).abs() < 1e-12);
        assert!(
            (ball_volume(Metric::L2, 3, r) - 4.0 / 3.0 * std::f64::consts::PI * r.powi(3))
                .abs()
                < 1e-12
        );
        assert!((ball_volume(Metric::L1, 2, r) - 2.0 * r * r).abs() < 1e-12);
        assert!((ball_volume(Metric::Linf, 4, r) - (2.0 * r).powi(4)).abs() < 1e-12);
        // Lp with p=2 agrees with the L2 formula.
        assert!(
            (ball_volume(Metric::Lp(2.0), 5, r) - ball_volume(Metric::L2, 5, r)).abs() < 1e-12
        );
    }

    #[test]
    fn eps_inverts_volume() {
        for metric in [Metric::L1, Metric::L2, Metric::Linf, Metric::Lp(3.0)] {
            for d in [2usize, 8, 32] {
                let eps = 0.07;
                let v = ball_volume(metric, d, eps);
                let back = eps_for_ball_volume(metric, d, v);
                assert!((back - eps).abs() < 1e-9, "{metric:?} d={d}: {back}");
            }
        }
    }

    #[test]
    fn expected_pairs_calibration_is_monotone_in_d() {
        // For fixed target selectivity, ε must grow with dimension (curse of
        // dimensionality).
        let eps: Vec<f64> = [2usize, 4, 8, 16, 32]
            .iter()
            .map(|&d| eps_for_expected_pairs(Metric::L2, d, 10_000, 50_000.0))
            .collect();
        assert!(eps.windows(2).all(|w| w[0] < w[1]), "{eps:?}");
    }

    #[test]
    fn calibrated_eps_hits_target_on_uniform_data_2d() {
        // Empirical check in low dimension where boundary effects are mild.
        use hdsj_core::{CountSink, JoinSpec, SimilarityJoin};
        let n = 2000;
        let target = 2000.0;
        let eps = eps_for_expected_pairs(Metric::L2, 2, n, target);
        let ds = crate::uniform(2, n, 17).unwrap();
        let mut bf = hdsj_bruteforce::BruteForce::default();
        let mut sink = CountSink::default();
        bf.self_join(&ds, &JoinSpec::new(eps, Metric::L2), &mut sink)
            .unwrap();
        let got = sink.count as f64;
        assert!(
            got > target * 0.5 && got < target * 1.5,
            "expected ~{target}, got {got} (eps={eps})"
        );
    }
}

//! The real-data surrogate: time series reduced to Fourier features.
//!
//! The paper's "real" workloads are feature vectors extracted from
//! proprietary time series (the standard pipeline of the era: keep the first
//! few DFT coefficients of each series, as in the time-series indexing
//! literature the paper builds on). Those datasets are not available, so
//! this module *builds the same pipeline on synthetic series*: seeded
//! random walks with optional seasonal structure, a naive DFT, and the
//! leading coefficients packed into a [`Dataset`]. The resulting points are
//! strongly correlated with rapidly decaying variance per dimension —
//! exactly the structure that distinguishes "real" from uniform workloads
//! in the evaluation (see `DESIGN.md` §5 for the substitution argument).

use hdsj_core::{Dataset, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random-walk series of `len` steps with standard-normal-ish increments.
pub fn random_walk(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = crate::synthetic::BoxMuller::default();
    let mut out = Vec::with_capacity(len);
    let mut level = 0.0;
    for _ in 0..len {
        level += gauss.sample(&mut rng);
        out.push(level);
    }
    out
}

/// A random walk plus a sinusoidal seasonal component of the given period
/// and amplitude.
pub fn seasonal(len: usize, period: usize, amplitude: f64, seed: u64) -> Vec<f64> {
    let base = random_walk(len, seed);
    base.iter()
        .enumerate()
        .map(|(t, &v)| {
            v + amplitude * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin()
        })
        .collect()
}

/// First `k` DFT coefficients (excluding the DC term) of `series`, returned
/// as `2k` interleaved `(re, im)` values, normalized by the series length.
///
/// A naive `O(len · k)` evaluation — `k` is a handful, so an FFT would be
/// overkill and would drag in no end of machinery.
pub fn dft_coeffs(series: &[f64], k: usize) -> Vec<f64> {
    let n = series.len().max(1) as f64;
    let mut out = Vec::with_capacity(2 * k);
    for f in 1..=k {
        let (mut re, mut im) = (0.0, 0.0);
        let w = -2.0 * std::f64::consts::PI * f as f64 / n;
        for (t, &x) in series.iter().enumerate() {
            let angle = w * t as f64;
            re += x * angle.cos();
            im += x * angle.sin();
        }
        out.push(re / n);
        out.push(im / n);
    }
    out
}

/// Builds a `dims`-dimensional dataset from `n` series of length
/// `series_len`: each point is the leading `ceil(dims/2)` DFT coefficients
/// of one series (truncated to `dims` values), jointly rescaled into
/// `[0,1)^dims`.
///
/// Mean-centring each series first removes the level of the walk so the
/// features capture *shape*, matching the similarity-search pipelines the
/// paper references.
pub fn fourier_dataset(dims: usize, n: usize, series_len: usize, seed: u64) -> Result<Dataset> {
    let _span = crate::synthetic::gen_span("data.fourier_dataset", dims, n, seed);
    let k = dims.div_ceil(2);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut series = if i % 3 == 0 {
            seasonal(series_len, 16 + (i % 48), 3.0, seed.wrapping_add(i as u64))
        } else {
            random_walk(series_len, seed.wrapping_add(i as u64))
        };
        let mean = series.iter().sum::<f64>() / series.len().max(1) as f64;
        for v in series.iter_mut() {
            *v -= mean;
        }
        let mut feats = dft_coeffs(&series, k);
        feats.truncate(dims);
        rows.push(feats);
    }
    let raw = Dataset::from_rows(&rows)?;
    Ok(raw.normalized())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_walk_is_deterministic() {
        assert_eq!(random_walk(100, 5), random_walk(100, 5));
        assert_ne!(random_walk(100, 5), random_walk(100, 6));
    }

    #[test]
    fn seasonal_adds_periodicity() {
        let plain = random_walk(256, 9);
        let season = seasonal(256, 32, 5.0, 9);
        let diff: Vec<f64> = season.iter().zip(&plain).map(|(a, b)| a - b).collect();
        // The injected component has period 32 and amplitude 5.
        for (t, d) in diff.iter().enumerate() {
            let want = 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 32.0).sin();
            assert!((d - want).abs() < 1e-9);
        }
    }

    #[test]
    fn dft_recovers_a_pure_tone() {
        // x_t = cos(2π·3t/64): coefficient 3 has re ≈ 1/2, everything else ≈ 0.
        let n = 64;
        let series: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64).cos())
            .collect();
        let coeffs = dft_coeffs(&series, 5);
        for f in 1..=5usize {
            let (re, im) = (coeffs[2 * (f - 1)], coeffs[2 * (f - 1) + 1]);
            if f == 3 {
                assert!((re - 0.5).abs() < 1e-9, "re(3) = {re}");
                assert!(im.abs() < 1e-9);
            } else {
                assert!(re.abs() < 1e-9 && im.abs() < 1e-9, "f={f}: ({re}, {im})");
            }
        }
    }

    #[test]
    fn fourier_dataset_shape_and_domain() {
        for dims in [3usize, 8] {
            let ds = fourier_dataset(dims, 50, 128, 21).unwrap();
            assert_eq!(ds.dims(), dims);
            assert_eq!(ds.len(), 50);
            ds.check_unit_domain().unwrap();
        }
    }

    #[test]
    fn fourier_energy_concentrates_in_low_dims() {
        // Random-walk spectra decay with frequency: the variance of the
        // first feature dimension should dominate the last.
        let ds = fourier_dataset(8, 300, 256, 13).unwrap();
        let var = |dim: usize| {
            let mean: f64 = ds.iter().map(|(_, p)| p[dim]).sum::<f64>() / ds.len() as f64;
            ds.iter().map(|(_, p)| (p[dim] - mean).powi(2)).sum::<f64>() / ds.len() as f64
        };
        assert!(
            var(0) > 4.0 * var(7),
            "low-frequency variance must dominate: {} vs {}",
            var(0),
            var(7)
        );
    }
}

//! Dataset manipulation utilities: sampling, splitting, concatenation, and
//! a sampling-based join-selectivity estimator.

use hdsj_core::{Dataset, Error, Metric, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform random sample (without replacement) of `k` points.
/// Returns the whole dataset (reindexed) when `k >= len`.
pub fn sample(ds: &Dataset, k: usize, seed: u64) -> Result<Dataset> {
    let n = ds.len();
    if k >= n {
        return Ok(ds.clone());
    }
    // Partial Fisher–Yates over an index array.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let mut out = Dataset::with_capacity(ds.dims(), k)?;
    for &i in &idx[..k] {
        out.push(ds.point(i))?;
    }
    Ok(out)
}

/// Splits a dataset into two parts: the first `left` points and the rest.
pub fn split(ds: &Dataset, left: usize) -> Result<(Dataset, Dataset)> {
    let mut a = Dataset::with_capacity(ds.dims(), left)?;
    let mut b = Dataset::with_capacity(ds.dims(), ds.len().saturating_sub(left))?;
    for (i, p) in ds.iter() {
        if (i as usize) < left {
            a.push(p)?;
        } else {
            b.push(p)?;
        }
    }
    Ok((a, b))
}

/// Concatenates two datasets of equal dimensionality. Indices of `b` are
/// shifted by `a.len()`.
pub fn concat(a: &Dataset, b: &Dataset) -> Result<Dataset> {
    if a.dims() != b.dims() {
        return Err(Error::InvalidInput(format!(
            "dimensionality mismatch: {} vs {}",
            a.dims(),
            b.dims()
        )));
    }
    let mut out = Dataset::with_capacity(a.dims(), a.len() + b.len())?;
    for (_, p) in a.iter().chain(b.iter()) {
        out.push(p)?;
    }
    Ok(out)
}

/// Estimates the result size of an ε self-join by testing `samples` random
/// pairs and scaling: cheap enough to run before committing to an expensive
/// join, the classic query-optimizer use of similarity-join selectivity.
///
/// The estimate is unbiased; its relative error shrinks as
/// `1/sqrt(hits)`, so rare joins need more samples for a tight estimate.
pub fn estimate_self_join_size(
    ds: &Dataset,
    metric: Metric,
    eps: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let n = ds.len() as u64;
    if n < 2 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..samples {
        let i = rng.gen_range(0..n) as u32;
        let mut j = rng.gen_range(0..n - 1) as u32;
        if j >= i {
            j += 1;
        }
        if metric.within(ds.point(i), ds.point(j), eps) {
            hits += 1;
        }
    }
    let total_pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    hits as f64 / samples as f64 * total_pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_subset_without_replacement() {
        let ds = crate::uniform(3, 100, 1).unwrap();
        let s = sample(&ds, 30, 2).unwrap();
        assert_eq!(s.len(), 30);
        // Every sampled point exists in the source; no duplicates beyond
        // what the source itself contains (uniform source: none).
        let mut seen = std::collections::HashSet::new();
        for (_, p) in s.iter() {
            let found = ds.iter().any(|(_, q)| q == p);
            assert!(found);
            assert!(seen.insert(p.iter().map(|v| v.to_bits()).collect::<Vec<_>>()));
        }
    }

    #[test]
    fn sample_larger_than_source_returns_all() {
        let ds = crate::uniform(2, 10, 1).unwrap();
        assert_eq!(sample(&ds, 50, 2).unwrap(), ds);
    }

    #[test]
    fn split_and_concat_round_trip() {
        let ds = crate::uniform(4, 57, 3).unwrap();
        let (a, b) = split(&ds, 20).unwrap();
        assert_eq!((a.len(), b.len()), (20, 37));
        assert_eq!(a.point(19), ds.point(19));
        assert_eq!(b.point(0), ds.point(20));
        let back = concat(&a, &b).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn split_beyond_len_gives_empty_tail() {
        let ds = crate::uniform(2, 5, 4).unwrap();
        let (a, b) = split(&ds, 100).unwrap();
        assert_eq!(a.len(), 5);
        assert!(b.is_empty());
    }

    #[test]
    fn concat_rejects_dim_mismatch() {
        let a = crate::uniform(2, 5, 1).unwrap();
        let b = crate::uniform(3, 5, 1).unwrap();
        assert!(concat(&a, &b).is_err());
    }

    #[test]
    fn estimator_tracks_true_join_size() {
        use hdsj_core::{CountSink, JoinSpec, SimilarityJoin};
        let ds = crate::uniform(2, 2_000, 5).unwrap();
        let eps = 0.05;
        let mut bf = hdsj_bruteforce::BruteForce::default();
        let mut sink = CountSink::default();
        bf.self_join(&ds, &JoinSpec::new(eps, Metric::L2), &mut sink)
            .unwrap();
        let truth = sink.count as f64;
        let est = estimate_self_join_size(&ds, Metric::L2, eps, 200_000, 6);
        assert!(
            est > truth * 0.7 && est < truth * 1.3,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn estimator_degenerate_inputs() {
        let empty = Dataset::new(2).unwrap();
        assert_eq!(
            estimate_self_join_size(&empty, Metric::L2, 0.1, 100, 1),
            0.0
        );
        let one = crate::uniform(2, 1, 1).unwrap();
        assert_eq!(estimate_self_join_size(&one, Metric::L2, 0.1, 100, 1), 0.0);
        let ds = crate::uniform(2, 10, 1).unwrap();
        assert_eq!(estimate_self_join_size(&ds, Metric::L2, 0.1, 0, 1), 0.0);
    }
}

/// Estimates the ε whose self-join under `metric` returns roughly
/// `target_pairs` results: the `target/total` quantile of sampled pair
/// distances. Distribution-free (works on clustered and real-surrogate
/// data, where the closed forms in [`crate::analytic`] do not apply).
pub fn eps_for_target_pairs(
    ds: &Dataset,
    metric: Metric,
    target_pairs: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let n = ds.len() as f64;
    if n < 2.0 || samples == 0 {
        return 0.1;
    }
    let total_pairs = n * (n - 1.0) / 2.0;
    let frac = (target_pairs / total_pairs).clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dists: Vec<f64> = Vec::with_capacity(samples);
    let n_u = ds.len() as u64;
    for _ in 0..samples {
        let i = rng.gen_range(0..n_u) as u32;
        let mut j = rng.gen_range(0..n_u - 1) as u32;
        if j >= i {
            j += 1;
        }
        dists.push(metric.distance(ds.point(i), ds.point(j)));
    }
    dists.sort_unstable_by(f64::total_cmp);
    let idx = ((dists.len() as f64 * frac) as usize).min(dists.len() - 1);
    dists[idx].max(1e-9)
}

#[cfg(test)]
mod target_pairs_tests {
    use super::*;

    #[test]
    fn calibrated_eps_hits_target_roughly() {
        use hdsj_core::{CountSink, JoinSpec, SimilarityJoin};
        let ds = crate::gaussian_clusters(
            3,
            3000,
            crate::ClusterSpec {
                clusters: 8,
                sigma: 0.05,
                ..Default::default()
            },
            13,
        )
        .unwrap();
        let target = 5_000.0;
        let eps = eps_for_target_pairs(&ds, Metric::L2, target, 200_000, 14);
        let mut sink = CountSink::default();
        hdsj_bruteforce::BruteForce::default()
            .self_join(&ds, &JoinSpec::new(eps, Metric::L2), &mut sink)
            .unwrap();
        let got = sink.count as f64;
        assert!(
            got > target * 0.5 && got < target * 2.0,
            "target {target}, got {got}"
        );
    }

    #[test]
    fn degenerate_inputs_fall_back() {
        let one = crate::uniform(2, 1, 1).unwrap();
        assert_eq!(eps_for_target_pairs(&one, Metric::L2, 10.0, 100, 1), 0.1);
    }
}

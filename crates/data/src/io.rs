//! Dataset import/export: CSV (interoperability) and a compact binary
//! format (fast reload of generated workloads).

use hdsj_core::{Dataset, Error, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary format (`HDSJ` + version 1).
const MAGIC: [u8; 5] = [b'H', b'D', b'S', b'J', 1];

/// Writes `ds` as headerless CSV, one point per line.
pub fn save_csv(ds: &Dataset, path: &Path) -> Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    let mut line = String::new();
    for (_, p) in ds.iter() {
        line.clear();
        for (k, v) in p.iter().enumerate() {
            if k > 0 {
                line.push(',');
            }
            // 17 significant digits: lossless f64 round trip.
            line.push_str(&format!("{v:.17e}"));
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a CSV of points. Lines starting with `#` and blank lines are
/// skipped; every remaining line must have the same number of columns.
pub fn load_csv(path: &Path) -> Result<Dataset> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut ds: Option<Dataset> = None;
    let mut point = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        point.clear();
        for field in trimmed.split(',') {
            let v: f64 = field.trim().parse().map_err(|e| {
                Error::InvalidInput(format!("line {}: bad number {field:?}: {e}", lineno + 1))
            })?;
            point.push(v);
        }
        if ds.is_none() {
            ds = Some(Dataset::new(point.len().max(1))?);
        }
        if let Some(ds) = ds.as_mut() {
            ds.push(&point)
                .map_err(|e| Error::InvalidInput(format!("line {}: {e}", lineno + 1)))?;
        }
    }
    ds.ok_or_else(|| Error::InvalidInput("empty csv".into()))
}

/// Writes `ds` in the binary format: magic, dims (u32 LE), count (u64 LE),
/// then row-major little-endian `f64`s.
pub fn save_binary(ds: &Dataset, path: &Path) -> Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    out.write_all(&MAGIC)?;
    out.write_all(&(ds.dims() as u32).to_le_bytes())?;
    out.write_all(&(ds.len() as u64).to_le_bytes())?;
    for &v in ds.flat() {
        out.write_all(&v.to_le_bytes())?;
    }
    out.flush()?;
    Ok(())
}

/// Reads the binary format written by [`save_binary`].
pub fn load_binary(path: &Path) -> Result<Dataset> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 5];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(Error::InvalidInput("not an hdsj binary dataset".into()));
    }
    let mut buf4 = [0u8; 4];
    reader.read_exact(&mut buf4)?;
    let dims = u32::from_le_bytes(buf4) as usize;
    let mut buf8 = [0u8; 8];
    reader.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    if dims == 0 || dims > 1 << 20 {
        return Err(Error::InvalidInput(format!("implausible dims {dims}")));
    }
    let total = count
        .checked_mul(dims)
        .ok_or_else(|| Error::InvalidInput("size overflow".into()))?;
    let mut flat = Vec::with_capacity(total);
    for _ in 0..total {
        reader.read_exact(&mut buf8)?;
        flat.push(f64::from_le_bytes(buf8));
    }
    // Trailing garbage means a corrupt or mismatched file.
    if reader.read(&mut buf8)? != 0 {
        return Err(Error::InvalidInput("trailing bytes after dataset".into()));
    }
    Dataset::from_flat(dims, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hdsj-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let ds = crate::uniform(5, 200, 9).unwrap();
        let path = tmp("round.csv");
        save_csv(&ds, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_skips_comments_and_blank_lines() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n0.25,0.5\n 0.75 , 0.125 \n").unwrap();
        let ds = load_csv(&path).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[0.75, 0.125]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows_and_garbage() {
        let ragged = tmp("ragged.csv");
        std::fs::write(&ragged, "0.1,0.2\n0.3\n").unwrap();
        assert!(load_csv(&ragged).is_err());
        let garbage = tmp("garbage.csv");
        std::fs::write(&garbage, "0.1,zebra\n").unwrap();
        assert!(load_csv(&garbage).is_err());
        let empty = tmp("empty.csv");
        std::fs::write(&empty, "# nothing\n").unwrap();
        assert!(load_csv(&empty).is_err());
        for p in [ragged, garbage, empty] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn binary_round_trip() {
        let ds = crate::gaussian_clusters(7, 150, crate::ClusterSpec::default(), 4).unwrap();
        let path = tmp("round.bin");
        save_binary(&ds, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_corruption() {
        let ds = crate::uniform(2, 10, 1).unwrap();
        let path = tmp("corrupt.bin");
        save_binary(&ds, &path).unwrap();
        // Truncate mid-data.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_binary(&path).is_err());
        // Bad magic.
        std::fs::write(&path, b"NOPE!rest").unwrap();
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

//! Synthetic point distributions: uniform, Gaussian clusters (optionally
//! Zipf-skewed), and diagonal-correlated data.

use hdsj_core::{Dataset, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest representable coordinate inside the `[0, 1)` convention.
const MAX_COORD: f64 = 1.0 - 1e-12;

/// Opens a generation span on the process-global tracer (a no-op unless
/// one was installed via `hdsj_core::obs::set_global`). Free functions have
/// no struct to hang a tracer on, hence the global.
pub(crate) fn gen_span(
    name: &'static str,
    dims: usize,
    n: usize,
    seed: u64,
) -> hdsj_core::obs::Span {
    let tracer = hdsj_core::obs::global();
    let mut span = tracer.span(name);
    span.attr_u64("dims", dims as u64);
    span.attr_u64("n", n as u64);
    span.attr_u64("seed", seed);
    span
}

/// `n` i.i.d. uniform points in `[0,1)^d`. Errors on `dims == 0`.
pub fn uniform(dims: usize, n: usize, seed: u64) -> Result<Dataset> {
    let _span = gen_span("data.uniform", dims, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(dims, n)?;
    let mut p = vec![0.0; dims];
    for _ in 0..n {
        for v in p.iter_mut() {
            *v = rng.gen::<f64>().min(MAX_COORD);
        }
        ds.push(&p)?;
    }
    Ok(ds)
}

/// Shape of a clustered workload.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Standard deviation of each cluster (unit-domain units).
    pub sigma: f64,
    /// Zipf exponent for cluster sizes; `0.0` gives equal-size clusters,
    /// larger values concentrate points in few clusters.
    pub zipf_theta: f64,
    /// Fraction of points drawn uniformly instead of from a cluster
    /// (background noise).
    pub noise_fraction: f64,
}

impl Default for ClusterSpec {
    fn default() -> ClusterSpec {
        ClusterSpec {
            clusters: 10,
            sigma: 0.05,
            zipf_theta: 0.0,
            noise_fraction: 0.0,
        }
    }
}

/// `n` points from `spec.clusters` Gaussian clusters with uniformly placed
/// centers. Coordinates are clamped into `[0,1)`. Errors on `dims == 0`.
pub fn gaussian_clusters(
    dims: usize,
    n: usize,
    spec: ClusterSpec,
    seed: u64,
) -> Result<Dataset> {
    let _span = gen_span("data.gaussian_clusters", dims, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let k = spec.clusters.max(1);
    // Cluster centres.
    let mut centers = Vec::with_capacity(k);
    for _ in 0..k {
        let c: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
        centers.push(c);
    }
    // Zipf weights over clusters: w_i ∝ 1 / (i+1)^theta.
    let weights: Vec<f64> = (0..k)
        .map(|i| 1.0 / ((i + 1) as f64).powf(spec.zipf_theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();

    let mut ds = Dataset::with_capacity(dims, n)?;
    let mut gauss = BoxMuller::default();
    let mut p = vec![0.0; dims];
    for _ in 0..n {
        if rng.gen::<f64>() < spec.noise_fraction {
            for v in p.iter_mut() {
                *v = rng.gen::<f64>().min(MAX_COORD);
            }
        } else {
            let u = rng.gen::<f64>();
            let c = cumulative.partition_point(|&cum| cum < u).min(k - 1);
            for (v, center) in p.iter_mut().zip(&centers[c]) {
                *v = (center + spec.sigma * gauss.sample(&mut rng)).clamp(0.0, MAX_COORD);
            }
        }
        ds.push(&p)?;
    }
    Ok(ds)
}

/// `n` points along the main diagonal of the unit cube with per-dimension
/// uniform jitter of half-width `noise` — a simple model of strongly
/// correlated attributes (the regime where space-filling-curve methods
/// shine and stripe-based structures degrade).
pub fn correlated(dims: usize, n: usize, noise: f64, seed: u64) -> Result<Dataset> {
    let _span = gen_span("data.correlated", dims, n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(dims, n)?;
    let mut p = vec![0.0; dims];
    for _ in 0..n {
        let base = rng.gen::<f64>();
        for v in p.iter_mut() {
            let jitter = (rng.gen::<f64>() - 0.5) * 2.0 * noise;
            *v = (base + jitter).clamp(0.0, MAX_COORD);
        }
        ds.push(&p)?;
    }
    Ok(ds)
}

/// Standard-normal sampler (Box–Muller, caching the second variate).
/// `rand` ships only uniform distributions; the Gaussian machinery lives in
/// the separate `rand_distr` crate, which is outside the allowed dependency
/// list — two lines of Box–Muller replace it.
#[derive(Debug, Default)]
pub struct BoxMuller {
    cached: Option<f64>,
}

impl BoxMuller {
    /// One standard-normal sample.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // u1 in (0, 1] so the log is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_domain() {
        let a = uniform(5, 200, 99).unwrap();
        let b = uniform(5, 200, 99).unwrap();
        assert_eq!(a, b);
        a.check_unit_domain().unwrap();
        let c = uniform(5, 200, 100).unwrap();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn uniform_covers_the_cube() {
        let ds = uniform(2, 2000, 1).unwrap();
        // Every quadrant of the unit square should be populated.
        let mut quadrants = [0usize; 4];
        for (_, p) in ds.iter() {
            let q = (p[0] >= 0.5) as usize * 2 + (p[1] >= 0.5) as usize;
            quadrants[q] += 1;
        }
        assert!(quadrants.iter().all(|&c| c > 300), "{quadrants:?}");
    }

    #[test]
    fn clusters_concentrate_points() {
        let spec = ClusterSpec {
            clusters: 4,
            sigma: 0.01,
            ..Default::default()
        };
        let ds = gaussian_clusters(3, 1000, spec, 7).unwrap();
        ds.check_unit_domain().unwrap();
        // With sigma=0.01 nearly all points lie within 0.05 of some of the 4
        // centers; estimate centers by averaging nearest-of-4 assignment via
        // a crude check: count points whose nearest neighbour among a sample
        // is very close.
        let mut close = 0;
        for i in 0..200u32 {
            let p = ds.point(i);
            let near = ds
                .iter()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| {
                    p.iter()
                        .zip(q)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            if near < 0.05 {
                close += 1;
            }
        }
        assert!(
            close > 180,
            "clustered data must have close neighbours, got {close}"
        );
    }

    #[test]
    fn zipf_skews_cluster_sizes() {
        let spec = ClusterSpec {
            clusters: 8,
            sigma: 1e-4,
            zipf_theta: 1.5,
            ..Default::default()
        };
        let ds = gaussian_clusters(2, 4000, spec, 11).unwrap();
        // With sigma tiny, points sit essentially on their centre: bucket by
        // rounded coordinates to recover cluster sizes.
        use std::collections::HashMap;
        let mut sizes: HashMap<(i64, i64), usize> = HashMap::new();
        for (_, p) in ds.iter() {
            let key = ((p[0] * 500.0) as i64, (p[1] * 500.0) as i64);
            *sizes.entry(key).or_default() += 1;
        }
        let mut counts: Vec<usize> = sizes.into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            counts[0] > 4000 / 8 * 2,
            "largest cluster should dominate with theta=1.5: {counts:?}"
        );
    }

    #[test]
    fn noise_fraction_spreads_points() {
        let tight = ClusterSpec {
            clusters: 1,
            sigma: 1e-3,
            ..Default::default()
        };
        let noisy = ClusterSpec {
            noise_fraction: 0.5,
            ..tight
        };
        let a = gaussian_clusters(2, 500, tight, 5).unwrap();
        let b = gaussian_clusters(2, 500, noisy, 5).unwrap();
        let spread = |ds: &Dataset| {
            let mean: f64 = ds.iter().map(|(_, p)| p[0]).sum::<f64>() / ds.len() as f64;
            ds.iter().map(|(_, p)| (p[0] - mean).abs()).sum::<f64>() / ds.len() as f64
        };
        assert!(spread(&b) > spread(&a) * 5.0);
    }

    #[test]
    fn correlated_points_hug_the_diagonal() {
        let ds = correlated(6, 300, 0.02, 3).unwrap();
        ds.check_unit_domain().unwrap();
        for (_, p) in ds.iter() {
            let min = p.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(max - min <= 0.08 + 1e-9, "diagonal spread too wide: {p:?}");
        }
    }

    #[test]
    fn box_muller_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = BoxMuller::default();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}

//! Seed-sweep over the pool's schedule explorer (debug-schedules only).
//!
//! ```text
//! cargo test -p hdsj-exec --features debug-schedules --test schedule_explorer
//! ```
//!
//! `HDSJ_SCHED_SEEDS="lo..hi"` overrides the swept range — set it to
//! `N..N+1` to replay a failing seed printed by a previous run.
#![cfg(feature = "debug-schedules")]

use hdsj_exec::schedule;

/// The default sweep: 350 seeds × 5 scenarios over the pool primitives.
/// The window rotates when the pool's concurrency surface changes (the
/// SIMD-tier refinement batching rode the dataflow-analyzer PR into the
/// workers) so CI keeps exploring fresh interleavings; 0..600 was
/// covered by earlier windows.
const DEFAULT_SEEDS: std::ops::Range<u64> = 600..950;

fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("HDSJ_SCHED_SEEDS") else {
        return DEFAULT_SEEDS;
    };
    let parsed = spec.split_once("..").and_then(|(lo, hi)| {
        Some(lo.trim().parse::<u64>().ok()?..hi.trim().parse::<u64>().ok()?)
    });
    match parsed {
        Some(r) if r.start < r.end => r,
        _ => panic!("HDSJ_SCHED_SEEDS={spec:?}: expected \"lo..hi\" with lo < hi"),
    }
}

#[test]
fn all_pool_primitives_hold_under_schedule_perturbation() {
    let range = seed_range();
    let points_before = schedule::points();
    let report = match schedule::explorer::explore(range.clone()) {
        Ok(report) => report,
        // The Display impl prints the failing seed and the exact command
        // that replays it.
        Err(failure) => panic!("schedule explorer violation: {failure}"),
    };
    assert_eq!(report.seeds, range.end - range.start);
    assert_eq!(report.scenarios_per_seed, 5);
    // Liveness: the yield-point hooks actually fired during the sweep —
    // the guarantee was tested, not skipped.
    assert!(
        schedule::points() > points_before,
        "no yield points hit: perturbation hooks did not run"
    );
    println!(
        "schedule explorer: {} seeds x {} scenarios clean, {} yield points hit",
        report.seeds,
        report.scenarios_per_seed,
        schedule::points() - points_before
    );
}

//! # hdsj-exec — the workspace's scoped thread pool
//!
//! Every parallel site in the workspace used to hand-roll its own scoped
//! threads (MSJ's refine workers, the brute-force chunker, run formation in
//! the external sort). This crate centralizes that machinery behind three
//! std-only primitives, all built on `std::thread::scope` so borrowed data
//! needs no `Arc`:
//!
//! * [`Pool::map_chunks`] — chunked parallel-for: `0..n` is split into
//!   fixed-size chunks which workers claim from an atomic cursor; results
//!   come back **in chunk order**, so output is deterministic regardless of
//!   scheduling (serial and parallel runs produce identical vectors).
//! * [`Pool::map_reduce`] — `map_chunks` followed by a fold over the chunk
//!   results, again in chunk order.
//! * [`Pool::producer_consumers`] — a producer running on the calling
//!   thread feeding worker closures (the MSJ sweep → refine-worker shape).
//!   The channel between them belongs to the caller; the pool only owns
//!   spawning, panic containment, and error priority.
//!
//! ## Panic containment and error priority
//!
//! Worker closures run under `catch_unwind`: a panicking metric (or a chaos
//! failpoint) becomes a typed [`Error::Internal`] carrying the panic
//! message, never an unwind across the scope. When several workers fail,
//! the error of the **lowest chunk index** (`map_chunks`) or **lowest
//! worker index** (`producer_consumers`) wins, so error reporting is as
//! deterministic as success output. Worker errors beat producer errors:
//! a dead worker usually *explains* the producer's failed sends.
//!
//! ## Observability
//!
//! With a tracer installed the pool reports per-worker `exec.worker` spans
//! (children of the span passed to `map_chunks`) and three counters:
//! `exec.tasks` (chunks dispatched), `exec.workers` (worker threads
//! spawned), and `exec.steal_waits` (times a worker polled the cursor and
//! found no work left — a measure of tail imbalance).
//!
//! ## Schedule exploration
//!
//! Every scheduling transition calls a [`schedule::yield_point`] hook —
//! a no-op normally; under the `debug-schedules` feature it perturbs the
//! OS scheduler from a seed so the explorer (`schedule::explorer`) can
//! sweep the pool's guarantees across many reproducible interleavings
//! (DESIGN.md §12).
#![forbid(unsafe_code)]

pub mod schedule;

use hdsj_core::obs::{names, Span, Tracer};
use hdsj_core::{Error, LifecycleCtx, Result};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Best-effort human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The default worker count: `HDSJ_THREADS` when set to a positive integer,
/// otherwise `1` (fully serial — parallelism is strictly opt-in).
pub fn default_threads() -> usize {
    match std::env::var("HDSJ_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => resolve_threads(n),
            Err(_) => 1,
        },
        Err(_) => 1,
    }
}

/// Normalizes a requested thread count: `0` means "all hardware threads"
/// (via `std::thread::available_parallelism`), anything else is taken
/// as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// A scoped thread-pool handle: a worker count plus a tracer. Cheap to
/// construct per call site — threads are spawned per operation (scoped on
/// the caller's stack), not kept alive between calls.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
    tracer: Tracer,
    lifecycle: Option<LifecycleCtx>,
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::new(default_threads())
    }
}

impl Pool {
    /// A pool with `threads` workers (`0` = all hardware threads) and no
    /// tracing.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: resolve_threads(threads).max(1),
            tracer: Tracer::disabled(),
            lifecycle: None,
        }
    }

    /// A pool reporting its spans and counters to `tracer`.
    pub fn with_tracer(threads: usize, tracer: Tracer) -> Pool {
        Pool {
            threads: resolve_threads(threads).max(1),
            tracer,
            lifecycle: None,
        }
    }

    /// Attaches a lifecycle context: every worker polls it once per chunk
    /// claim (and the serial path once per chunk), so cancellation,
    /// deadlines, and budget exhaustion stop a parallel-for within one
    /// chunk granule, surfacing the typed lifecycle error with normal
    /// earliest-chunk priority.
    pub fn with_lifecycle(mut self, ctx: LifecycleCtx) -> Pool {
        self.lifecycle = Some(ctx);
        self
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunked parallel-for over `0..n`: `f` is called once per chunk (a
    /// sub-range of length ≤ `chunk`) and the chunk results are returned
    /// **in chunk order** — byte-for-byte the same vector a serial loop
    /// would produce, for every thread count.
    ///
    /// With one worker (or one chunk) the closure runs inline on the
    /// calling thread. On error or panic the earliest chunk's failure is
    /// returned; remaining workers stop claiming new chunks.
    pub fn map_chunks<R, F>(
        &self,
        parent: Option<&Span>,
        n: usize,
        chunk: usize,
        f: F,
    ) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(Range<usize>) -> Result<R> + Sync,
    {
        let chunk = chunk.max(1);
        let nchunks = n.div_ceil(chunk);
        if nchunks == 0 {
            return Ok(Vec::new());
        }
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.counter(names::EXEC_TASKS).add(nchunks as u64);
        }
        // `lo` cannot overflow (`c < nchunks` implies `c * chunk < n`) but
        // `lo + chunk` can when `n` is within one chunk of `usize::MAX`;
        // saturate before clamping to `n`.
        let chunk_range = |c: usize| {
            let lo = c * chunk;
            lo..lo.saturating_add(chunk).min(n)
        };
        let chunk_hist = traced.then(|| self.tracer.histogram(names::EXEC_CHUNK_NS));
        let workers = self.threads.min(nchunks);
        if workers <= 1 {
            let mut out = Vec::with_capacity(nchunks);
            for c in 0..nchunks {
                if let Some(lc) = &self.lifecycle {
                    lc.poll()?;
                }
                let started = chunk_hist.as_ref().map(|_| Instant::now());
                let r = f(chunk_range(c))?;
                if let (Some(h), Some(t0)) = (&chunk_hist, started) {
                    h.record_duration(t0.elapsed());
                }
                out.push(r);
            }
            return Ok(out);
        }
        if traced {
            self.tracer.counter(names::EXEC_WORKERS).add(workers as u64);
        }
        let steal_waits = self.tracer.counter(names::EXEC_STEAL_WAITS);
        let queue_hist = traced.then(|| self.tracer.histogram(names::EXEC_QUEUE_WAIT_NS));
        let spawn_epoch = Instant::now();

        // Per worker: its join result wrapping the (chunk index, chunk
        // result) pairs it claimed.
        type WorkerHarvest<R> = std::thread::Result<Vec<(usize, Result<R>)>>;
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let lifecycle = self.lifecycle.as_ref();
        let joined: Vec<WorkerHarvest<R>> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let cursor = &cursor;
                let stop = &stop;
                let f = &f;
                let chunk_range = &chunk_range;
                let steal_waits = steal_waits.clone();
                let chunk_hist = chunk_hist.clone();
                let queue_hist = queue_hist.clone();
                handles.push(s.spawn(move || {
                    let _live = schedule::worker_guard();
                    let mut wspan = if traced {
                        parent.map(|p| p.child("exec.worker"))
                    } else {
                        None
                    };
                    let mut local: Vec<(usize, Result<R>)> = Vec::new();
                    let mut tasks = 0u64;
                    let mut first_claim = queue_hist.is_some();
                    loop {
                        schedule::yield_point(schedule::Site::StopCheck);
                        // ORDERING: advisory early-exit hint — a missed flag
                        // only runs extra chunks that the error discards; the
                        // scope join publishes all worker state to the caller.
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // Capping at `nchunks` (instead of fetch_add past the
                        // end) keeps the cursor from ever wrapping when
                        // `nchunks` is within `workers` of `usize::MAX`.
                        // ORDERING: CAS atomicity alone makes claims unique;
                        // claim order carries no data (results are re-sorted).
                        let claimed =
                            cursor.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                                if c < nchunks {
                                    Some(c + 1)
                                } else {
                                    None
                                }
                            });
                        schedule::yield_point(schedule::Site::CursorClaim);
                        let c = match claimed {
                            Ok(c) => c,
                            Err(_) => {
                                if traced {
                                    steal_waits.incr();
                                }
                                break;
                            }
                        };
                        if first_claim {
                            first_claim = false;
                            if let Some(h) = &queue_hist {
                                h.record_duration(spawn_epoch.elapsed());
                            }
                        }
                        // Lifecycle poll per claimed chunk: attributing the
                        // failure to chunk `c` keeps the earliest-chunk error
                        // priority deterministic.
                        if let Some(lc) = lifecycle {
                            if let Err(e) = lc.poll() {
                                // ORDERING: advisory stop (see the load above).
                                stop.store(true, Ordering::Relaxed);
                                local.push((c, Err(e)));
                                break;
                            }
                        }
                        let Range { start: lo, end: hi } = chunk_range(c);
                        let started = chunk_hist.as_ref().map(|_| Instant::now());
                        match catch_unwind(AssertUnwindSafe(|| f(lo..hi))) {
                            Ok(Ok(r)) => {
                                tasks += 1;
                                if let (Some(h), Some(t0)) = (&chunk_hist, started) {
                                    h.record_duration(t0.elapsed());
                                }
                                local.push((c, Ok(r)));
                                schedule::yield_point(schedule::Site::ChunkDone);
                            }
                            Ok(Err(e)) => {
                                // ORDERING: advisory stop (see the load above);
                                // the error itself travels in `local`, published
                                // by the scope join, not by this store.
                                stop.store(true, Ordering::Relaxed);
                                local.push((c, Err(e)));
                                break;
                            }
                            Err(payload) => {
                                // ORDERING: advisory stop (see the load above).
                                stop.store(true, Ordering::Relaxed);
                                local.push((
                                    c,
                                    Err(Error::Internal(format!(
                                        "exec worker panicked: {}",
                                        panic_message(payload.as_ref())
                                    ))),
                                ));
                                break;
                            }
                        }
                    }
                    if let Some(span) = wspan.as_mut() {
                        span.attr_u64("worker", w as u64);
                        span.attr_u64("tasks", tasks);
                    }
                    local
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut slots: Vec<(usize, Result<R>)> = Vec::with_capacity(nchunks);
        // allow(hdsj::lifecycle_poll): one iteration per worker handle,
        // bounded by pool width; the workers themselves polled per chunk.
        for worker in joined {
            match worker {
                Ok(local) => slots.extend(local),
                // catch_unwind contains all user code; an escape here means
                // the pool's own bookkeeping failed.
                Err(payload) => {
                    return Err(Error::Internal(format!(
                        "exec worker died outside containment: {}",
                        panic_message(payload.as_ref())
                    )))
                }
            }
        }
        slots.sort_unstable_by_key(|(c, _)| *c);
        let mut out = Vec::with_capacity(slots.len());
        for (_, r) in slots {
            out.push(r?);
        }
        Ok(out)
    }

    /// [`Pool::map_chunks`] followed by a fold over the chunk results, in
    /// chunk order — so the reduction is as deterministic as the map.
    pub fn map_reduce<R, A, F, G>(
        &self,
        parent: Option<&Span>,
        n: usize,
        chunk: usize,
        map: F,
        init: A,
        mut fold: G,
    ) -> Result<A>
    where
        R: Send,
        F: Fn(Range<usize>) -> Result<R> + Sync,
        G: FnMut(A, R) -> A,
    {
        let mut acc = init;
        // allow(hdsj::lifecycle_poll): folds already-computed per-chunk
        // results; the workers that produced them polled per chunk.
        for r in self.map_chunks(parent, n, chunk, map)? {
            acc = fold(acc, r);
        }
        Ok(acc)
    }

    /// Runs `producer` on the calling thread while each closure in
    /// `consumers` runs on its own worker. The channel (or other handoff)
    /// between them belongs to the caller: each consumer closure should own
    /// its receiver clone, and the caller must drop the original receiver
    /// *before* calling so consumer exit terminates the producer's sends.
    ///
    /// Consumer panics are contained into typed errors. Error priority:
    /// the lowest-indexed failing consumer wins, then the producer's error.
    pub fn producer_consumers<P, C, FP, FC>(
        &self,
        consumers: Vec<FC>,
        producer: FP,
    ) -> Result<(P, Vec<C>)>
    where
        C: Send,
        FP: FnOnce() -> Result<P>,
        FC: FnOnce(usize) -> Result<C> + Send,
    {
        // One poll before fan-out: a query already canceled (or past its
        // deadline) never spawns the consumer stage at all. In-flight
        // cancellation is observed by the producer's own poll sites.
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        if self.tracer.enabled() {
            self.tracer
                .counter(names::EXEC_WORKERS)
                .add(consumers.len() as u64);
        }
        let (produced, outcomes): (Result<P>, Vec<std::thread::Result<Result<C>>>) =
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(consumers.len());
                for (idx, consumer) in consumers.into_iter().enumerate() {
                    handles.push(s.spawn(move || {
                        let _live = schedule::worker_guard();
                        schedule::yield_point(schedule::Site::ConsumerStart);
                        catch_unwind(AssertUnwindSafe(|| consumer(idx))).unwrap_or_else(
                            |payload| {
                                Err(Error::Internal(format!(
                                    "exec worker {idx} panicked: {}",
                                    panic_message(payload.as_ref())
                                )))
                            },
                        )
                    }));
                }
                let produced =
                    catch_unwind(AssertUnwindSafe(producer)).unwrap_or_else(|payload| {
                        Err(Error::Internal(format!(
                            "exec producer panicked: {}",
                            panic_message(payload.as_ref())
                        )))
                    });
                (produced, handles.into_iter().map(|h| h.join()).collect())
            });

        let mut results = Vec::with_capacity(outcomes.len());
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(Ok(c)) => results.push(c),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    return Err(Error::Internal(format!(
                        "exec worker {idx} died outside containment: {}",
                        panic_message(payload.as_ref())
                    )))
                }
            }
        }
        let p = produced?;
        Ok((p, results))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_core::obs::names;
    use hdsj_core::Tracer;

    #[test]
    fn map_chunks_is_deterministic_across_thread_counts() {
        let n = 1003;
        let want: Vec<Vec<usize>> = Pool::new(1)
            .map_chunks(None, n, 17, |r| Ok(r.collect::<Vec<_>>()))
            .unwrap();
        for threads in [2, 3, 4, 8] {
            let got = Pool::new(threads)
                .map_chunks(None, n, 17, |r| Ok(r.collect::<Vec<_>>()))
                .unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
        // And the flattened output is exactly 0..n in order.
        let flat: Vec<usize> = want.into_iter().flatten().collect();
        assert_eq!(flat, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<u8> = Pool::new(4).map_chunks(None, 0, 16, |_| Ok(0u8)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn near_overflow_chunk_math_saturates() {
        // `n` within one chunk of `usize::MAX`: the last chunk's naive
        // `lo + chunk` wraps. The ranges must tile [0, n) exactly instead.
        let n = usize::MAX;
        let chunk = usize::MAX / 2 + 1;
        for threads in [1, 2] {
            let bounds: Vec<(usize, usize)> = Pool::new(threads)
                .map_chunks(None, n, chunk, |r| Ok((r.start, r.end)))
                .unwrap();
            assert_eq!(bounds, vec![(0, chunk), (chunk, n)], "threads={threads}");
        }
        // One-short-of-MAX count with chunk 1 at the tail: hi clamps to n.
        let bounds: Vec<(usize, usize)> = Pool::new(2)
            .map_chunks(None, 3, usize::MAX, |r| Ok((r.start, r.end)))
            .unwrap();
        assert_eq!(bounds, vec![(0, 3)]);
    }

    #[test]
    fn chunk_and_queue_wait_histograms_are_recorded() {
        let (tracer, sink) = Tracer::memory();
        let pool = Pool::with_tracer(3, tracer.clone());
        let out = pool.map_chunks(None, 90, 10, |r| Ok(r.len())).unwrap();
        assert_eq!(out.len(), 9);
        // Serial pools record chunk durations too.
        Pool::with_tracer(1, tracer.clone())
            .map_chunks(None, 20, 10, |r| Ok(r.len()))
            .unwrap();
        tracer.flush();
        let chunks = sink.hist_snapshot(names::EXEC_CHUNK_NS).unwrap();
        assert_eq!(chunks.count, 11, "9 parallel + 2 serial chunks");
        let waits = sink.hist_snapshot(names::EXEC_QUEUE_WAIT_NS).unwrap();
        assert!(
            (1..=3).contains(&waits.count),
            "each worker that claimed work records one wait, got {}",
            waits.count
        );
        // Untraced pools record nothing.
        let t = Tracer::disabled();
        Pool::with_tracer(2, t.clone())
            .map_chunks(None, 20, 10, |r| Ok(r.len()))
            .unwrap();
        assert!(t.metrics_snapshot().is_empty());
    }

    #[test]
    fn earliest_chunk_error_wins() {
        for threads in [1, 4] {
            let err = Pool::new(threads)
                .map_chunks(None, 100, 10, |r| {
                    if r.start >= 30 {
                        Err(Error::Internal(format!("chunk at {}", r.start)))
                    } else {
                        Ok(r.start)
                    }
                })
                .unwrap_err();
            assert!(
                err.to_string().contains("chunk at 30"),
                "threads={threads}: {err}"
            );
        }
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        let err = Pool::new(3)
            .map_chunks(None, 50, 5, |r| {
                if r.start == 20 {
                    // allow(hdsj::no_panic): the containment path under test.
                    panic!("boom at {}", r.start);
                }
                Ok(r.start)
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("boom at 20"), "{msg}");
    }

    #[test]
    fn map_reduce_sums_in_chunk_order() {
        let total = Pool::new(4)
            .map_reduce(
                None,
                1000,
                7,
                |r| Ok(r.sum::<usize>()),
                0usize,
                |acc, s| acc + s,
            )
            .unwrap();
        assert_eq!(total, (0..1000).sum::<usize>());
    }

    #[test]
    fn counters_and_worker_spans_are_reported() {
        let (tracer, sink) = Tracer::memory();
        let pool = Pool::with_tracer(4, tracer.clone());
        let root = tracer.span("root");
        let out = pool
            .map_chunks(Some(&root), 64, 8, |r| Ok(r.len()))
            .unwrap();
        assert_eq!(out.len(), 8);
        root.finish();
        tracer.flush();
        assert_eq!(sink.counter_value(names::EXEC_TASKS), Some(8));
        assert_eq!(sink.counter_value(names::EXEC_WORKERS), Some(4));
        let workers = sink
            .spans()
            .iter()
            .filter(|s| s.name == "exec.worker")
            .count();
        assert_eq!(workers, 4);
    }

    #[test]
    fn producer_consumers_round_trip() {
        let pool = Pool::new(3);
        let (tx, rx) = crossbeam::channel::bounded::<u64>(8);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                move |_idx: usize| {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    Ok(sum)
                }
            })
            .collect();
        drop(rx);
        let (count, sums) = pool
            .producer_consumers(consumers, move || {
                for v in 1..=100u64 {
                    tx.send(v)
                        .map_err(|_| Error::Internal("send failed".into()))?;
                }
                Ok(100u64)
            })
            .unwrap();
        assert_eq!(count, 100);
        assert_eq!(sums.iter().sum::<u64>(), (1..=100u64).sum::<u64>());
    }

    #[test]
    fn consumer_panic_beats_producer_error() {
        let pool = Pool::new(2);
        let (tx, rx) = crossbeam::channel::bounded::<u64>(1);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                move |idx: usize| -> Result<u64> {
                    drop(rx);
                    // allow(hdsj::no_panic): the containment path under test.
                    panic!("injected consumer failure (worker {idx})")
                }
            })
            .collect();
        drop(rx);
        let err = pool
            .producer_consumers(consumers, move || {
                // All consumers die immediately; sends fail once the ring
                // fills and every receiver is gone.
                for v in 0..100u64 {
                    if tx.send(v).is_err() {
                        return Err(Error::Internal("producer send failed".into()));
                    }
                }
                Ok(0u64)
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "{msg}");
        assert!(
            msg.contains("injected consumer failure (worker 0)"),
            "{msg}"
        );
    }

    #[test]
    fn cross_thread_cancel_stops_within_one_chunk() {
        use hdsj_core::LifecycleCtx;
        let ctx = LifecycleCtx::unbounded();
        let token = ctx.cancel_token();
        let pool = Pool::new(4).with_lifecycle(ctx);
        let executed = AtomicUsize::new(0);
        let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
        let canceler = std::thread::spawn(move || {
            // Wait for the first chunk to start, then cancel from outside.
            started_rx.recv().ok();
            token.cancel();
        });
        let err = pool
            .map_chunks(None, 4000, 1, |r| {
                executed.fetch_add(1, Ordering::Relaxed);
                if r.start == 0 {
                    started_tx.send(()).ok();
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(r.start)
            })
            .unwrap_err();
        canceler.join().unwrap();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
        // Workers poll at every claim: once the flag is visible each worker
        // finishes at most the chunk it already holds, so the run stops far
        // short of the full input.
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < 4000, "canceled run executed all {ran} chunks");
    }

    #[test]
    fn serial_pool_observes_deadline_per_chunk() {
        use hdsj_core::LifecycleCtx;
        let ctx = LifecycleCtx::builder().deadline_ms(5).build();
        let pool = Pool::new(1).with_lifecycle(ctx);
        let err = pool
            .map_chunks(None, 1000, 1, |r| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(r.start)
            })
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "{err}");
    }

    #[test]
    fn canceled_lifecycle_blocks_producer_consumers() {
        use hdsj_core::LifecycleCtx;
        let ctx = LifecycleCtx::unbounded();
        ctx.cancel_token().cancel();
        let pool = Pool::new(2).with_lifecycle(ctx);
        let consumers: Vec<_> = (0..2).map(|_| |_idx: usize| Ok(0u64)).collect();
        let err = pool.producer_consumers(consumers, || Ok(0u64)).unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
    }

    #[test]
    fn thread_count_resolution() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
        assert_eq!(Pool::new(0).threads(), resolve_threads(0));
    }
}

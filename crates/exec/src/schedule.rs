//! Schedule exploration (loom-lite) for the pool — the `debug-schedules`
//! feature.
//!
//! The pool's guarantees (chunk-order determinism, earliest-chunk error
//! priority, quiescent shutdown) must hold under *every* interleaving, but
//! an ordinary test run only sees the few schedules the OS happens to
//! produce. This module makes schedules a controlled input:
//!
//! * The pool calls [`yield_point`] at each interesting transition
//!   ([`Site`]: worker start, stop-flag check, cursor claim, chunk
//!   completion, consumer start, worker exit). With the feature off these
//!   are inlined no-ops; with it on, each call mixes the installed seed
//!   with a per-thread step counter and the site id through a SplitMix64
//!   hash and issues 0–3 `std::thread::yield_now()` calls. Different
//!   seeds therefore steer the scheduler through different interleavings,
//!   and the *same* seed replays (as closely as a real scheduler allows)
//!   the same perturbation — a failing seed is printed and re-runnable.
//! * Every pool worker holds a liveness guard ([`worker_guard`]) so
//!   [`live_workers`] must read zero once a pool call returns — the
//!   quiescent-shutdown assertion.
//! * The `explorer` submodule (feature-gated like the rest of this
//!   machinery) drives all three primitives (`map_chunks`,
//!   `map_reduce`, `producer_consumers`) through a seed range, asserting
//!   byte-determinism against serially computed expectations, sum
//!   preservation across a producer/consumer handoff, deterministic
//!   error identity, and post-return quiescence for each seed.
//!
//! This is deliberately *not* loom: no model checking, no exhaustive
//! interleaving enumeration, std only. It buys a large, reproducible
//! sample of schedules for a few hundred milliseconds of test time.
//!
//! The issue sketch spells the gate `#[cfg(debug_schedules)]`; the
//! implementation uses a cargo feature (`--features debug-schedules`),
//! matching the storage crate's `debug-invariants` precedent, so CI and
//! the root package can forward it without custom `RUSTFLAGS`.

/// A named yield point inside the pool. The discriminant feeds the
/// perturbation hash, so distinct sites perturb differently under one
/// seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// A worker thread has started (map_chunks).
    WorkerStart,
    /// About to check the stop flag.
    StopCheck,
    /// Just claimed a chunk index from the cursor.
    CursorClaim,
    /// Finished a chunk (result recorded locally).
    ChunkDone,
    /// A producer_consumers worker has started.
    ConsumerStart,
    /// A worker's liveness guard is dropping.
    WorkerExit,
}

#[cfg(feature = "debug-schedules")]
mod imp {
    use super::Site;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static POINTS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static STEP: Cell<u64> = const { Cell::new(0) };
    }

    /// SplitMix64: full-avalanche mixing of seed × site × step.
    pub(crate) fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Turns perturbation on with `seed` steering the interleavings.
    pub fn install(seed: u64) {
        SEED.store(seed, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns perturbation back off (yield points become cheap early
    /// returns again).
    pub fn uninstall() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Workers currently inside a pool primitive. Zero whenever no pool
    /// call is in flight — the quiescent-shutdown property.
    pub fn live_workers() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Total yield points hit since the process started (liveness signal:
    /// proves the hooks actually fired during a sweep).
    pub fn points() -> u64 {
        POINTS.load(Ordering::Relaxed)
    }

    /// RAII liveness marker held by every pool worker for its whole run.
    pub struct WorkerGuard(());

    impl Drop for WorkerGuard {
        fn drop(&mut self) {
            yield_point(Site::WorkerExit);
            LIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Marks a pool worker live until the returned guard drops.
    pub fn worker_guard() -> WorkerGuard {
        LIVE.fetch_add(1, Ordering::Relaxed);
        yield_point(Site::WorkerStart);
        WorkerGuard(())
    }

    /// The pool's scheduling hook: under an installed seed, maybe yield
    /// the OS scheduler 0–3 times, steered by (seed, thread step, site).
    pub fn yield_point(site: Site) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        POINTS.fetch_add(1, Ordering::Relaxed);
        let step = STEP.with(|s| {
            let v = s.get();
            s.set(v.wrapping_add(1));
            v
        });
        let h = mix(SEED.load(Ordering::Relaxed)
            ^ ((site as u64) << 32)
            ^ step.wrapping_mul(0x9E37));
        // allow(hdsj::lifecycle_poll): at most three yields (h % 4), a
        // perturbation knob, not an input-sized loop.
        for _ in 0..(h % 4) {
            std::thread::yield_now();
        }
    }
}

#[cfg(not(feature = "debug-schedules"))]
mod imp {
    use super::Site;

    /// RAII liveness marker (no-op without `debug-schedules`).
    pub struct WorkerGuard(());

    /// No-op without `debug-schedules`.
    #[inline(always)]
    pub fn worker_guard() -> WorkerGuard {
        WorkerGuard(())
    }

    /// No-op without `debug-schedules`.
    #[inline(always)]
    pub fn yield_point(_site: Site) {}

    /// Always zero without `debug-schedules`.
    #[inline(always)]
    pub fn live_workers() -> usize {
        0
    }
}

pub use imp::*;

/// The seeded scenario driver: runs the pool's three primitives under
/// schedule perturbation and checks their contracts after every seed.
#[cfg(feature = "debug-schedules")]
pub mod explorer {
    use super::imp::{install, live_workers, mix, uninstall};
    use crate::Pool;
    use hdsj_core::Error;
    use std::collections::VecDeque;
    use std::ops::Range;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard};

    /// A violated contract: which seed, which scenario, what went wrong.
    /// `seed` is all that is needed to replay — `explore(seed..seed + 1)`.
    #[derive(Debug)]
    pub struct Failure {
        pub seed: u64,
        pub scenario: &'static str,
        pub message: String,
    }

    impl std::fmt::Display for Failure {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "seed {} / scenario {}: {} (replay: HDSJ_SCHED_SEEDS={}..{} \
                 cargo test -p hdsj-exec --features debug-schedules --test schedule_explorer)",
                self.seed,
                self.scenario,
                self.message,
                self.seed,
                self.seed + 1
            )
        }
    }

    /// What a completed sweep covered.
    #[derive(Debug)]
    pub struct Report {
        pub seeds: u64,
        pub scenarios_per_seed: usize,
    }

    type Scenario = (&'static str, fn() -> Result<(), String>);

    const SCENARIOS: &[Scenario] = &[
        ("map_chunks_determinism", map_chunks_determinism),
        ("map_reduce_sum", map_reduce_sum),
        ("producer_consumers_sum", producer_consumers_sum),
        ("error_priority_quiescence", error_priority_quiescence),
        ("traced_pool_metrics", traced_pool_metrics),
    ];

    /// Runs every scenario under every seed in `seeds`, stopping at the
    /// first violated contract. After each scenario the worker-liveness
    /// count must be back to zero (quiescent shutdown).
    pub fn explore(seeds: Range<u64>) -> Result<Report, Failure> {
        let nseeds = seeds.end.saturating_sub(seeds.start);
        for seed in seeds {
            for (name, scenario) in SCENARIOS {
                install(seed);
                let outcome = scenario();
                let live = live_workers();
                uninstall();
                if let Err(message) = outcome {
                    return Err(Failure {
                        seed,
                        scenario: name,
                        message,
                    });
                }
                if live != 0 {
                    return Err(Failure {
                        seed,
                        scenario: name,
                        message: format!("{live} workers still live after the pool returned"),
                    });
                }
            }
        }
        Ok(Report {
            seeds: nseeds,
            scenarios_per_seed: SCENARIOS.len(),
        })
    }

    /// The workload: an arbitrary but fixed pure function, so divergence
    /// anywhere in the output is visible.
    fn item(i: usize) -> u64 {
        mix(i as u64)
    }

    /// `map_chunks` must produce byte-identical output at every thread
    /// count, under any interleaving.
    fn map_chunks_determinism() -> Result<(), String> {
        let (n, chunk) = (257, 9);
        let expected: Vec<u64> = (0..n).map(item).collect();
        for threads in [2usize, 4, 8] {
            let got = Pool::new(threads)
                .map_chunks(None, n, chunk, |r: Range<usize>| {
                    Ok(r.map(item).collect::<Vec<u64>>())
                })
                .map_err(|e| format!("map_chunks failed: {e}"))?;
            let flat: Vec<u64> = got.into_iter().flatten().collect();
            if flat != expected {
                return Err(format!("output diverged from serial at {threads} threads"));
            }
        }
        Ok(())
    }

    /// `map_reduce` folds chunk results in chunk order; the total must
    /// match the closed form.
    fn map_reduce_sum() -> Result<(), String> {
        let n = 1000usize;
        let total = Pool::new(4)
            .map_reduce(
                None,
                n,
                7,
                |r: Range<usize>| Ok(r.sum::<usize>()),
                0usize,
                |acc, s| acc + s,
            )
            .map_err(|e| format!("map_reduce failed: {e}"))?;
        let want = n * (n - 1) / 2;
        if total != want {
            return Err(format!("sum {total} != {want}"));
        }
        Ok(())
    }

    /// A minimal closeable MPMC queue (std `Mutex` + `Condvar`) so the
    /// producer/consumer scenario needs no dev-dependency inside `src/`.
    struct Queue {
        items: Mutex<(VecDeque<u64>, bool)>,
        ready: Condvar,
    }

    impl Queue {
        fn new() -> Queue {
            Queue {
                items: Mutex::new((VecDeque::new(), false)),
                ready: Condvar::new(),
            }
        }

        /// Mutex poisoning only happens if a holder panicked; the pool
        /// contains panics before they can reach these critical sections,
        /// so recovering the inner state is sound.
        fn guard(&self) -> MutexGuard<'_, (VecDeque<u64>, bool)> {
            match self.items.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        fn push(&self, v: u64) {
            self.guard().0.push_back(v);
            self.ready.notify_one();
        }

        fn close(&self) {
            self.guard().1 = true;
            self.ready.notify_all();
        }

        fn pop(&self) -> Option<u64> {
            let mut g = self.guard();
            // allow(hdsj::lifecycle_poll): condvar wait loop — sleeps until
            // notified, terminates when the queue closes.
            loop {
                if let Some(v) = g.0.pop_front() {
                    return Some(v);
                }
                if g.1 {
                    return None;
                }
                g = match self.ready.wait(g) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
    }

    /// `producer_consumers` must conserve the produced values: every item
    /// sent is consumed exactly once, across any schedule.
    fn producer_consumers_sum() -> Result<(), String> {
        let q = Queue::new();
        let nconsumers = 3usize;
        let consumers: Vec<_> = (0..nconsumers)
            .map(|_| {
                let q = &q;
                move |_idx: usize| {
                    let mut sum = 0u64;
                    let mut count = 0u64;
                    // allow(hdsj::lifecycle_poll): explorer scenario drains
                    // a fixed, small item count; not a query path.
                    while let Some(v) = q.pop() {
                        sum += v;
                        count += 1;
                    }
                    Ok((sum, count))
                }
            })
            .collect();
        let (sent, harvested) = Pool::new(nconsumers)
            .producer_consumers(consumers, || {
                for v in 1..=200u64 {
                    q.push(v);
                }
                q.close();
                Ok(200u64)
            })
            .map_err(|e| format!("producer_consumers failed: {e}"))?;
        let total: u64 = harvested.iter().map(|(s, _)| s).sum();
        let count: u64 = harvested.iter().map(|(_, c)| c).sum();
        let want: u64 = (1..=200u64).sum();
        if sent != 200 || count != 200 || total != want {
            return Err(format!(
                "handoff lost items: sent={sent} consumed={count} sum={total} want={want}"
            ));
        }
        Ok(())
    }

    /// A *traced* pool run (live memory-sink tracer) must not deadlock
    /// under perturbation, and its metrics must stay schedule-stable:
    /// the task counter equals the chunk count, the per-chunk latency
    /// histogram records exactly one sample per chunk, and the results
    /// themselves remain byte-deterministic. This guards the metric
    /// record paths (sharded histogram cells, counter cells) against
    /// interleaving bugs that an untraced sweep can never see.
    fn traced_pool_metrics() -> Result<(), String> {
        let (tracer, sink) = hdsj_core::obs::Tracer::memory();
        let (n, chunk) = (203usize, 7usize);
        let nchunks = n.div_ceil(chunk) as u64;
        let expected: Vec<u64> = (0..n).map(item).collect();
        let got = Pool::with_tracer(3, tracer.clone())
            .map_chunks(None, n, chunk, |r: Range<usize>| {
                Ok(r.map(item).collect::<Vec<u64>>())
            })
            .map_err(|e| format!("traced map_chunks failed: {e}"))?;
        let flat: Vec<u64> = got.into_iter().flatten().collect();
        if flat != expected {
            return Err("traced output diverged from serial".to_string());
        }
        tracer.flush();
        let tasks = sink.counter_value(hdsj_core::obs::names::EXEC_TASKS);
        if tasks != Some(nchunks) {
            return Err(format!("task counter {tasks:?} != chunks {nchunks}"));
        }
        match sink.hist_snapshot(hdsj_core::obs::names::EXEC_CHUNK_NS) {
            Some(h) if h.count == nchunks => {}
            Some(h) => {
                return Err(format!(
                    "chunk histogram saw {} samples, want {nchunks}",
                    h.count
                ))
            }
            None => return Err("chunk histogram missing from the flush".to_string()),
        }
        Ok(())
    }

    /// Error identity is schedule-independent (the earliest failing chunk
    /// wins), and after the pool returns nothing is still running: the
    /// executed-counter is stable and the liveness count is zero.
    fn error_priority_quiescence() -> Result<(), String> {
        let executed = AtomicUsize::new(0);
        let run = || {
            Pool::new(4).map_chunks(None, 3000, 2, |r: Range<usize>| {
                if r.start == 10 {
                    Err(Error::Internal(format!("injected at {}", r.start)))
                } else {
                    executed.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
            })
        };
        let msg = match run() {
            Ok(_) => return Err("expected the injected error to surface".to_string()),
            Err(e) => e.to_string(),
        };
        if !msg.contains("injected at 10") {
            return Err(format!("error identity not deterministic: {msg}"));
        }
        // Quiescence: the scope has joined, so no straggler may still be
        // bumping the counter.
        let before = executed.load(Ordering::Relaxed);
        for _ in 0..8 {
            std::thread::yield_now();
        }
        let after = executed.load(Ordering::Relaxed);
        if before != after {
            return Err(format!(
                "workers still running after return: executed moved {before} -> {after}"
            ));
        }
        // Replay determinism of the error path: the same run yields the
        // same error identity.
        let msg2 = match run() {
            Ok(_) => return Err("expected the injected error to surface (rerun)".to_string()),
            Err(e) => e.to_string(),
        };
        if msg2 != msg {
            return Err(format!("error not replayable: {msg:?} vs {msg2:?}"));
        }
        Ok(())
    }
}

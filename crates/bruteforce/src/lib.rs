//! # hdsj-bruteforce — block nested-loop similarity join
//!
//! The quadratic baseline of the paper's evaluation and the **ground truth**
//! for every correctness test in the workspace: it evaluates the exact
//! metric on all `N·M` (or `N(N−1)/2`) pairs with no filter structure at
//! all, so its result set is correct by construction.
//!
//! The loops are cache-blocked: the inner set is transposed **once** into
//! L1-sized structure-of-arrays tiles ([`hdsj_core::SoABlock`]), outer
//! rows walk in L2-sized blocks, and every (probe, tile) pair runs the
//! across-candidate SIMD kernel through `Refiner::offer_block` /
//! `Metric::within_block` with a single metric dispatch per tile. Tile
//! sizes come from the host cache probe (`hdsj_core::simd::tile`) when
//! [`BruteForce::block`] is `0` (the default); an explicit block size is
//! honoured for both loops. Tiling changes only loop chunking — the
//! kernels are bit-exact across dispatch levels and tile widths — so
//! results never depend on the blocking. An optional thread count fans
//! the outer rows out over the `hdsj-exec` pool, whose chunk-ordered
//! results keep output deterministic at every thread count.
#![forbid(unsafe_code)]

use hdsj_core::obs::Span;
use hdsj_core::simd::tile;
use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, JoinKind, JoinSpec, JoinStats, LifecycleCtx, PairSink,
    Refiner, Result, SimilarityJoin, SoABlock, Tracer,
};
use hdsj_exec::Pool;
use std::ops::Range;

/// Block nested-loop join.
#[derive(Clone, Debug)]
pub struct BruteForce {
    /// Points per tile of the blocked loops; `0` (the default) sizes the
    /// candidate tile for L1d and the probe block for L2 from the host
    /// cache probe.
    pub block: usize,
    /// Worker threads; `1` runs single-threaded on the calling thread.
    pub threads: usize,
    /// Per-query lifecycle context, polled at phase boundaries, at every
    /// probe-block/tile boundary of the serial loops, and (via the exec
    /// pool) at chunk boundaries.
    lifecycle: Option<LifecycleCtx>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl Default for BruteForce {
    fn default() -> BruteForce {
        BruteForce {
            block: 0,
            threads: 1,
            lifecycle: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// Effective (candidate-tile width, probe-block rows) for a join over
/// `dims`-dimensional points: the explicit `block` when non-zero, else
/// the cache-derived sizes.
fn blocking(block: usize, dims: usize) -> (usize, usize) {
    if block > 0 {
        (block, block)
    } else {
        (tile::soa_tile_width(dims), tile::probe_block_rows(dims))
    }
}

impl BruteForce {
    /// A parallel instance with `threads` workers.
    pub fn parallel(threads: usize) -> BruteForce {
        BruteForce {
            threads: hdsj_exec::resolve_threads(threads).max(1),
            ..BruteForce::default()
        }
    }

    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        validate_inputs(a, b, spec)?;
        let mut phases = Vec::new();

        let mut root = self.tracer.span("bf.join");
        root.attr_str("algo", "BF");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", a.dims() as u64);
        root.attr_f64("eps", spec.eps);
        root.attr_u64("threads", self.threads as u64);

        let timer = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "join",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::BF_PHASE_JOIN_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let stats = if self.threads <= 1 {
            let mut refiner = Refiner::new(a, b, kind, spec, sink);
            serial_tiles(
                a,
                b,
                kind,
                self.block,
                self.lifecycle.as_ref(),
                &mut |i, tile, lanes| refiner.offer_block(i, tile, lanes),
            )?;
            refiner.finish(JoinStats::default())
        } else {
            self.run_parallel(a, b, kind, spec, sink, &root)?
        };
        timer.finish(&mut phases);
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("bf.candidates").add(stats.candidates);
            self.tracer.counter("bf.results").add(stats.results);
        }
        root.finish();
        Ok(JoinStats { phases, ..stats })
    }

    fn run_parallel(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
        parent: &Span,
    ) -> Result<JoinStats> {
        let n = a.len();
        let mut pool = Pool::with_tracer(self.threads, self.tracer.clone());
        if let Some(lc) = &self.lifecycle {
            pool = pool.with_lifecycle(lc.clone());
        }
        // Several chunks per worker: self-join rows get cheaper as i grows,
        // so finer chunks balance the tail. Chunk-ordered results keep the
        // sink delivery deterministic at every thread count.
        let chunk = n.div_ceil(self.threads * 4).max(1);
        let (tile_w, _) = blocking(self.block, b.dims());
        let metric = spec.metric.normalized();
        // One SoA transpose of the inner set, shared read-only by every
        // worker; each tile covers a contiguous ascending id range.
        let tiles = SoABlock::partition(b, tile_w);
        let results = pool.map_chunks(Some(parent), n, chunk, |rows: Range<usize>| {
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let mut candidates = 0u64;
            let mut hits: Vec<u32> = Vec::new();
            for i in rows.start as u32..rows.end as u32 {
                let pi = a.point(i);
                for tile in &tiles {
                    let Some(lanes) = tile_lanes(kind, i, tile) else {
                        continue;
                    };
                    candidates += (lanes.end - lanes.start) as u64;
                    hits.clear();
                    metric.within_block(pi, tile, lanes, spec.eps, &mut hits);
                    for &jj in &hits {
                        pairs.push((i, jj));
                    }
                }
            }
            Ok((pairs, candidates))
        })?;

        let mut stats = JoinStats::default();
        for (pairs, candidates) in results {
            stats.candidates += candidates;
            stats.dist_evals += candidates;
            stats.results += pairs.len() as u64;
            for (i, j) in pairs {
                sink.push(i, j);
            }
        }
        Ok(stats)
    }
}

/// The candidate lane range of `tile` for probe row `i`: every lane for
/// two-set joins, only lanes with id `> i` for self-joins (each unordered
/// pair is enumerated once, from its smaller row). Tiles cover contiguous
/// ascending id ranges, so the self-join cut is a lane-index clamp.
/// Returns `None` when no lane qualifies.
fn tile_lanes(kind: JoinKind, i: u32, tile: &SoABlock) -> Option<Range<usize>> {
    if tile.is_empty() {
        return None;
    }
    let start = match kind {
        JoinKind::TwoSets => 0usize,
        JoinKind::SelfJoin => {
            let first = tile.ids()[0];
            (i + 1).saturating_sub(first) as usize
        }
    };
    (start < tile.len()).then(|| start..tile.len())
}

/// Cache-blocked serial enumeration: the inner set is transposed once into
/// L1-sized SoA tiles, outer rows walk in L2-sized blocks, and each
/// (probe, tile) pair is emitted for one across-candidate kernel pass.
/// The lifecycle context (if any) is polled at every probe-block × tile
/// boundary, so a serial join observes cancellation within one tile sweep.
fn serial_tiles(
    a: &Dataset,
    b: &Dataset,
    kind: JoinKind,
    block: usize,
    lifecycle: Option<&LifecycleCtx>,
    emit: &mut impl FnMut(u32, &SoABlock, Range<usize>),
) -> Result<()> {
    let n = a.len() as u32;
    let (tile_w, probe_rows) = blocking(block, b.dims());
    let tiles = SoABlock::partition(b, tile_w);
    let mut bi = 0;
    while bi < n {
        let bi_end = (bi + probe_rows.max(1) as u32).min(n);
        for tile in &tiles {
            if let Some(lc) = lifecycle {
                lc.poll()?;
            }
            for i in bi..bi_end {
                if let Some(lanes) = tile_lanes(kind, i, tile) {
                    emit(i, tile, lanes);
                }
            }
        }
        bi = bi_end;
    }
    Ok(())
}

impl SimilarityJoin for BruteForce {
    fn name(&self) -> &'static str {
        "BF"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = hdsj_exec::resolve_threads(threads).max(1);
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_core::{verify, Metric, VecSink};

    fn grid_points() -> Dataset {
        // 4x4 grid with spacing 0.2.
        let mut ds = Dataset::new(2).unwrap();
        for x in 0..4 {
            for y in 0..4 {
                ds.push(&[x as f64 * 0.2, y as f64 * 0.2]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn self_join_counts_grid_neighbours() {
        let ds = grid_points();
        let spec = JoinSpec::new(0.21, Metric::L2);
        let mut sink = VecSink::default();
        let stats = BruteForce::default()
            .self_join(&ds, &spec, &mut sink)
            .unwrap();
        // 4x4 grid: 24 horizontal/vertical adjacent pairs within 0.21.
        assert_eq!(stats.results, 24);
        assert_eq!(stats.candidates, 16 * 15 / 2);
        assert!(sink.pairs.iter().all(|&(i, j)| i < j));
    }

    #[test]
    fn two_set_join_is_cross_product_filtered() {
        let a = Dataset::from_rows(&[vec![0.0, 0.0], vec![0.5, 0.5]]).unwrap();
        let b = Dataset::from_rows(&[vec![0.05, 0.0], vec![0.9, 0.9]]).unwrap();
        let spec = JoinSpec::new(0.1, Metric::L2);
        let mut sink = VecSink::default();
        let stats = BruteForce::default()
            .join(&a, &b, &spec, &mut sink)
            .unwrap();
        assert_eq!(sink.pairs, vec![(0, 0)]);
        assert_eq!(stats.candidates, 4);
    }

    #[test]
    fn tiny_blocks_do_not_change_results() {
        let ds = grid_points();
        let spec = JoinSpec::new(0.29, Metric::Linf);
        let mut want = VecSink::default();
        BruteForce::default()
            .self_join(&ds, &spec, &mut want)
            .unwrap();
        let mut got = VecSink::default();
        BruteForce {
            block: 3,
            threads: 1,
            ..BruteForce::default()
        }
        .self_join(&ds, &spec, &mut got)
        .unwrap();
        verify::assert_same_results("BF(block=3)", &want.pairs, &got.pairs);
    }

    #[test]
    fn parallel_matches_serial_on_random_data() {
        let ds = hdsj_data::uniform(6, 300, 7).unwrap();
        for kind in ["self", "two"] {
            let spec = JoinSpec::new(0.35, Metric::L2);
            let mut want = VecSink::default();
            let mut got = VecSink::default();
            if kind == "self" {
                BruteForce::default()
                    .self_join(&ds, &spec, &mut want)
                    .unwrap();
                BruteForce::parallel(4)
                    .self_join(&ds, &spec, &mut got)
                    .unwrap();
            } else {
                let other = hdsj_data::uniform(6, 200, 8).unwrap();
                BruteForce::default()
                    .join(&ds, &other, &spec, &mut want)
                    .unwrap();
                BruteForce::parallel(4)
                    .join(&ds, &other, &spec, &mut got)
                    .unwrap();
            }
            verify::assert_same_results("BF parallel", &want.pairs, &got.pairs);
        }
    }

    #[test]
    fn parallel_counters_match_serial() {
        let ds = hdsj_data::uniform(4, 101, 3).unwrap();
        let spec = JoinSpec::new(0.2, Metric::L2);
        let mut s1 = VecSink::default();
        let a = BruteForce::default()
            .self_join(&ds, &spec, &mut s1)
            .unwrap();
        let mut s2 = VecSink::default();
        let b = BruteForce::parallel(3)
            .self_join(&ds, &spec, &mut s2)
            .unwrap();
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn parallel_output_is_deterministic_across_thread_counts() {
        // Chunk-ordered pool results mean the sink sees pairs in the same
        // order no matter how many workers ran or how they were scheduled.
        let ds = hdsj_data::uniform(5, 240, 17).unwrap();
        let spec = JoinSpec::new(0.3, Metric::L2);
        let runs: Vec<Vec<(u32, u32)>> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| {
                let mut sink = VecSink::default();
                BruteForce::parallel(t)
                    .self_join(&ds, &spec, &mut sink)
                    .unwrap();
                sink.pairs
            })
            .collect();
        for (i, run) in runs.iter().enumerate().skip(1) {
            assert_eq!(run, &runs[0], "threads={}", [1, 2, 4, 8][i]);
        }
    }

    #[test]
    fn set_threads_switches_paths() {
        let ds = grid_points();
        let spec = JoinSpec::new(0.21, Metric::L2);
        let mut bf = BruteForce::default();
        bf.set_threads(4);
        assert_eq!(bf.threads, 4);
        let mut sink = VecSink::default();
        let stats = bf.self_join(&ds, &spec, &mut sink).unwrap();
        assert_eq!(stats.results, 24);
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let empty = Dataset::new(3).unwrap();
        let spec = JoinSpec::l2(0.1);
        let mut sink = VecSink::default();
        let stats = BruteForce::default()
            .self_join(&empty, &spec, &mut sink)
            .unwrap();
        assert_eq!(stats.results, 0);
        assert!(sink.pairs.is_empty());
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let ds = grid_points();
        let mut sink = VecSink::default();
        assert!(BruteForce::default()
            .self_join(&ds, &JoinSpec::l2(0.0), &mut sink)
            .is_err());
    }
}

//! # hdsj-bruteforce — block nested-loop similarity join
//!
//! The quadratic baseline of the paper's evaluation and the **ground truth**
//! for every correctness test in the workspace: it evaluates the exact
//! metric on all `N·M` (or `N(N−1)/2`) pairs with no filter structure at
//! all, so its result set is correct by construction.
//!
//! The loops are tiled ([`BruteForce::block`]) so both operands of the inner
//! loop stay cache-resident, and an optional thread count fans the outer
//! tiles out over `crossbeam::scope` workers.
#![forbid(unsafe_code)]

use crossbeam::thread;
use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, Error, JoinKind, JoinSpec, JoinStats, PairSink, Refiner,
    Result, SimilarityJoin, Tracer,
};

/// Block nested-loop join.
#[derive(Clone, Debug)]
pub struct BruteForce {
    /// Points per tile of the blocked loops.
    pub block: usize,
    /// Worker threads; `1` runs single-threaded on the calling thread.
    pub threads: usize,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl Default for BruteForce {
    fn default() -> BruteForce {
        BruteForce {
            block: 256,
            threads: 1,
            tracer: Tracer::disabled(),
        }
    }
}

impl BruteForce {
    /// A parallel instance with `threads` workers.
    pub fn parallel(threads: usize) -> BruteForce {
        BruteForce {
            threads: threads.max(1),
            ..BruteForce::default()
        }
    }

    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        validate_inputs(a, b, spec)?;
        let mut phases = Vec::new();

        let mut root = self.tracer.span("bf.join");
        root.attr_str("algo", "BF");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", a.dims() as u64);
        root.attr_f64("eps", spec.eps);
        root.attr_u64("threads", self.threads as u64);

        let timer = TracedPhase::start(&root, "join");
        let stats = if self.threads <= 1 {
            let mut refiner = Refiner::new(a, b, kind, spec, sink);
            serial_pairs(a, b, kind, self.block, &mut |i, j| refiner.offer(i, j));
            refiner.finish(JoinStats::default())
        } else {
            self.run_parallel(a, b, kind, spec, sink)?
        };
        timer.finish(&mut phases);
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("bf.candidates").add(stats.candidates);
            self.tracer.counter("bf.results").add(stats.results);
        }
        root.finish();
        Ok(JoinStats { phases, ..stats })
    }

    fn run_parallel(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let n = a.len();
        let chunk = n.div_ceil(self.threads).max(1);
        // Each worker refines its slice of outer rows independently and
        // materializes survivors; the caller's sink then sees them in one
        // deterministic pass per worker.
        let results: Vec<(Vec<(u32, u32)>, u64)> = thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..self.threads {
                let lo = t * chunk;
                if lo >= n {
                    break;
                }
                let hi = (lo + chunk).min(n);
                let block = self.block;
                handles.push(scope.spawn(move |_| {
                    let mut pairs = Vec::new();
                    let mut candidates = 0u64;
                    for i in lo as u32..hi as u32 {
                        let start_j = match kind {
                            JoinKind::TwoSets => 0,
                            JoinKind::SelfJoin => i + 1,
                        };
                        let pi = a.point(i);
                        let m = b.len() as u32;
                        let mut j = start_j;
                        while j < m {
                            let end = (j + block as u32).min(m);
                            for jj in j..end {
                                candidates += 1;
                                if spec.metric.within(pi, b.point(jj), spec.eps) {
                                    pairs.push((i, jj));
                                }
                            }
                            j = end;
                        }
                    }
                    (pairs, candidates)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<std::thread::Result<Vec<_>>>()
        })
        .and_then(|joined| joined)
        .map_err(|_| Error::Internal("brute-force worker thread panicked".into()))?;

        let mut stats = JoinStats::default();
        for (pairs, candidates) in results {
            stats.candidates += candidates;
            stats.dist_evals += candidates;
            stats.results += pairs.len() as u64;
            for (i, j) in pairs {
                sink.push(i, j);
            }
        }
        Ok(stats)
    }
}

/// Tiled pair enumeration shared by the serial path.
fn serial_pairs(
    a: &Dataset,
    b: &Dataset,
    kind: JoinKind,
    block: usize,
    offer: &mut impl FnMut(u32, u32),
) {
    let n = a.len() as u32;
    let m = b.len() as u32;
    let block = block.max(1) as u32;
    let mut bi = 0;
    while bi < n {
        let bi_end = (bi + block).min(n);
        let mut bj = match kind {
            JoinKind::TwoSets => 0,
            JoinKind::SelfJoin => bi,
        };
        while bj < m {
            let bj_end = (bj + block).min(m);
            for i in bi..bi_end {
                let j_start = match kind {
                    JoinKind::TwoSets => bj,
                    JoinKind::SelfJoin => bj.max(i + 1),
                };
                for j in j_start..bj_end {
                    offer(i, j);
                }
            }
            bj = bj_end;
        }
        bi = bi_end;
    }
}

impl SimilarityJoin for BruteForce {
    fn name(&self) -> &'static str {
        "BF"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_core::{verify, Metric, VecSink};

    fn grid_points() -> Dataset {
        // 4x4 grid with spacing 0.2.
        let mut ds = Dataset::new(2).unwrap();
        for x in 0..4 {
            for y in 0..4 {
                ds.push(&[x as f64 * 0.2, y as f64 * 0.2]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn self_join_counts_grid_neighbours() {
        let ds = grid_points();
        let spec = JoinSpec::new(0.21, Metric::L2);
        let mut sink = VecSink::default();
        let stats = BruteForce::default()
            .self_join(&ds, &spec, &mut sink)
            .unwrap();
        // 4x4 grid: 24 horizontal/vertical adjacent pairs within 0.21.
        assert_eq!(stats.results, 24);
        assert_eq!(stats.candidates, 16 * 15 / 2);
        assert!(sink.pairs.iter().all(|&(i, j)| i < j));
    }

    #[test]
    fn two_set_join_is_cross_product_filtered() {
        let a = Dataset::from_rows(&[vec![0.0, 0.0], vec![0.5, 0.5]]).unwrap();
        let b = Dataset::from_rows(&[vec![0.05, 0.0], vec![0.9, 0.9]]).unwrap();
        let spec = JoinSpec::new(0.1, Metric::L2);
        let mut sink = VecSink::default();
        let stats = BruteForce::default()
            .join(&a, &b, &spec, &mut sink)
            .unwrap();
        assert_eq!(sink.pairs, vec![(0, 0)]);
        assert_eq!(stats.candidates, 4);
    }

    #[test]
    fn tiny_blocks_do_not_change_results() {
        let ds = grid_points();
        let spec = JoinSpec::new(0.29, Metric::Linf);
        let mut want = VecSink::default();
        BruteForce::default()
            .self_join(&ds, &spec, &mut want)
            .unwrap();
        let mut got = VecSink::default();
        BruteForce {
            block: 3,
            threads: 1,
            ..BruteForce::default()
        }
        .self_join(&ds, &spec, &mut got)
        .unwrap();
        verify::assert_same_results("BF(block=3)", &want.pairs, &got.pairs);
    }

    #[test]
    fn parallel_matches_serial_on_random_data() {
        let ds = hdsj_data::uniform(6, 300, 7).unwrap();
        for kind in ["self", "two"] {
            let spec = JoinSpec::new(0.35, Metric::L2);
            let mut want = VecSink::default();
            let mut got = VecSink::default();
            if kind == "self" {
                BruteForce::default()
                    .self_join(&ds, &spec, &mut want)
                    .unwrap();
                BruteForce::parallel(4)
                    .self_join(&ds, &spec, &mut got)
                    .unwrap();
            } else {
                let other = hdsj_data::uniform(6, 200, 8).unwrap();
                BruteForce::default()
                    .join(&ds, &other, &spec, &mut want)
                    .unwrap();
                BruteForce::parallel(4)
                    .join(&ds, &other, &spec, &mut got)
                    .unwrap();
            }
            verify::assert_same_results("BF parallel", &want.pairs, &got.pairs);
        }
    }

    #[test]
    fn parallel_counters_match_serial() {
        let ds = hdsj_data::uniform(4, 101, 3).unwrap();
        let spec = JoinSpec::new(0.2, Metric::L2);
        let mut s1 = VecSink::default();
        let a = BruteForce::default()
            .self_join(&ds, &spec, &mut s1)
            .unwrap();
        let mut s2 = VecSink::default();
        let b = BruteForce::parallel(3)
            .self_join(&ds, &spec, &mut s2)
            .unwrap();
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let empty = Dataset::new(3).unwrap();
        let spec = JoinSpec::l2(0.1);
        let mut sink = VecSink::default();
        let stats = BruteForce::default()
            .self_join(&empty, &spec, &mut sink)
            .unwrap();
        assert_eq!(stats.results, 0);
        assert!(sink.pairs.is_empty());
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let ds = grid_points();
        let mut sink = VecSink::default();
        assert!(BruteForce::default()
            .self_join(&ds, &JoinSpec::l2(0.0), &mut sink)
            .is_err());
    }
}

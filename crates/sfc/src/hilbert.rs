//! The d-dimensional Hilbert curve (Skilling's transpose algorithm).
//!
//! John Skilling, *Programming the Hilbert curve*, AIP Conf. Proc. 707
//! (2004). The algorithm works on the "transposed" representation of a
//! Hilbert index: `d` words of `b` bits whose interleaving (MSB plane first,
//! dimension 0 first within a plane) is the `d·b`-bit index. Both directions
//! run in `O(d·b)` with tiny constants and no tables, which is what makes
//! Hilbert ordering affordable at `d = 64`.

use crate::bitkey::BitKey;

/// Maximum supported bits per dimension.
pub const MAX_BITS: u32 = 31;

/// In-place conversion: grid coordinates → transposed Hilbert index.
fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    if n <= 1 || bits == 0 {
        return; // 1-D Hilbert curve is the identity.
    }
    let m = 1u32 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// In-place conversion: transposed Hilbert index → grid coordinates.
fn transpose_to_axes(x: &mut [u32], bits: u32) {
    let n = x.len();
    if n <= 1 || bits == 0 {
        return;
    }
    let top = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2;
    while q != top {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Hilbert index of `coords` (each `< 2^bits`) as a `d·bits`-bit key.
pub fn index(coords: &[u32], bits: u32) -> BitKey {
    assert!(
        (1..=MAX_BITS).contains(&bits),
        "bits per dimension must be in 1..={MAX_BITS}"
    );
    let mut x = coords.to_vec();
    axes_to_transpose(&mut x, bits);
    BitKey::interleave(&x, bits)
}

/// Grid coordinates of a Hilbert `key` of width `dims · bits`.
pub fn coords(key: &BitKey, dims: usize, bits: u32) -> Vec<u32> {
    let mut x = key.deinterleave(dims, bits);
    transpose_to_axes(&mut x, bits);
    x
}

/// Reusable encoder that avoids per-call allocation of the coordinate
/// scratch buffer — the hot path of MSJ's level assignment.
#[derive(Debug)]
pub struct HilbertEncoder {
    bits: u32,
    scratch: Vec<u32>,
}

impl HilbertEncoder {
    /// Creates an encoder for `dims`-dimensional grids with `bits` bits per
    /// dimension.
    pub fn new(dims: usize, bits: u32) -> HilbertEncoder {
        assert!((1..=MAX_BITS).contains(&bits));
        HilbertEncoder {
            bits,
            scratch: vec![0; dims],
        }
    }

    /// Encodes `coords` into a fresh key.
    pub fn encode(&mut self, coords: &[u32]) -> BitKey {
        debug_assert_eq!(coords.len(), self.scratch.len());
        self.scratch.copy_from_slice(coords);
        axes_to_transpose(&mut self.scratch, self.bits);
        BitKey::interleave(&self.scratch, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Decoded coordinates for an integer index value (test helper).
    fn coords_of_u64(h: u64, dims: usize, bits: u32) -> Vec<u32> {
        let nbits = dims as u32 * bits;
        assert!(nbits <= 64);
        let mut key = BitKey::zero(nbits);
        for i in 0..nbits {
            key.set(i, (h >> (nbits - 1 - i)) & 1 == 1);
        }
        coords(&key, dims, bits)
    }

    #[test]
    fn one_dim_is_identity() {
        for v in [0u32, 1, 5, 255] {
            let k = index(&[v], 8);
            assert_eq!(coords(&k, 1, 8), vec![v]);
            assert_eq!(k, BitKey::interleave(&[v], 8));
        }
    }

    #[test]
    fn two_dim_order_2_matches_known_curve() {
        // The canonical 2x2 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
        let expected = [(0, 0), (0, 1), (1, 1), (1, 0)];
        for (h, &(x, y)) in expected.iter().enumerate() {
            assert_eq!(coords_of_u64(h as u64, 2, 1), vec![x, y], "h={h}");
        }
    }

    #[test]
    fn walk_is_unit_steps_2d() {
        // Consecutive Hilbert indices differ by 1 in exactly one coordinate.
        let bits = 4;
        let mut prev = coords_of_u64(0, 2, bits);
        for h in 1..(1u64 << (2 * bits)) {
            let cur = coords_of_u64(h, 2, bits);
            let dist: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(dist, 1, "step {h}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn walk_is_unit_steps_3d() {
        let bits = 2;
        let mut prev = coords_of_u64(0, 3, bits);
        for h in 1..(1u64 << (3 * bits)) {
            let cur = coords_of_u64(h, 3, bits);
            let dist: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(dist, 1, "step {h}");
            prev = cur;
        }
    }

    #[test]
    fn bijective_over_small_grids() {
        for (dims, bits) in [(2usize, 3u32), (3, 2), (4, 2)] {
            let total = 1u64 << (dims as u32 * bits);
            let mut seen = std::collections::HashSet::new();
            for h in 0..total {
                let c = coords_of_u64(h, dims, bits);
                assert!(c.iter().all(|&v| v < (1 << bits)));
                assert!(seen.insert(c.clone()), "duplicate coords {c:?}");
                // Round trip.
                assert_eq!(coords(&index(&c, bits), dims, bits), c);
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn hierarchical_prefix_property() {
        // The first d*l bits of a depth-L key equal the depth-l key of the
        // enclosing cell (coords >> (L - l)) — the property MSJ's level
        // files rely on.
        let dims = 3usize;
        let full = 5u32;
        for seed in 0..200u32 {
            let c: Vec<u32> = (0..dims as u32)
                .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i * 40503) >> 3) & 0x1f)
                .collect();
            let key = index(&c, full);
            for l in 1..=full {
                let cell: Vec<u32> = c.iter().map(|v| v >> (full - l)).collect();
                let cell_key = index(&cell, l);
                assert_eq!(
                    key.prefix(dims as u32 * l),
                    cell_key,
                    "coords {c:?} level {l}"
                );
            }
        }
    }

    #[test]
    fn encoder_matches_free_function() {
        let mut enc = HilbertEncoder::new(4, 8);
        for seed in 0..50u32 {
            let c: Vec<u32> = (0..4).map(|i| (seed * 31 + i * 17) % 256).collect();
            assert_eq!(enc.encode(&c), index(&c, 8));
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(dims in 1usize..8, bits in 1u32..10, seed in any::<u64>()) {
            let mask = (1u32 << bits) - 1;
            let c: Vec<u32> = (0..dims)
                .map(|i| ((seed.rotate_left(i as u32 * 7) as u32) ^ (i as u32).wrapping_mul(0x9e3779b9)) & mask)
                .collect();
            let k = index(&c, bits);
            prop_assert_eq!(k.nbits(), dims as u32 * bits);
            prop_assert_eq!(coords(&k, dims, bits), c);
        }

        #[test]
        fn prop_prefix_property(dims in 1usize..6, seed in any::<u64>()) {
            let full = 8u32;
            let mask = (1u32 << full) - 1;
            let c: Vec<u32> = (0..dims)
                .map(|i| ((seed.rotate_right(i as u32 * 11) as u32) ^ (i as u32).wrapping_mul(0x85eb_ca6b)) & mask)
                .collect();
            let key = index(&c, full);
            for l in 1..=full {
                let cell: Vec<u32> = c.iter().map(|v| v >> (full - l)).collect();
                prop_assert_eq!(key.prefix(dims as u32 * l), index(&cell, l));
            }
        }
    }
}

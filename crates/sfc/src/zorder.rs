//! Morton (Z-order) keys: plain MSB-first bit interleaving.
//!
//! Z-order is trivially hierarchical (truncation = enclosing cell) and much
//! cheaper to compute than Hilbert, but clusters space worse; the MSJ curve
//! ablation (experiment E12) quantifies the difference.

use crate::bitkey::BitKey;

/// Z-order index of `coords` (each `< 2^bits`) as a `d·bits`-bit key.
pub fn index(coords: &[u32], bits: u32) -> BitKey {
    BitKey::interleave(coords, bits)
}

/// Grid coordinates of a Z-order `key` of width `dims · bits`.
pub fn coords(key: &BitKey, dims: usize, bits: u32) -> Vec<u32> {
    key.deinterleave(dims, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_hand_case() {
        let c = [0b101u32, 0b010u32];
        let k = index(&c, 3);
        // planes MSB first: (1,0)(0,1)(1,0) -> 100110
        let expected: Vec<bool> = "100110".chars().map(|c| c == '1').collect();
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(k.get(i as u32), *want, "bit {i}");
        }
        assert_eq!(coords(&k, 2, 3), c);
    }

    #[test]
    fn z_order_is_monotone_in_high_bits() {
        // Doubling both coordinates' leading bits moves the key forward.
        let a = index(&[0, 0], 4);
        let b = index(&[8, 0], 4);
        let c = index(&[8, 8], 4);
        assert!(a < b && b < c);
    }

    #[test]
    fn hierarchical_prefix_property() {
        let dims = 4usize;
        let full = 6u32;
        for seed in 0..100u32 {
            let c: Vec<u32> = (0..dims as u32)
                .map(|i| (seed.wrapping_mul(0x9e3779b9).rotate_left(i * 5)) & 0x3f)
                .collect();
            let key = index(&c, full);
            for l in 1..=full {
                let cell: Vec<u32> = c.iter().map(|v| v >> (full - l)).collect();
                assert_eq!(key.prefix(dims as u32 * l), index(&cell, l));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(dims in 1usize..10, bits in 1u32..12, seed in any::<u64>()) {
            let mask = (1u32 << bits) - 1;
            let c: Vec<u32> = (0..dims)
                .map(|i| ((seed.rotate_left(i as u32 * 13) as u32) ^ (i as u32)) & mask)
                .collect();
            prop_assert_eq!(coords(&index(&c, bits), dims, bits), c);
        }
    }
}

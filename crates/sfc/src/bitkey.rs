//! Arbitrary-precision fixed-width bit strings.
//!
//! Hilbert/Z-order keys in `d` dimensions at grid depth `L` carry `d·L` bits
//! — up to 2048 bits for `d = 64, L = 32` — so no primitive integer fits.
//! [`BitKey`] stores the bits MSB-first in `u64` words; because unused
//! trailing bits are always zero, deriving `Ord` on `(words)` for keys of the
//! same width gives exactly the lexicographic bit order the sweep algorithms
//! need.

use std::cmp::Ordering;
use std::fmt;

/// A fixed-width bit string, compared lexicographically MSB-first.
///
/// Bit index 0 is the **most significant** bit. Keys of different widths
/// compare by zero-padding the shorter to the longer width (the "padded
/// order" used by MSJ's level-file merge).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitKey {
    /// Number of meaningful bits.
    nbits: u32,
    /// MSB-first words; bits past `nbits` are zero.
    words: Vec<u64>,
}

impl BitKey {
    /// The all-zero key of the given width.
    pub fn zero(nbits: u32) -> BitKey {
        BitKey {
            nbits,
            words: vec![0; Self::words_for(nbits)],
        }
    }

    fn words_for(nbits: u32) -> usize {
        (nbits as usize).div_ceil(64)
    }

    /// Width in bits.
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Reads bit `i` (0 = most significant). Panics when out of range.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        assert!(
            i < self.nbits,
            "bit {i} out of range (width {})",
            self.nbits
        );
        let word = (i / 64) as usize;
        let off = 63 - (i % 64);
        (self.words[word] >> off) & 1 == 1
    }

    /// Sets bit `i` (0 = most significant).
    #[inline]
    pub fn set(&mut self, i: u32, v: bool) {
        assert!(
            i < self.nbits,
            "bit {i} out of range (width {})",
            self.nbits
        );
        let word = (i / 64) as usize;
        let off = 63 - (i % 64);
        if v {
            self.words[word] |= 1 << off;
        } else {
            self.words[word] &= !(1 << off);
        }
    }

    /// The first `nbits` bits as a new (narrower) key. Panics when `nbits`
    /// exceeds the width.
    pub fn prefix(&self, nbits: u32) -> BitKey {
        assert!(nbits <= self.nbits);
        let mut out = BitKey::zero(nbits);
        let nwords = Self::words_for(nbits);
        out.words.copy_from_slice(&self.words[..nwords]);
        // Clear bits past the new width in the last word.
        let tail = nbits % 64;
        if tail != 0 {
            let mask = !0u64 << (64 - tail);
            out.words[nwords - 1] &= mask;
        }
        out
    }

    /// Returns a copy zero-extended to `nbits` (≥ current width).
    pub fn zero_extended(&self, nbits: u32) -> BitKey {
        assert!(nbits >= self.nbits);
        let mut out = BitKey::zero(nbits);
        out.words[..self.words.len()].copy_from_slice(&self.words);
        out
    }

    /// True when `self` (of width ≤ `other`) equals the first `self.nbits`
    /// bits of `other` — the cell-ancestry test of MSJ's sweep.
    pub fn is_prefix_of(&self, other: &BitKey) -> bool {
        if self.nbits > other.nbits {
            return false;
        }
        other.prefix(self.nbits) == *self
    }

    /// Compares as if both keys were zero-padded to the wider width.
    pub fn cmp_padded(&self, other: &BitKey) -> Ordering {
        let n = self.words.len().max(other.words.len());
        for i in 0..n {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Builds a key by MSB-first interleaving of grid coordinates:
    /// bit planes from most to least significant, dimension 0 first within a
    /// plane. This is the layout both curve implementations emit.
    pub fn interleave(coords: &[u32], bits: u32) -> BitKey {
        assert!(
            (1..=31).contains(&bits),
            "bits per dimension must be in 1..=31"
        );
        let d = coords.len() as u32;
        let mut key = BitKey::zero(d * bits);
        let mut pos = 0;
        for plane in (0..bits).rev() {
            for &c in coords {
                debug_assert!(c < (1 << bits), "coordinate {c} exceeds {bits} bits");
                if (c >> plane) & 1 == 1 {
                    key.set(pos, true);
                }
                pos += 1;
            }
        }
        key
    }

    /// Inverse of [`BitKey::interleave`]: recovers `dims` coordinates of
    /// `bits` bits each. The key width must equal `dims * bits`.
    pub fn deinterleave(&self, dims: usize, bits: u32) -> Vec<u32> {
        assert_eq!(self.nbits, dims as u32 * bits);
        let mut coords = vec![0u32; dims];
        let mut pos = 0;
        for plane in (0..bits).rev() {
            for c in coords.iter_mut() {
                if self.get(pos) {
                    *c |= 1 << plane;
                }
                pos += 1;
            }
        }
        coords
    }

    /// Serializes to `8 * ceil(nbits/64)` big-endian bytes (width is not
    /// stored; callers using fixed-width keys, like the MSJ level files,
    /// know it from context).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Deserializes from the [`BitKey::to_be_bytes`] representation.
    pub fn from_be_bytes(nbits: u32, bytes: &[u8]) -> BitKey {
        let nwords = Self::words_for(nbits);
        assert_eq!(
            bytes.len(),
            nwords * 8,
            "byte length mismatch for {nbits} bits"
        );
        let words = bytes
            .chunks_exact(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_be_bytes(w)
            })
            .collect();
        BitKey { nbits, words }
    }

    /// Number of bytes [`BitKey::to_be_bytes`] produces for a given width.
    pub fn byte_len(nbits: u32) -> usize {
        Self::words_for(nbits) * 8
    }
}

impl PartialOrd for BitKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitKey {
    /// Total order: padded bit order first, then width (shorter first).
    /// With this order a cell key sorts immediately *before* all of its
    /// descendants' keys — the DFS order of MSJ's synchronized sweep.
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_padded(other).then(self.nbits.cmp(&other.nbits))
    }
}

impl fmt::Debug for BitKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitKey[{}](", self.nbits)?;
        for i in 0..self.nbits {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_from_str(s: &str) -> BitKey {
        let mut k = BitKey::zero(s.len() as u32);
        for (i, ch) in s.chars().enumerate() {
            k.set(i as u32, ch == '1');
        }
        k
    }

    #[test]
    fn get_set_round_trip_across_word_boundary() {
        let mut k = BitKey::zero(130);
        for i in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!k.get(i));
            k.set(i, true);
            assert!(k.get(i));
        }
        k.set(64, false);
        assert!(!k.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitKey::zero(8).get(8);
    }

    #[test]
    fn lexicographic_order_matches_strings() {
        let cases = ["0000", "0001", "0110", "1000", "1111"];
        for w in cases.windows(2) {
            assert!(
                key_from_str(w[0]) < key_from_str(w[1]),
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn padded_order_and_prefix_sorts_ancestor_first() {
        // "10" is an ancestor cell of "100..." and "101...": padded order
        // puts the ancestor before or equal; tie broken by width.
        let parent = key_from_str("10");
        let child0 = key_from_str("1000");
        let child1 = key_from_str("1011");
        assert_eq!(parent.cmp_padded(&child0), Ordering::Equal);
        assert!(parent < child0, "ancestor sorts first on equal padding");
        assert!(child0 < child1);
        assert!(parent.is_prefix_of(&child0));
        assert!(parent.is_prefix_of(&child1));
        assert!(!child0.is_prefix_of(&parent));
        assert!(!key_from_str("11").is_prefix_of(&child0));
    }

    #[test]
    fn prefix_masks_trailing_bits() {
        let k = key_from_str("10111111");
        let p = k.prefix(3);
        assert_eq!(p, key_from_str("101"));
        // The word beyond the prefix width must be zeroed.
        assert_eq!(p.to_be_bytes()[0], 0b1010_0000);
    }

    #[test]
    fn zero_extension_preserves_padded_order() {
        let k = key_from_str("101");
        let e = k.zero_extended(8);
        assert_eq!(e.nbits(), 8);
        assert_eq!(k.cmp_padded(&e), Ordering::Equal);
        assert!(k.is_prefix_of(&e));
    }

    #[test]
    fn interleave_two_dims_hand_checked() {
        // x = 0b10, y = 0b01 -> planes MSB first: (1,0) then (0,1) -> "1001"
        let k = BitKey::interleave(&[0b10, 0b01], 2);
        assert_eq!(k, key_from_str("1001"));
        assert_eq!(k.deinterleave(2, 2), vec![0b10, 0b01]);
    }

    #[test]
    fn interleave_round_trips_high_dims() {
        let coords: Vec<u32> = (0..20).map(|i| (i * 2654435761u64 % 256) as u32).collect();
        let k = BitKey::interleave(&coords, 8);
        assert_eq!(k.nbits(), 160);
        assert_eq!(k.deinterleave(20, 8), coords);
    }

    #[test]
    fn byte_serialization_round_trips() {
        let k = BitKey::interleave(&[123456, 7890123], 24);
        let bytes = k.to_be_bytes();
        assert_eq!(bytes.len(), BitKey::byte_len(k.nbits()));
        let back = BitKey::from_be_bytes(k.nbits(), &bytes);
        assert_eq!(k, back);
    }

    #[test]
    fn byte_order_preserves_key_order() {
        // Big-endian byte serialization of equal-width keys must sort the
        // same way as the keys — the external sort compares raw bytes.
        let a = key_from_str("01100000");
        let b = key_from_str("01100001");
        assert!(a < b);
        assert!(a.to_be_bytes() < b.to_be_bytes());
    }
}

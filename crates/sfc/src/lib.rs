//! # hdsj-sfc — d-dimensional space-filling curves
//!
//! MSJ orders the cells of its grid hierarchy by their **Hilbert value**, and
//! the Hilbert-packed R-tree bulk loader sorts points the same way. This
//! crate provides:
//!
//! * [`BitKey`] — an arbitrary-precision, fixed-width bit string compared
//!   lexicographically MSB-first. A cell key at hierarchy level `l` in `d`
//!   dimensions has `d·l` bits, which for `d = 64, l = 16` is far beyond any
//!   primitive integer.
//! * [`hilbert`] — the d-dimensional Hilbert curve via Skilling's transpose
//!   algorithm ("Programming the Hilbert curve", AIP 2004): coordinate ↔
//!   index in both directions, for any `d ≥ 1` and up to 31 bits per
//!   dimension.
//! * [`zorder`] — plain bit-interleaving (Morton order), the cheap
//!   alternative used by the MSJ curve ablation (experiment E12).
//! * [`grid`] — quantization of unit-domain `f64` coordinates onto the
//!   `2^level` grid.
//!
//! Both curves are **hierarchical**: the first `d·l` bits of a point's key at
//! depth `L` identify (and rank) its enclosing level-`l` cell. MSJ's level
//! files and merge order rely on exactly this property, and the property
//! tests in this crate pin it down.
#![forbid(unsafe_code)]

pub mod bitkey;
pub mod grid;
pub mod hilbert;
pub mod zorder;

pub use bitkey::BitKey;

/// Which space-filling curve orders the grid cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Curve {
    /// The Hilbert curve (default; best clustering / locality).
    Hilbert,
    /// Morton / Z-order (cheaper to compute, worse locality).
    ZOrder,
}

impl Curve {
    /// Encodes grid coordinates (each `< 2^bits`) into a `dims·bits`-bit key
    /// along the chosen curve.
    pub fn key(&self, coords: &[u32], bits: u32) -> BitKey {
        match self {
            Curve::Hilbert => hilbert::index(coords, bits),
            Curve::ZOrder => zorder::index(coords, bits),
        }
    }

    /// Harness label.
    pub fn label(&self) -> &'static str {
        match self {
            Curve::Hilbert => "hilbert",
            Curve::ZOrder => "zorder",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_dispatch_matches_direct_calls() {
        let coords = [3u32, 5u32];
        assert_eq!(Curve::Hilbert.key(&coords, 4), hilbert::index(&coords, 4));
        assert_eq!(Curve::ZOrder.key(&coords, 4), zorder::index(&coords, 4));
        assert_eq!(Curve::Hilbert.label(), "hilbert");
        assert_eq!(Curve::ZOrder.label(), "zorder");
    }
}

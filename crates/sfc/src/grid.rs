//! Quantization of unit-domain coordinates onto the `2^level` grid
//! hierarchy.
//!
//! Level `l` divides `[0, 1)` into `2^l` half-open cells per dimension; a
//! point's cell coordinate at level `l` is `⌊x · 2^l⌋`. These helpers are
//! shared by MSJ's level assignment and the Hilbert bulk loader.

/// Grid coordinate of unit-domain value `x` at resolution `bits`
/// (`2^bits` cells). Values are clamped into `[0, 2^bits - 1]` so callers
/// may pass ε-expanded coordinates that stick out of the unit cube.
#[inline]
pub fn quantize(x: f64, bits: u32) -> u32 {
    debug_assert!((1..=31).contains(&bits));
    let cells = (1u64 << bits) as f64;
    let v = (x * cells).floor();
    if v < 0.0 {
        0
    } else if v >= cells {
        (1u32 << bits) - 1
    } else {
        v as u32
    }
}

/// Quantizes a whole point into `out` at resolution `bits`.
#[inline]
pub fn quantize_point(p: &[f64], bits: u32, out: &mut [u32]) {
    debug_assert_eq!(p.len(), out.len());
    for (o, &x) in out.iter_mut().zip(p) {
        *o = quantize(x, bits);
    }
}

/// Number of leading bits shared by `a` and `b` when both are `bits`-bit
/// grid coordinates — i.e. the deepest level at which the two coordinates
/// fall in the same cell. Used by MSJ's size-separation level assignment.
#[inline]
pub fn common_prefix_len(a: u32, b: u32, bits: u32) -> u32 {
    let x = a ^ b;
    if x == 0 {
        bits
    } else {
        // Leading zeros of the significant `bits` window.
        (x.leading_zeros()).saturating_sub(32 - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantize_hand_cases() {
        assert_eq!(quantize(0.0, 3), 0);
        assert_eq!(quantize(0.124, 3), 0);
        assert_eq!(quantize(0.126, 3), 1);
        assert_eq!(quantize(0.999, 3), 7);
    }

    #[test]
    fn quantize_clamps_out_of_domain_values() {
        assert_eq!(quantize(-0.5, 4), 0);
        assert_eq!(quantize(1.0, 4), 15);
        assert_eq!(quantize(2.5, 4), 15);
    }

    #[test]
    fn quantize_point_fills_buffer() {
        let mut out = [0u32; 3];
        quantize_point(&[0.0, 0.5, 0.99], 2, &mut out);
        assert_eq!(out, [0, 2, 3]);
    }

    #[test]
    fn common_prefix_hand_cases() {
        assert_eq!(common_prefix_len(0b1010, 0b1010, 4), 4);
        assert_eq!(common_prefix_len(0b1010, 0b1011, 4), 3);
        assert_eq!(common_prefix_len(0b1010, 0b0010, 4), 0);
        assert_eq!(common_prefix_len(0, 1, 16), 15);
    }

    proptest! {
        #[test]
        fn prop_quantize_within_range(x in -1.0f64..2.0, bits in 1u32..31) {
            let q = quantize(x, bits);
            prop_assert!(q < (1u32 << bits));
        }

        #[test]
        fn prop_common_prefix_means_same_cell(a in 0u32..1024, b in 0u32..1024) {
            let bits = 10;
            let l = common_prefix_len(a, b, bits);
            // At level l both coords fall in the same cell...
            prop_assert_eq!(a >> (bits - l.min(bits)), b >> (bits - l), "same cell at level l");
            // ...and at level l+1 they differ (when l < bits).
            if l < bits {
                prop_assert!(a >> (bits - l - 1) != b >> (bits - l - 1));
            }
        }
    }
}

//! Pass 1a — the workspace symbol table.
//!
//! The lexical rules only ever needed token adjacency; the interprocedural
//! rules (R4 lock order across calls, R10 poll reachability, R11 budget
//! coverage) and the typed rules (R7 receiver classes, R12 engine-vs-
//! manifest `sync`) need to know *what a name is*: which `impl` block a
//! function lives in, what type a struct field has, what a `let` binding
//! aliases. [`SymbolTable::build`] extracts exactly that from the token
//! streams — no type inference, no generics unification, just the
//! name→type facts the rules consume.
//!
//! Approximation contract (documented in DESIGN.md §15): types are tracked
//! as their *token text* (`Arc < Mutex < Inner > >`), matched by substring
//! (`ty_contains("Mutex")`). That over-approximates (a field `not_an_atomic:
//! PseudoAtomicLog` would match "Atomic") and under-approximates (a type
//! alias hides its target). Both failure modes are deliberate: the checker
//! prefers resolving *something* over resolving nothing, and every rule
//! that consumes a resolution stays suppressible.

use crate::lexer::TokenKind;
use crate::parse::FileModel;
use std::collections::BTreeMap;

/// A named, typed slot: a function parameter or a struct field.
#[derive(Clone, Debug)]
pub struct TypedName {
    pub name: String,
    /// The declared type, as joined token text (`& AtomicBool`,
    /// `Option < LifecycleCtx >`). Matched by substring, never parsed.
    pub ty: String,
}

impl TypedName {
    /// True when the declared type mentions `needle` as a token.
    pub fn ty_contains(&self, needle: &str) -> bool {
        ty_mentions(&self.ty, needle)
    }
}

/// True when type text `ty` contains `needle` as a whole token
/// (space-delimited — the builder joins type tokens with spaces).
pub fn ty_mentions(ty: &str, needle: &str) -> bool {
    ty.split(' ').any(|t| t == needle || t.starts_with(needle))
}

/// One function item, with the impl/trait context the parser alone cannot
/// see.
#[derive(Clone, Debug)]
pub struct FnSym {
    pub name: String,
    /// The `impl` block's self type (`impl BufferPool { … }` →
    /// `BufferPool`; `impl Disk for MemDisk` → `MemDisk`). `None` for free
    /// functions and trait-default methods.
    pub self_ty: Option<String>,
    /// The trait being implemented (or defined, for trait-default
    /// methods), when any.
    pub trait_name: Option<String>,
    /// True when the first parameter is some flavour of `self`.
    pub has_self: bool,
    /// Non-self parameters, in order.
    pub params: Vec<TypedName>,
    /// Index of the containing file in the workspace file list.
    pub file: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    pub line: u32,
    /// True when the item is test-only (`#[cfg(test)]` / `#[test]`).
    pub is_test: bool,
}

/// A struct definition and its named fields.
#[derive(Clone, Debug)]
pub struct StructSym {
    pub name: String,
    pub fields: Vec<TypedName>,
}

/// The workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// Function ids by name (one name, many impls — trait methods).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Structs by type name. A name collision across crates keeps the
    /// definition with more fields (same winner-picking as R5's enum).
    pub structs: BTreeMap<String, StructSym>,
    /// `static NAME: Ty` declarations by name → type text.
    pub statics: BTreeMap<String, String>,
    /// (file index, body_start) → fn id, for `enclosing_fn` → symbol hops.
    fn_by_body: BTreeMap<(usize, usize), usize>,
}

impl SymbolTable {
    /// Builds the table over every file of the workspace.
    pub fn build(files: &[FileModel]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (fi, f) in files.iter().enumerate() {
            collect_structs_and_statics(f, &mut t);
            collect_fns(fi, f, &mut t);
        }
        for (i, f) in t.fns.iter().enumerate() {
            t.by_name.entry(f.name.clone()).or_default().push(i);
            t.fn_by_body.insert((f.file, f.body_start), i);
        }
        t
    }

    /// The symbol for the function whose body opens at `body_start` in
    /// file `file` (pairs with [`FileModel::enclosing_fn`]).
    pub fn fn_at(&self, file: usize, body_start: usize) -> Option<&FnSym> {
        self.fn_by_body
            .get(&(file, body_start))
            .map(|&i| &self.fns[i])
    }

    /// Id of the function symbol at (file, body_start).
    pub fn fn_id_at(&self, file: usize, body_start: usize) -> Option<usize> {
        self.fn_by_body.get(&(file, body_start)).copied()
    }

    /// The declared type of field `field` on struct `ty`, if known.
    pub fn field_ty(&self, ty: &str, field: &str) -> Option<&TypedName> {
        self.structs
            .get(ty)
            .and_then(|s| s.fields.iter().find(|f| f.name == field))
    }
}

/// What a receiver expression resolved to.
#[derive(Clone, Debug)]
pub struct Resolution {
    /// The canonical name: the struct field, static, or parameter the
    /// receiver chain bottoms out in (aliases followed). Falls back to the
    /// receiver's own text when nothing resolves.
    pub name: String,
    /// The declared type text, when the chain resolved to a typed slot.
    pub ty: Option<String>,
}

impl Resolution {
    /// True when the resolved type mentions `needle`.
    pub fn ty_mentions(&self, needle: &str) -> bool {
        self.ty.as_deref().is_some_and(|t| ty_mentions(t, needle))
    }
}

/// Resolves the receiver chain ending at token `recv_end` (the identifier
/// immediately before `.method(`) inside function `f` of `file`.
///
/// Handles, in priority order: `self.field` chains (via the impl type's
/// struct definition), `let`-bound aliases of such chains (last binding
/// before the use wins, so shadowing resolves correctly), typed `let`
/// bindings (`let x: Ty`), `Ty::new()` constructions, function parameters,
/// and statics. Anything else keeps its own name, untyped.
pub fn resolve_receiver(
    table: &SymbolTable,
    file: &FileModel,
    f: &FnSym,
    recv_end: usize,
) -> Resolution {
    resolve_chain(table, file, f, chain_of(file, recv_end), recv_end, 0)
}

/// The dotted identifier chain ending at `end`: `self . a . b` → `[self,
/// a, b]`.
fn chain_of(file: &FileModel, end: usize) -> Vec<String> {
    let toks = &file.tokens;
    let mut chain = vec![toks[end].text.clone()];
    let mut i = end;
    while i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokenKind::Ident {
        i -= 2;
        chain.push(toks[i].text.clone());
    }
    chain.reverse();
    chain
}

fn resolve_chain(
    table: &SymbolTable,
    file: &FileModel,
    f: &FnSym,
    chain: Vec<String>,
    before: usize,
    depth: u32,
) -> Resolution {
    let fallback = Resolution {
        name: chain.last().cloned().unwrap_or_default(),
        ty: None,
    };
    if depth > 4 || chain.is_empty() {
        return fallback;
    }
    // `self.field[.field2]` — walk the impl type's fields.
    if chain[0] == "self" {
        let Some(mut ty) = f.self_ty.clone() else {
            return fallback;
        };
        let mut name = "self".to_string();
        for field in &chain[1..] {
            match table.field_ty(&ty, field) {
                Some(slot) => {
                    name = slot.name.clone();
                    ty = slot
                        .ty
                        .split(' ')
                        .find(|t| t.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
                        .unwrap_or(&slot.ty)
                        .to_string();
                    if chain.last() == Some(field) {
                        // Keep the full declared text for the final hop so
                        // `ty_mentions` sees wrappers too.
                        return Resolution {
                            name,
                            ty: table
                                .field_ty(&find_owner(table, &chain, f), field)
                                .map(|s| s.ty.clone()),
                        };
                    }
                }
                None => {
                    return Resolution {
                        name: field.clone(),
                        ty: None,
                    }
                }
            }
        }
        return Resolution { name, ty: Some(ty) };
    }
    if chain.len() == 1 {
        let name = &chain[0];
        // Last `let` binding of `name` before the use site.
        if let Some(res) = resolve_let(table, file, f, name, before, depth) {
            return res;
        }
        // Function parameter.
        if let Some(p) = f.params.iter().find(|p| &p.name == name) {
            return Resolution {
                name: p.name.clone(),
                ty: Some(p.ty.clone()),
            };
        }
        // Static.
        if let Some(ty) = table.statics.get(name) {
            return Resolution {
                name: name.clone(),
                ty: Some(ty.clone()),
            };
        }
    }
    fallback
}

/// The struct owning the last field hop of a `self.…` chain (the impl type
/// for `self.f`, the type of `f` for `self.f.g`).
fn find_owner(table: &SymbolTable, chain: &[String], f: &FnSym) -> String {
    let mut ty = f.self_ty.clone().unwrap_or_default();
    for field in &chain[1..chain.len() - 1] {
        if let Some(slot) = table.field_ty(&ty, field) {
            ty = slot
                .ty
                .split(' ')
                .find(|t| t.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
                .unwrap_or(&slot.ty)
                .to_string();
        }
    }
    ty
}

/// Scans `f`'s body before token `before` for the last `let <name> …`
/// binding and resolves what it binds to.
fn resolve_let(
    table: &SymbolTable,
    file: &FileModel,
    f: &FnSym,
    name: &str,
    before: usize,
    depth: u32,
) -> Option<Resolution> {
    let toks = &file.tokens;
    let mut found: Option<Resolution> = None;
    let mut i = f.body_start;
    while i < before.min(f.body_end) {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // `let [mut] name` — only simple ident patterns participate.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(name)) {
            i += 1;
            continue;
        }
        let after = j + 1;
        // `let name : Ty = …` — explicit type annotation.
        if toks.get(after).is_some_and(|t| t.is_punct(':')) {
            let mut k = after + 1;
            let mut ty = String::new();
            while k < f.body_end && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&toks[k].text);
                k += 1;
            }
            found = Some(Resolution {
                name: name.to_string(),
                ty: Some(ty),
            });
            i = after;
            continue;
        }
        // `let name = <expr>` — follow simple aliases.
        if toks.get(after).is_some_and(|t| t.is_punct('=')) {
            let mut k = after + 1;
            // Skip leading borrows.
            while toks
                .get(k)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                k += 1;
            }
            // `Ty :: new (…)` style construction.
            if toks.get(k).map(|t| t.kind) == Some(TokenKind::Ident)
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && toks[k]
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
            {
                found = Some(Resolution {
                    name: name.to_string(),
                    ty: Some(toks[k].text.clone()),
                });
                i = after;
                continue;
            }
            // An ident chain (`self . field`, `other`) possibly followed
            // by `. clone ( )` — find the chain end.
            if toks.get(k).map(|t| t.kind) == Some(TokenKind::Ident) {
                let mut end = k;
                while toks.get(end + 1).is_some_and(|t| t.is_punct('.'))
                    && toks.get(end + 2).map(|t| t.kind) == Some(TokenKind::Ident)
                    && !toks.get(end + 3).is_some_and(|t| t.is_punct('('))
                {
                    end += 2;
                }
                // Tolerate a trailing `.clone()` / `.as_ref()` hop.
                let terminator_ok = toks
                    .get(end + 1)
                    .is_none_or(|t| t.is_punct(';') || t.is_punct('.'));
                if terminator_ok {
                    let sub = chain_of(file, end);
                    if sub.first().map(String::as_str) != Some(name) {
                        let res = resolve_chain(table, file, f, sub, i, depth + 1);
                        found = Some(res);
                        i = after;
                        continue;
                    }
                }
            }
            // Opaque initializer: the binding exists but stays untyped —
            // record it so shadowing still takes effect.
            found = Some(Resolution {
                name: name.to_string(),
                ty: None,
            });
        }
        i = after;
    }
    found
}

/// Collects `struct` fields and `static` declarations from one file.
fn collect_structs_and_statics(file: &FileModel, t: &mut SymbolTable) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct")
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            // Find the `{` opening named fields (skip generics); a `;` or
            // `(` first means unit/tuple struct — no named fields.
            let mut j = i + 2;
            let mut open = None;
            let mut angle = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') {
                    angle -= 1;
                } else if toks[j].is_punct(';') || (toks[j].is_punct('(') && angle == 0) {
                    break;
                } else if toks[j].is_punct('{') && angle <= 0 {
                    open = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = file.skip_group(open);
                let fields = parse_fields(file, open + 1, close.saturating_sub(1));
                let keep = match t.structs.get(&name) {
                    Some(old) => fields.len() > old.fields.len(),
                    None => true,
                };
                if keep {
                    t.structs.insert(name.clone(), StructSym { name, fields });
                }
                i = close;
                continue;
            }
        }
        if toks[i].is_ident("static") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).map(|t| t.kind) == Some(TokenKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                let name = toks[j].text.clone();
                let mut k = j + 2;
                let mut ty = String::new();
                while k < toks.len() && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&toks[k].text);
                    k += 1;
                }
                t.statics.entry(name).or_insert(ty);
            }
        }
        i += 1;
    }
}

/// Parses `name: Type, …` field lists between `start..end` (exclusive of
/// the braces). Attributes and visibility are skipped; the type text runs
/// to the next top-level `,`.
fn parse_fields(file: &FileModel, start: usize, end: usize) -> Vec<TypedName> {
    let toks = &file.tokens;
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        // Skip attributes and visibility.
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = file.skip_group(i + 1);
            continue;
        }
        if toks[i].is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct('(')) {
                i = file.skip_group(i);
            }
            continue;
        }
        if toks[i].kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            let name = toks[i].text.clone();
            let mut k = i + 2;
            let mut ty = String::new();
            let mut depth = 0i32;
            while k < end {
                if toks[k].is_punct('<') || toks[k].is_punct('(') || toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct('>')
                    || toks[k].is_punct(')')
                    || toks[k].is_punct(']')
                {
                    depth -= 1;
                } else if toks[k].is_punct(',') && depth <= 0 {
                    break;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&toks[k].text);
                k += 1;
            }
            fields.push(TypedName { name, ty });
            i = k + 1;
            continue;
        }
        i += 1;
    }
    fields
}

/// An `impl`/`trait` block's extent and identity, for attributing the
/// functions inside it.
struct Block {
    self_ty: Option<String>,
    trait_name: Option<String>,
    body_start: usize,
    body_end: usize,
}

/// Collects function symbols, attributing each to its innermost enclosing
/// `impl`/`trait` block.
fn collect_fns(fi: usize, file: &FileModel, t: &mut SymbolTable) {
    let blocks = find_blocks(file);
    for span in &file.fns {
        let block = blocks
            .iter()
            .filter(|b| b.body_start < span.body_start && span.body_end <= b.body_end)
            .max_by_key(|b| b.body_start);
        let (has_self, params) = parse_signature(file, span);
        t.fns.push(FnSym {
            name: span.name.clone(),
            self_ty: block.and_then(|b| b.self_ty.clone()),
            trait_name: block.and_then(|b| b.trait_name.clone()),
            has_self,
            params,
            file: fi,
            body_start: span.body_start,
            body_end: span.body_end,
            line: span.line,
            is_test: file.is_test_line(span.line),
        });
    }
}

/// Finds `impl [Trait for] Type { … }` and `trait Name { … }` extents.
fn find_blocks(file: &FileModel) -> Vec<Block> {
    let toks = &file.tokens;
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Header: skip generics, read path(s) until `for` / `{`.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut first_path: Vec<String> = Vec::new();
            let mut second_path: Vec<String> = Vec::new();
            let mut saw_for = false;
            while j < toks.len() && !(toks[j].is_punct('{') && angle <= 0) {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') {
                    angle -= 1;
                } else if angle == 0 && toks[j].is_ident("for") {
                    saw_for = true;
                } else if angle == 0 && toks[j].is_ident("where") {
                    // The rest of the header is bounds; scan to `{`.
                } else if angle == 0 && toks[j].kind == TokenKind::Ident {
                    if saw_for {
                        second_path.push(toks[j].text.clone());
                    } else {
                        first_path.push(toks[j].text.clone());
                    }
                }
                j += 1;
            }
            if j < toks.len() {
                let body_end = file.skip_group(j);
                let (trait_name, self_ty) = if saw_for {
                    (first_path.last().cloned(), last_type_name(&second_path))
                } else {
                    (None, last_type_name(&first_path))
                };
                blocks.push(Block {
                    self_ty,
                    trait_name,
                    body_start: j,
                    body_end,
                });
            }
            i = j + 1;
            continue;
        }
        if toks[i].is_ident("trait")
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() && !(toks[j].is_punct('{') && angle <= 0) {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') {
                    angle -= 1;
                } else if toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let body_end = file.skip_group(j);
                blocks.push(Block {
                    self_ty: None,
                    trait_name: Some(name),
                    body_start: j,
                    body_end,
                });
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    blocks
}

/// The self type is the path's last plausible type name — skipping
/// keywords that may trail in a `where` clause.
fn last_type_name(path: &[String]) -> Option<String> {
    path.iter()
        .rev()
        .find(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        .or_else(|| path.last())
        .cloned()
}

/// Parses a function's parameter list: `(self, a: Ty, b: &Ty)` →
/// (has_self, non-self params).
fn parse_signature(file: &FileModel, span: &crate::parse::FnSpan) -> (bool, Vec<TypedName>) {
    let toks = &file.tokens;
    // The parameter list is the first `(` between the fn name and the body.
    let mut open = None;
    let mut i = 0;
    // Locate the `fn` keyword for this span: scan back from body_start for
    // the matching name token.
    for j in (0..span.body_start).rev() {
        if toks[j].is_ident("fn") && toks.get(j + 1).is_some_and(|t| t.is_ident(&span.name)) {
            i = j + 2;
            break;
        }
    }
    let mut angle = 0i32;
    while i < span.body_start {
        if toks[i].is_punct('<') {
            angle += 1;
        } else if toks[i].is_punct('>') {
            angle -= 1;
        } else if toks[i].is_punct('(') && angle <= 0 {
            open = Some(i);
            break;
        }
        i += 1;
    }
    let Some(open) = open else {
        return (false, Vec::new());
    };
    let close = file.skip_group(open);
    let mut has_self = false;
    let mut params = Vec::new();
    let mut k = open + 1;
    while k + 1 < close {
        if toks[k].is_ident("self") {
            has_self = true;
            k += 1;
            continue;
        }
        if toks[k].kind == TokenKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
        {
            let name = toks[k].text.clone();
            let mut j = k + 2;
            let mut ty = String::new();
            let mut depth = 0i32;
            while j + 1 < close {
                if toks[j].is_punct('<') || toks[j].is_punct('(') || toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct('>')
                    || toks[j].is_punct(')')
                    || toks[j].is_punct(']')
                {
                    depth -= 1;
                } else if toks[j].is_punct(',') && depth <= 0 {
                    break;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&toks[j].text);
                j += 1;
            }
            params.push(TypedName { name, ty });
            k = j + 1;
            continue;
        }
        k += 1;
    }
    (has_self, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn table(src: &str) -> (SymbolTable, Vec<FileModel>) {
        let files = vec![FileModel::parse(PathBuf::from("t.rs"), src)];
        (SymbolTable::build(&files), files)
    }

    #[test]
    fn impl_blocks_attribute_methods() {
        let (t, _) = table(
            "struct Pool { inner: Mutex<Inner> }\n\
             impl Pool { fn fetch(&self) {} }\n\
             impl Disk for Pool { fn read_page(&self) {} }\n\
             fn free() {}\n",
        );
        let fetch = &t.fns[t.by_name["fetch"][0]];
        assert_eq!(fetch.self_ty.as_deref(), Some("Pool"));
        assert_eq!(fetch.trait_name, None);
        assert!(fetch.has_self);
        let rp = &t.fns[t.by_name["read_page"][0]];
        assert_eq!(rp.self_ty.as_deref(), Some("Pool"));
        assert_eq!(rp.trait_name.as_deref(), Some("Disk"));
        let free = &t.fns[t.by_name["free"][0]];
        assert_eq!(free.self_ty, None);
        assert!(!free.has_self);
    }

    #[test]
    fn struct_fields_carry_types() {
        let (t, _) = table(
            "pub struct Ctx {\n    pub cancel: AtomicBool,\n    deadline: Option<Instant>,\n    stats: Arc<Stats>,\n}\n",
        );
        let cancel = t.field_ty("Ctx", "cancel").expect("cancel field");
        assert!(cancel.ty_contains("AtomicBool"));
        let stats = t.field_ty("Ctx", "stats").expect("stats field");
        assert!(stats.ty_contains("Stats"));
        assert!(!stats.ty_contains("AtomicBool"));
    }

    #[test]
    fn self_field_receivers_resolve_by_type() {
        let (t, files) = table(
            "struct Pool { stop: AtomicBool }\n\
             impl Pool { fn f(&self) { self.stop.store(true, Ordering::Relaxed); } }\n",
        );
        let f = &t.fns[t.by_name["f"][0]];
        let file = &files[0];
        let store = file
            .tokens
            .iter()
            .position(|x| x.is_ident("store"))
            .unwrap();
        let r = resolve_receiver(&t, file, f, store - 2);
        assert_eq!(r.name, "stop");
        assert!(r.ty_mentions("AtomicBool"), "{r:?}");
    }

    #[test]
    fn let_aliases_resolve_to_the_field_with_shadowing() {
        let (t, files) = table(
            "struct Pool { cursor: AtomicUsize, reads: AtomicU64 }\n\
             impl Pool { fn f(&self) {\n\
                 let c = &self.reads;\n\
                 let c = &self.cursor;\n\
                 c.fetch_add(1, Ordering::Relaxed);\n\
             } }\n",
        );
        let f = &t.fns[t.by_name["f"][0]];
        let file = &files[0];
        let op = file
            .tokens
            .iter()
            .position(|x| x.is_ident("fetch_add"))
            .unwrap();
        let r = resolve_receiver(&t, file, f, op - 2);
        assert_eq!(r.name, "cursor", "last binding wins");
        assert!(r.ty_mentions("AtomicUsize"), "{r:?}");
    }

    #[test]
    fn params_and_statics_resolve() {
        let (t, files) = table(
            "static NEXT: AtomicU64 = AtomicU64::new(0);\n\
             fn f(stop: &AtomicBool) { stop.load(Ordering::Relaxed); NEXT.load(Ordering::Relaxed); }\n",
        );
        let f = &t.fns[t.by_name["f"][0]];
        let file = &files[0];
        let loads: Vec<usize> = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, x)| x.is_ident("load"))
            .map(|(i, _)| i)
            .collect();
        let p = resolve_receiver(&t, file, f, loads[0] - 2);
        assert_eq!(p.name, "stop");
        assert!(p.ty_mentions("AtomicBool"));
        let s = resolve_receiver(&t, file, f, loads[1] - 2);
        assert_eq!(s.name, "NEXT");
        assert!(s.ty_mentions("AtomicU64"));
    }

    #[test]
    fn unresolvable_receivers_keep_their_name() {
        let (t, files) = table("fn f() { mystery.load(Ordering::Relaxed); }");
        let f = &t.fns[t.by_name["f"][0]];
        let file = &files[0];
        let op = file.tokens.iter().position(|x| x.is_ident("load")).unwrap();
        let r = resolve_receiver(&t, file, f, op - 2);
        assert_eq!(r.name, "mystery");
        assert!(r.ty.is_none());
    }
}

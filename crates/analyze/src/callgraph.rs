//! Pass 1b — a conservative workspace call graph.
//!
//! Edges are resolved by name plus receiver type, never by full type
//! inference:
//!
//! - `recv.method(…)` — the receiver chain is resolved through the symbol
//!   table ([`crate::symbols::resolve_receiver`]). A known receiver type
//!   narrows the edge to the impls of that type; an unknown type keeps an
//!   edge to *every* method of that name (including every trait impl —
//!   this is the "trait-method edges to all impls" over-approximation).
//! - `Type::assoc(…)` — narrowed to the named type's impls (`Self::` uses
//!   the enclosing impl type).
//! - `free(…)` — bare calls cannot be method calls in Rust, so they edge
//!   only to free functions (no `self_ty`).
//! - `name!(…)` macros, keywords, and call-less parens are not edges.
//!
//! Reachability is a monotone bitset fixed-point computed once at build:
//! `reach[f] = ⋃ targets(f) ∪ reach[target]` iterated to convergence.
//! Cycles converge exactly (the transfer function is monotone on a finite
//! lattice), so the interprocedural rules (R4, R10, R11) terminate on
//! recursion knots with the *full* closure — no under-approximation inside
//! strongly connected components.

use crate::parse::FileModel;
use crate::symbols::{resolve_receiver, FnSym, SymbolTable};

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The callee name as written.
    pub name: String,
    /// Token index of the callee name token in the caller's file.
    pub tok: usize,
    pub line: u32,
    /// Candidate callee fn ids (empty for calls into std / out of
    /// workspace).
    pub targets: Vec<usize>,
    /// True when `targets` came from a *precise* resolution — a receiver
    /// narrowed by its declared type, a `Self::`/`Type::` path with a
    /// matching impl, or a bare free-function call. False for the
    /// keep-every-method fallback (unknown receiver, trait object,
    /// computed receiver), whose edges over-approximate heavily; rules
    /// that *deny* on reachability (R4) only trust precise edges, while
    /// rules that *clear* on reachability (R10, R11) may use all of them.
    pub resolved: bool,
}

/// The workspace call graph: per-function call sites, reverse edges, and
/// the precomputed reachability closure.
#[derive(Debug)]
pub struct CallGraph {
    /// `calls[f]` — call sites inside function `f`, in token order.
    pub calls: Vec<Vec<CallSite>>,
    /// `callers[f]` — ids of functions with an edge into `f`.
    pub callers: Vec<Vec<usize>>,
    /// `reach[f]` — bitset of every function transitively callable from
    /// `f` (excluding `f` itself unless it sits on a cycle).
    reach: Vec<Vec<u64>>,
}

/// Keywords and control constructs that look like `ident (` but are not
/// calls.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "let", "else", "move",
    "break", "continue", "unsafe", "where", "impl", "dyn",
];

impl CallGraph {
    /// Builds call sites, reverse edges, and the reachability closure for
    /// every function in `table`.
    pub fn build(files: &[FileModel], table: &SymbolTable) -> CallGraph {
        let n = table.fns.len();
        let mut calls = Vec::with_capacity(n);
        for f in table.fns.iter() {
            calls.push(collect_calls(files, table, f));
        }
        let mut callers = vec![Vec::new(); n];
        for (fid, sites) in calls.iter().enumerate() {
            for site in sites {
                for &t in &site.targets {
                    if !callers[t].contains(&fid) {
                        callers[t].push(fid);
                    }
                }
            }
        }
        let words = n.div_ceil(64).max(1);
        let mut reach = vec![vec![0u64; words]; n];
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                let mut row = std::mem::take(&mut reach[f]);
                for site in &calls[f] {
                    for &t in &site.targets {
                        if row[t / 64] & (1 << (t % 64)) == 0 {
                            row[t / 64] |= 1 << (t % 64);
                            changed = true;
                        }
                        if t != f {
                            for (w, &src) in reach[t].iter().enumerate() {
                                let merged = row[w] | src;
                                if merged != row[w] {
                                    row[w] = merged;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                reach[f] = row;
            }
        }
        CallGraph {
            calls,
            callers,
            reach,
        }
    }

    /// Every function transitively callable from `f`, in id order.
    pub fn reachable_from(&self, f: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.reach[f];
        (0..self.reach.len()).filter(move |&g| row[g / 64] & (1 << (g % 64)) != 0)
    }

    /// True when `g` is transitively callable from `f`.
    pub fn can_reach(&self, f: usize, g: usize) -> bool {
        self.reach[f][g / 64] & (1 << (g % 64)) != 0
    }

    /// True when `pred` holds for `f` or anything transitively callable
    /// from it.
    pub fn reaches<F: Fn(usize) -> bool>(&self, f: usize, pred: F) -> bool {
        pred(f) || self.reachable_from(f).any(pred)
    }

    /// True when function `f` directly contains a call named `name`
    /// (resolved or not — unresolved std calls still count as calls).
    pub fn calls_name(&self, f: usize, name: &str) -> bool {
        self.calls[f].iter().any(|s| s.name == name)
    }
}

/// Scans `f`'s body for call expressions and resolves their targets.
fn collect_calls(files: &[FileModel], table: &SymbolTable, f: &FnSym) -> Vec<CallSite> {
    let file = &files[f.file];
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = f.body_start + 1;
    let end = f.body_end.saturating_sub(1).min(toks.len());
    while i < end {
        let t = &toks[i];
        let is_call = t.kind == crate::lexer::TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NON_CALLS.contains(&t.text.as_str());
        if !is_call {
            i += 1;
            continue;
        }
        let name = t.text.clone();
        let prev_dot = i >= 1 && toks[i - 1].is_punct('.');
        let prev_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let (targets, resolved) = if prev_dot {
            resolve_method(files, table, f, i, &name)
        } else if prev_path {
            resolve_path_call(table, f, toks, i, &name)
        } else {
            // Bare call: free functions only.
            let ids = table
                .by_name
                .get(&name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| table.fns[id].self_ty.is_none())
                        .collect()
                })
                .unwrap_or_default();
            (ids, true)
        };
        out.push(CallSite {
            name,
            tok: i,
            line: t.line,
            targets,
            resolved,
        });
        i += 1;
    }
    out
}

/// `recv.name(…)` — narrow by resolved receiver type when possible. The
/// bool is true only for the narrowed (precise) outcome.
fn resolve_method(
    files: &[FileModel],
    table: &SymbolTable,
    f: &FnSym,
    name_tok: usize,
    name: &str,
) -> (Vec<usize>, bool) {
    let Some(ids) = table.by_name.get(name) else {
        return (Vec::new(), false);
    };
    let methods: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|&id| table.fns[id].has_self)
        .collect();
    if methods.is_empty() {
        return (Vec::new(), false);
    }
    let file = &files[f.file];
    // The receiver chain ends two tokens before the method name
    // (`recv . name`); anything else there (a `)`, `]`, or `?`) means a
    // computed receiver (`foo(x).name()`) — unresolvable, keep all.
    if name_tok < 2 {
        return (methods, false);
    }
    let recv_end = name_tok - 2;
    if file.tokens[recv_end].kind != crate::lexer::TokenKind::Ident {
        return (methods, false);
    }
    let res = resolve_receiver(table, file, f, recv_end);
    let Some(ty) = res.ty else {
        return (methods, false);
    };
    let narrowed: Vec<usize> = methods
        .iter()
        .copied()
        .filter(|&id| {
            table.fns[id]
                .self_ty
                .as_deref()
                .is_some_and(|s| crate::symbols::ty_mentions(&ty, s))
        })
        .collect();
    if narrowed.is_empty() {
        // Known type but no matching impl: a trait object / generic bound
        // (`Box<dyn Disk>`) — keep every impl of the name.
        (methods, false)
    } else {
        (narrowed, true)
    }
}

/// `Qual::name(…)` — narrow to `Qual`'s impls when `Qual` is a type.
fn resolve_path_call(
    table: &SymbolTable,
    f: &FnSym,
    toks: &[crate::lexer::Token],
    name_tok: usize,
    name: &str,
) -> (Vec<usize>, bool) {
    let Some(ids) = table.by_name.get(name) else {
        return (Vec::new(), false);
    };
    let qual = if name_tok >= 3 && toks[name_tok - 3].kind == crate::lexer::TokenKind::Ident {
        Some(toks[name_tok - 3].text.clone())
    } else {
        None
    };
    let qual = match qual.as_deref() {
        Some("Self") => f.self_ty.clone(),
        other => other.map(str::to_string),
    };
    if let Some(q) = qual {
        if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            let narrowed: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&id| table.fns[id].self_ty.as_deref() == Some(q.as_str()))
                .collect();
            if !narrowed.is_empty() {
                return (narrowed, true);
            }
            // A type qualifier with no matching impl (type alias, enum
            // constructor): fall through to all candidates.
            return (ids.clone(), false);
        }
        // Module path (`module::helper`): free functions only.
        let free: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| table.fns[id].self_ty.is_none())
            .collect();
        return (free, true);
    }
    (ids.clone(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph(src: &str) -> (CallGraph, SymbolTable) {
        let files = vec![FileModel::parse(PathBuf::from("t.rs"), src)];
        let table = SymbolTable::build(&files);
        let g = CallGraph::build(&files, &table);
        (g, table)
    }

    fn fid(t: &SymbolTable, name: &str, self_ty: Option<&str>) -> usize {
        *t.by_name[name]
            .iter()
            .find(|&&id| t.fns[id].self_ty.as_deref() == self_ty)
            .unwrap()
    }

    #[test]
    fn typed_receiver_narrows_to_the_right_impl() {
        let (g, t) = graph(
            "struct A { d: MemDisk }\n\
             struct MemDisk;\n\
             struct FileDisk;\n\
             impl MemDisk { fn read_page(&self) {} }\n\
             impl FileDisk { fn read_page(&self) {} }\n\
             impl A { fn go(&self) { self.d.read_page(); } }\n",
        );
        let go = fid(&t, "go", Some("A"));
        let mem = fid(&t, "read_page", Some("MemDisk"));
        let file = fid(&t, "read_page", Some("FileDisk"));
        let targets = &g.calls[go][0].targets;
        assert!(targets.contains(&mem));
        assert!(!targets.contains(&file), "typed receiver must narrow");
    }

    #[test]
    fn unknown_receiver_keeps_all_trait_impls() {
        let (g, t) = graph(
            "struct MemDisk; struct FileDisk;\n\
             trait Disk { fn sync(&self); }\n\
             impl Disk for MemDisk { fn sync(&self) {} }\n\
             impl Disk for FileDisk { fn sync(&self) {} }\n\
             fn go(d: &dyn Disk) { d.sync(); }\n",
        );
        let go = fid(&t, "go", None);
        let targets = &g.calls[go][0].targets;
        assert!(targets.contains(&fid(&t, "sync", Some("MemDisk"))));
        assert!(targets.contains(&fid(&t, "sync", Some("FileDisk"))));
    }

    #[test]
    fn shadowed_binding_resolves_to_the_last_type() {
        let (g, t) = graph(
            "struct A { m: MemDisk, f: FileDisk }\n\
             struct MemDisk; struct FileDisk;\n\
             impl MemDisk { fn ping(&self) {} }\n\
             impl FileDisk { fn ping(&self) {} }\n\
             impl A { fn go(&self) {\n\
                 let d = &self.m;\n\
                 let d = &self.f;\n\
                 d.ping();\n\
             } }\n",
        );
        let go = fid(&t, "go", Some("A"));
        let targets = &g.calls[go][0].targets;
        assert!(targets.contains(&fid(&t, "ping", Some("FileDisk"))));
        assert!(
            !targets.contains(&fid(&t, "ping", Some("MemDisk"))),
            "shadowing must rebind the receiver type"
        );
    }

    #[test]
    fn bare_calls_do_not_edge_to_methods() {
        let (g, t) = graph(
            "struct A;\n\
             impl A { fn helper(&self) {} }\n\
             fn helper() {}\n\
             fn go() { helper(); }\n",
        );
        let go = fid(&t, "go", None);
        let targets = &g.calls[go][0].targets;
        assert_eq!(targets, &vec![fid(&t, "helper", None)]);
    }

    #[test]
    fn self_path_calls_resolve_to_the_impl_type() {
        let (g, t) = graph(
            "struct A; struct B;\n\
             impl A { fn make() {} fn go() { Self::make(); } }\n\
             impl B { fn make() {} }\n",
        );
        let go = fid(&t, "go", Some("A"));
        let targets = &g.calls[go][0].targets;
        assert_eq!(targets, &vec![fid(&t, "make", Some("A"))]);
    }

    #[test]
    fn cycles_terminate_and_reach_across_the_knot() {
        let (g, t) = graph(
            "fn a() { b(); }\n\
             fn b() { a(); c(); }\n\
             fn c() {}\n",
        );
        let a = fid(&t, "a", None);
        let c = fid(&t, "c", None);
        assert!(g.can_reach(a, c), "closure must cross the a↔b cycle");
        assert!(g.can_reach(a, a), "a is reachable from itself via b");
        assert!(!g.can_reach(c, a), "leaf reaches nothing");
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (g, t) = graph("fn go() { println!(\"x\"); if x() {} }\nfn x() -> bool { true }\n");
        let go = fid(&t, "go", None);
        assert!(g.calls[go].iter().all(|s| s.name != "println"));
        assert!(g.calls[go].iter().all(|s| s.name != "if"));
        assert!(g.calls[go].iter().any(|s| s.name == "x"));
    }

    #[test]
    fn reverse_edges_name_the_callers() {
        let (g, t) = graph("fn a() { b(); }\nfn b() {}\nfn c() { b(); }\n");
        let b = fid(&t, "b", None);
        let mut callers = g.callers[b].clone();
        callers.sort_unstable();
        assert_eq!(callers, vec![fid(&t, "a", None), fid(&t, "c", None)]);
    }
}

//! # hdsj-analyze — workspace-wide static invariant checker
//!
//! Clippy's generic lints cannot see project rules: that hdsj library code
//! must be panic-free because the chaos suite injects faults everywhere,
//! that every buffer-pool pin has an RAII unpin, that the few blocking
//! locks follow one global order, that the error taxonomy has no dead
//! variants, and that obs metric names match the registry. This crate is a
//! std-only diagnostics engine — hand-rolled lexer, light structural
//! parser, a workspace symbol table and conservative call graph
//! ([`symbols`], [`callgraph`]), an intraprocedural dataflow engine for
//! bound proofs ([`dataflow`]), fifteen rules — that enforces exactly
//! those, with `file:line` output, deny/warn/note levels, and
//! comment-based suppression (`// allow(hdsj::<rule>): why`; bound
//! justifications use `// BOUND: why`).
//!
//! Entry points: `cargo run -p hdsj-analyze -- check` (CI gate), the
//! `hdsj analyze` CLI subcommand, and [`Workspace::check`] for tests.
//! Rules are documented in [`rules`] and DESIGN.md §10; the complementary
//! *runtime* invariant layer is the storage crate's `debug-invariants`
//! feature.
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod workspace;

pub use diag::{Diagnostic, Level};
pub use workspace::Workspace;

use std::path::Path;

/// Outcome of a check run, with render helpers shared by the two CLIs.
pub struct CheckReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    pub fn denies(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    pub fn warns(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }

    /// Positive findings (discharged proofs); never affect the exit code.
    pub fn notes(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Note)
            .count()
    }

    /// True when the check should fail (any deny-level finding).
    pub fn failed(&self) -> bool {
        self.denies() > 0
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        s.push_str(&format!(
            "hdsj-analyze: {} deny, {} warn, {} note\n",
            self.denies(),
            self.warns(),
            self.notes()
        ));
        s
    }

    /// JSONL rendering (one object per finding).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_json());
            s.push('\n');
        }
        s
    }

    /// SARIF 2.1.0 rendering — the minimal subset code-review UIs ingest:
    /// one run, a driver with the rule catalog, one result per finding.
    /// String escaping reuses the repo's `{:?}` idiom from `Diagnostic::to_json`.
    pub fn render_sarif(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"hdsj-analyze\",\"rules\":[");
        for (i, r) in rules::RULES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"id\":{:?},\"name\":{:?},\"shortDescription\":{{\"text\":{:?}}}}}",
                format!("hdsj::{}", r.name),
                r.name,
                r.summary
            ));
        }
        s.push_str("]}},\"results\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let level = match d.level {
                Level::Deny => "error",
                Level::Warn => "warning",
                Level::Note => "note",
            };
            s.push_str(&format!(
                "{{\"ruleId\":{:?},\"level\":{:?},\"message\":{{\"text\":{:?}}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{:?}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                format!("hdsj::{}", d.rule),
                level,
                d.message,
                d.path.to_string_lossy(),
                d.line
            ));
        }
        s.push_str("]}]}\n");
        s
    }
}

/// Checks the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<CheckReport> {
    let ws = Workspace::load(root)?;
    Ok(CheckReport {
        diagnostics: ws.check(),
    })
}

/// Checks the workspace rooted at `root`, running only the rules named in
/// `filter` (a `--rules` spec like `"r7,r8"`; ids or names).
pub fn check_workspace_filtered(root: &Path, filter: &str) -> Result<CheckReport, String> {
    let set = rules::parse_filter(filter)?;
    let ws = Workspace::load(root).map_err(|e| e.to_string())?;
    Ok(CheckReport {
        diagnostics: ws.check_filtered(&set),
    })
}

/// Long-form documentation for one rule (for `explain <rule>`): the
/// rationale, a fixture excerpt that trips it, and the suppression syntax.
pub fn render_explain(rule: &str) -> Result<String, String> {
    let key = rule.trim().to_ascii_lowercase();
    let Some(r) = rules::RULES
        .iter()
        .find(|r| r.id == key || r.name == key || format!("hdsj::{}", r.name) == key)
    else {
        let known = rules::RULES
            .iter()
            .map(|r| r.id)
            .collect::<Vec<_>>()
            .join(", ");
        return Err(format!("unknown rule {rule:?}; known: {known}"));
    };
    let mut s = String::new();
    s.push_str(&format!("{} hdsj::{} ({})\n\n", r.id, r.name, r.level));
    s.push_str(r.doc.trim_end());
    s.push_str("\n\nExample (from the rule's fixture; every line marked here is denied):\n\n");
    for line in r.example.trim_end().lines() {
        s.push_str("    ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!(
        "\nSuppress a finding with a justified comment on or just above the line:\n\n    // allow(hdsj::{}): <reason>\n",
        r.name
    ));
    Ok(s)
}

/// One line per rule: `id  level      name — summary` (for `--list-rules`).
pub fn render_rule_list() -> String {
    let mut s = String::new();
    for r in rules::RULES {
        s.push_str(&format!(
            "{:<4} {:<10} {:<17} {}\n",
            r.id,
            r.level,
            r.name,
            r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
        ));
    }
    s
}

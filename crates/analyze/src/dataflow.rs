//! Pass 3: an intraprocedural dataflow engine over the token stream.
//!
//! The bounds rules (R13/R15) need more than structure: they must decide
//! whether the offset fed to a raw-pointer `.add(e)` is *provably* inside
//! the slice it indexes, and whether the arithmetic producing it can wrap.
//! This module supplies that reasoning without growing a real SSA IR:
//!
//! - **Values** are linear-ish polynomials ([`Poly`]) over opaque *atoms*
//!   (`at`, `xs.len()`, `lanes.end`, `$base`) with `i64` coefficients.
//!   Anything the expression grammar cannot handle (`/`, `%`, shifts,
//!   chained calls on parenthesized groups) collapses to a single opaque
//!   atom, which is always sound: an opaque atom proves nothing.
//! - **Facts** are normalized inequalities `lhs <= rhs` (strict for `<`)
//!   harvested from `assert!`/`debug_assert!`(`_eq`) conjuncts, `while`/
//!   `if` guards, `for v in a..b` ranges, and `.clamp(lo, hi)` bindings.
//! - **Defs** are `let` bindings; substitution resolves a variable to its
//!   defining polynomial when the binding still dominates the use.
//! - **Dominance** is approximated lexically: a fact born at token `i`
//!   covers later tokens of its innermost enclosing block, truncated by
//!   any assignment to a mentioned variable and at the entry of any loop
//!   that reassigns one (a loop's own guard is exempt — it re-establishes
//!   itself every iteration). An `if cmp { return; }` with no `else`
//!   contributes the negated comparison to the code after the block.
//!
//! Known imprecision (documented in DESIGN.md §17): facts do not compose
//! transitively (`a <= b` and `b <= c` does not conclude `a <= c` unless
//! substitution makes it syntactic), guards are assumed to evaluate
//! without wrapping (R15 separately flags `at + k <= len`-style guards),
//! and dominance is lexical, not CFG-accurate. All three err toward
//! *failing* to prove, never toward a false proof.

use crate::lexer::{Token, TokenKind};
use crate::parse::{skip_group, FileModel, FnSpan};
use std::collections::BTreeMap;
use std::fmt;

/// Largest atom product tracked by [`Poly::mul`]; larger degrees collapse.
const MAX_MONO_LEN: usize = 4;
/// Most terms a product may produce before collapsing to an opaque atom.
const MAX_TERMS: usize = 24;
/// Definition-substitution recursion budget.
const SUBST_DEPTH: u32 = 3;

/// A polynomial over opaque atoms: `mono -> coefficient`, where a mono is
/// a sorted product of atom names and the empty mono is the constant term.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Vec<String>, i64>,
}

impl Poly {
    pub fn constant(c: i64) -> Poly {
        let mut p = Poly::default();
        if c != 0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    pub fn atom(name: impl Into<String>) -> Poly {
        let mut p = Poly::default();
        p.terms.insert(vec![name.into()], 1);
        p
    }

    fn from_mono(mono: Vec<String>, coeff: i64) -> Poly {
        let mut p = Poly::default();
        if coeff != 0 {
            p.terms.insert(mono, coeff);
        }
        p
    }

    fn insert(&mut self, mono: Vec<String>, coeff: i64) {
        let e = self.terms.entry(mono).or_insert(0);
        *e = e.saturating_add(coeff);
    }

    fn normalized(mut self) -> Poly {
        self.terms.retain(|_, c| *c != 0);
        self
    }

    pub fn add(&self, o: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &o.terms {
            out.insert(m.clone(), *c);
        }
        out.normalized()
    }

    pub fn sub(&self, o: &Poly) -> Poly {
        self.add(&o.neg())
    }

    pub fn neg(&self) -> Poly {
        let mut out = Poly::default();
        for (m, c) in &self.terms {
            out.terms.insert(m.clone(), -*c);
        }
        out
    }

    /// Distributing product; `None` when the result would exceed the
    /// degree/size caps or overflow a coefficient.
    pub fn mul(&self, o: &Poly) -> Option<Poly> {
        let mut out = Poly::default();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &o.terms {
                if ma.len() + mb.len() > MAX_MONO_LEN {
                    return None;
                }
                let c = ca.checked_mul(*cb)?;
                let mut m = ma.clone();
                m.extend(mb.iter().cloned());
                m.sort();
                out.insert(m, c);
            }
        }
        let out = out.normalized();
        if out.terms.len() > MAX_TERMS {
            return None;
        }
        Some(out)
    }

    pub fn as_const(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Vec::new()).copied(),
            _ => None,
        }
    }

    pub fn is_const(&self) -> bool {
        self.as_const().is_some()
    }

    fn const_term(&self) -> i64 {
        self.terms.get(&Vec::new()).copied().unwrap_or(0)
    }

    /// True when any atom in any mono contains `var` as a path segment
    /// (`dim`, `self.dim`, `dim.min(x)` all mention `dim`).
    pub fn mentions(&self, var: &str) -> bool {
        self.terms.keys().flatten().any(|atom| {
            atom.split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|seg| seg == var)
        })
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (mono, &c) in &self.terms {
            if c == 0 {
                continue;
            }
            let mag = c.unsigned_abs();
            if first {
                if c < 0 {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {} ", if c < 0 { "-" } else { "+" })?;
            }
            if mono.is_empty() {
                write!(f, "{mag}")?;
            } else if mag == 1 {
                write!(f, "{}", mono.join("*"))?;
            } else {
                write!(f, "{}*{}", mag, mono.join("*"))?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Comparison operators the fact extractor understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// A top-level comparison inside a condition: operand token ranges.
pub struct Cmp {
    pub lhs: (usize, usize),
    pub rhs: (usize, usize),
    pub op: CmpOp,
}

fn value_end(t: &Token) -> bool {
    matches!(
        t.kind,
        TokenKind::Ident | TokenKind::Number | TokenKind::Str | TokenKind::Char
    ) || t.is_punct(')')
        || t.is_punct(']')
}

/// Splits `[lo, hi)` at top-level `&&`. Returns `None` when a top-level
/// `||` makes the conjunct decomposition unsound.
pub fn conjunct_ranges(toks: &[Token], lo: usize, hi: usize) -> Option<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = lo;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && i + 1 < hi && i > lo && value_end(&toks[i - 1]) {
            if t.is_punct('&') && toks[i + 1].is_punct('&') {
                out.push((start, i));
                i += 2;
                start = i;
                continue;
            }
            if t.is_punct('|') && toks[i + 1].is_punct('|') {
                return None;
            }
        }
        i += 1;
    }
    out.push((start, hi));
    out.retain(|(a, b)| a < b);
    Some(out)
}

/// Splits `[lo, hi)` at top-level commas (macro/call argument lists).
pub fn split_args(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = lo;
    for (i, t) in toks.iter().enumerate().take(hi).skip(lo) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            out.push((start, i));
            start = i + 1;
        }
    }
    if start < hi {
        out.push((start, hi));
    }
    out
}

/// Finds the first top-level comparison in `[lo, hi)`, skipping shifts,
/// arrows (`->`, `=>`), and turbofish (`::<`).
pub fn find_cmp(toks: &[Token], lo: usize, hi: usize) -> Option<Cmp> {
    let mut depth = 0i64;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            let prev = if i > lo { Some(&toks[i - 1]) } else { None };
            let next = if i + 1 < hi { Some(&toks[i + 1]) } else { None };
            let prev_is = |c: char| prev.is_some_and(|p| p.is_punct(c));
            let next_is = |c: char| next.is_some_and(|n| n.is_punct(c));
            if t.is_punct('<') && !prev_is(':') && !prev_is('<') && !next_is('<') {
                let (op, w) = if next_is('=') {
                    (CmpOp::Le, 2)
                } else {
                    (CmpOp::Lt, 1)
                };
                return Some(Cmp {
                    lhs: (lo, i),
                    rhs: (i + w, hi),
                    op,
                });
            }
            if t.is_punct('>')
                && !prev_is('-')
                && !prev_is('=')
                && !prev_is('>')
                && !next_is('>')
            {
                let (op, w) = if next_is('=') {
                    (CmpOp::Ge, 2)
                } else {
                    (CmpOp::Gt, 1)
                };
                return Some(Cmp {
                    lhs: (lo, i),
                    rhs: (i + w, hi),
                    op,
                });
            }
            if t.is_punct('=') && next_is('=') {
                return Some(Cmp {
                    lhs: (lo, i),
                    rhs: (i + 2, hi),
                    op: CmpOp::Eq,
                });
            }
            if t.is_punct('!') && next_is('=') {
                return Some(Cmp {
                    lhs: (lo, i),
                    rhs: (i + 2, hi),
                    op: CmpOp::Ne,
                });
            }
        }
        i += 1;
    }
    None
}

/// Renders `[lo, hi)` close to its source spelling, for diagnostics.
pub fn render(toks: &[Token], lo: usize, hi: usize) -> String {
    let mut s = String::new();
    let mut prev: Option<&str> = None;
    for t in toks.iter().take(hi.min(toks.len())).skip(lo) {
        let tx = t.text.as_str();
        let tight = prev.is_none()
            || matches!(tx, ")" | "]" | "," | ";" | "." | "(" | "[" | ":")
            || matches!(
                prev,
                Some("(") | Some("[") | Some(".") | Some("$") | Some("!") | Some("#")
            )
            || (tx == "="
                && matches!(
                    prev,
                    Some("<")
                        | Some(">")
                        | Some("=")
                        | Some("!")
                        | Some("+")
                        | Some("-")
                        | Some("*")
                        | Some("/")
                ))
            || prev == Some(":")
            || (tx == "&" && prev == Some("&"))
            || (tx == "|" && prev == Some("|"))
            || (tx == "." && prev == Some("."));
        if !tight && !s.is_empty() {
            s.push(' ');
        }
        s.push_str(tx);
        prev = Some(tx);
    }
    s
}

/// Parses an integer literal token (`4096`, `0xFF_u64`); `None` for
/// floats, exponents, and unknown suffixes.
fn parse_int(text: &str) -> Option<i64> {
    let t = text.replace('_', "");
    if t.contains('.') {
        return None;
    }
    let (radix, rest) = if let Some(r) = t.strip_prefix("0x") {
        (16, r)
    } else if let Some(r) = t.strip_prefix("0b") {
        (2, r)
    } else if let Some(r) = t.strip_prefix("0o") {
        (8, r)
    } else {
        (10, t.as_str())
    };
    let cut = rest
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    let (digits, suffix) = rest.split_at(cut);
    if digits.is_empty() {
        return None;
    }
    match suffix {
        "" | "usize" | "isize" | "u8" | "u16" | "u32" | "u64" | "u128" | "i8" | "i16"
        | "i32" | "i64" | "i128" => {}
        _ => return None,
    }
    i64::from_str_radix(digits, radix).ok()
}

/// Parsed expression: its polynomial value plus the proof obligations the
/// parse discovered (subtractions that may underflow, `+`/`*` nodes that
/// may overflow).
pub struct ExprInfo {
    pub poly: Poly,
    /// Each `l - r` node (unsigned underflow obligation: need `l >= r`).
    pub subs: Vec<(Poly, Poly)>,
    /// Each non-constant `+`/`*` node: value and source rendering.
    pub arith: Vec<(Poly, String)>,
}

/// Parses `[lo, hi)`; on any unsupported construct the whole range
/// collapses to one opaque atom with no recorded obligations.
pub fn parse_expr(toks: &[Token], lo: usize, hi: usize) -> ExprInfo {
    let mut p = Parser {
        toks,
        pos: lo,
        hi,
        subs: Vec::new(),
        arith: Vec::new(),
        failed: false,
    };
    let poly = p.sum();
    if p.failed || p.pos != hi {
        ExprInfo {
            poly: Poly::atom(render(toks, lo, hi)),
            subs: Vec::new(),
            arith: Vec::new(),
        }
    } else {
        ExprInfo {
            poly,
            subs: p.subs,
            arith: p.arith,
        }
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    hi: usize,
    subs: Vec<(Poly, Poly)>,
    arith: Vec<(Poly, String)>,
    failed: bool,
}

impl Parser<'_> {
    fn peek(&self, k: usize) -> Option<&Token> {
        if self.pos + k < self.hi {
            self.toks.get(self.pos + k)
        } else {
            None
        }
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn sum(&mut self) -> Poly {
        let start = self.pos;
        let mut acc = self.product();
        loop {
            if self.failed {
                return acc;
            }
            // `as <ty>` casts are value-preserving for index reasoning.
            while self.peek(0).is_some_and(|t| t.is_ident("as"))
                && self.peek(1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                self.pos += 2;
            }
            if self.at_punct('+') && !self.peek(1).is_some_and(|t| t.is_punct('=')) {
                self.pos += 1;
                let r = self.product();
                let node = acc.add(&r);
                if !(acc.is_const() && r.is_const()) {
                    self.arith
                        .push((node.clone(), render(self.toks, start, self.pos)));
                }
                acc = node;
            } else if self.at_punct('-') && !self.peek(1).is_some_and(|t| t.is_punct('=')) {
                self.pos += 1;
                let r = self.product();
                if !(acc.is_const() && r.is_const()) {
                    self.subs.push((acc.clone(), r.clone()));
                }
                acc = acc.sub(&r);
            } else {
                break;
            }
        }
        acc
    }

    fn product(&mut self) -> Poly {
        let start = self.pos;
        let mut acc = self.factor();
        while !self.failed
            && self.at_punct('*')
            && !self.peek(1).is_some_and(|t| t.is_punct('='))
        {
            self.pos += 1;
            let r = self.factor();
            let node = match acc.mul(&r) {
                Some(p) => p,
                None => Poly::atom(render(self.toks, start, self.pos)),
            };
            if !(acc.is_const() && r.is_const()) {
                self.arith
                    .push((node.clone(), render(self.toks, start, self.pos)));
            }
            acc = node;
        }
        acc
    }

    fn factor(&mut self) -> Poly {
        let Some(t) = self.peek(0) else {
            self.failed = true;
            return Poly::default();
        };
        if t.is_punct('-') {
            self.pos += 1;
            return self.factor().neg();
        }
        if t.is_punct('&') {
            self.pos += 1;
            return self.factor();
        }
        if t.is_punct('(') {
            let start = self.pos;
            let close = skip_group(self.toks, self.pos);
            if close > self.hi {
                self.failed = true;
                return Poly::default();
            }
            if self
                .toks
                .get(close)
                .filter(|_| close < self.hi)
                .is_some_and(|n| n.is_punct('.'))
            {
                // `(…).method(…)` postfix chain: opaque.
                self.pos = close;
                return self.chain(render(self.toks, start, close), start);
            }
            self.pos += 1;
            let inner = self.sum();
            if !self.at_punct(')') {
                self.failed = true;
                return inner;
            }
            self.pos += 1;
            return inner;
        }
        if t.kind == TokenKind::Number {
            let start = self.pos;
            let text = t.text.clone();
            self.pos += 1;
            if self.at_punct('.') && self.peek(1).is_some_and(|n| n.kind == TokenKind::Ident) {
                // `1.max(x)`-style method on a literal: opaque chain.
                return self.chain(text, start);
            }
            return match parse_int(&text) {
                Some(c) => Poly::constant(c),
                None => Poly::atom(text),
            };
        }
        if t.is_punct('$') {
            let start = self.pos;
            if self.peek(1).is_some_and(|n| n.kind == TokenKind::Ident) {
                let name = format!("${}", self.toks[self.pos + 1].text);
                self.pos += 2;
                return self.chain(name, start);
            }
            self.failed = true;
            return Poly::default();
        }
        if t.kind == TokenKind::Ident {
            let start = self.pos;
            let head = t.text.clone();
            self.pos += 1;
            return self.chain(head, start);
        }
        self.failed = true;
        Poly::default()
    }

    /// Continues a postfix chain (`::seg`, `.field`, `.method(args)`,
    /// `[idx]`, `(args)`) into one opaque atom.
    fn chain(&mut self, mut s: String, _start: usize) -> Poly {
        loop {
            if self.at_punct(':')
                && self.peek(1).is_some_and(|t| t.is_punct(':'))
                && self.peek(2).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                s.push_str("::");
                s.push_str(&self.toks[self.pos + 2].text);
                self.pos += 3;
                continue;
            }
            if self.at_punct('.') && self.peek(1).is_some_and(|t| t.kind == TokenKind::Ident) {
                s.push('.');
                s.push_str(&self.toks[self.pos + 1].text);
                self.pos += 2;
                if self.at_punct('(') {
                    let close = skip_group(self.toks, self.pos);
                    if close > self.hi {
                        self.failed = true;
                        return Poly::atom(s);
                    }
                    s.push_str(&render(self.toks, self.pos, close));
                    self.pos = close;
                }
                continue;
            }
            if self.at_punct('.') && self.peek(1).is_some_and(|t| t.kind == TokenKind::Number) {
                s.push('.');
                s.push_str(&self.toks[self.pos + 1].text);
                self.pos += 2;
                continue;
            }
            if self.at_punct('[') || self.at_punct('(') {
                let close = skip_group(self.toks, self.pos);
                if close > self.hi {
                    self.failed = true;
                    return Poly::atom(s);
                }
                s.push_str(&render(self.toks, self.pos, close));
                self.pos = close;
                continue;
            }
            break;
        }
        Poly::atom(s)
    }
}

/// A dominating inequality `lhs <= rhs` (strict for `<`), active over the
/// token range `(start, end)`.
#[derive(Clone, Debug)]
pub struct Fact {
    pub lhs: Poly,
    pub rhs: Poly,
    pub strict: bool,
    /// Token index where the fact is established (conjunct start).
    pub start: usize,
    /// Exclusive token index where it stops dominating.
    pub end: usize,
    pub line: u32,
    /// Source rendering of the originating condition (proof witness).
    pub text: String,
    /// For loop guards: the loop body's `{` index (exempt from that
    /// loop's entry truncation — the guard re-establishes each iteration).
    loop_guard_of: Option<usize>,
}

#[derive(Clone, Debug)]
struct Def {
    var: String,
    poly: Poly,
    has_arith: bool,
    rhs: (usize, usize),
    start: usize,
    end: usize,
    line: u32,
}

/// A discharged proof: which check witnessed the bound, and where.
#[derive(Debug)]
pub struct Proof {
    pub witness: String,
    pub line: u32,
}

/// Public view of an active `let` binding (for R15's def-site reporting).
pub struct DefView {
    pub line: u32,
    /// Token range of the binding's right-hand side.
    pub rhs: (usize, usize),
    /// True when the right-hand side contains `+`/`*`/`-` arithmetic.
    pub has_arith: bool,
}

/// Per-function dataflow result: facts and defs with dominance ranges.
pub struct FnFlow {
    facts: Vec<Fact>,
    defs: Vec<Def>,
}

impl FnFlow {
    /// Analyzes the body of `f` in `file`.
    pub fn analyze(file: &FileModel, f: &FnSpan) -> FnFlow {
        Builder {
            toks: &file.tokens,
            depth: &file.depth,
            body_end: f.body_end,
            facts: Vec::new(),
            defs: Vec::new(),
            loops: Vec::new(),
            kills: Vec::new(),
            scopes: Vec::new(),
        }
        .run(f.body_start)
    }

    /// All facts (for tests and rule messages).
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    fn active_facts(&self, pos: usize) -> impl Iterator<Item = &Fact> {
        self.facts
            .iter()
            .filter(move |fa| fa.start < pos && pos < fa.end)
    }

    fn active_def(&self, var: &str, pos: usize) -> Option<&Def> {
        self.defs
            .iter()
            .filter(|d| d.var == var && d.start < pos && pos < d.end)
            .max_by_key(|d| d.start)
    }

    /// The active `let` binding of `var` at `pos`, if any.
    pub fn def_of(&self, var: &str, pos: usize) -> Option<DefView> {
        self.active_def(var, pos).map(|d| DefView {
            line: d.line,
            rhs: d.rhs,
            has_arith: d.has_arith,
        })
    }

    /// Substitutes active definitions into `p` (recursively, bounded).
    fn subst(&self, p: &Poly, pos: usize, depth: u32) -> Poly {
        if depth == 0 {
            return p.clone();
        }
        let mut out = Poly::default();
        for (mono, &coeff) in &p.terms {
            let mut prod = Poly::constant(coeff);
            let mut ok = true;
            for atom in mono {
                let is_plain = !atom.is_empty()
                    && atom.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && !atom.starts_with(|c: char| c.is_ascii_digit());
                let fpoly = if is_plain {
                    match self.active_def(atom, pos) {
                        Some(d) => self.subst(&d.poly, pos, depth - 1),
                        None => Poly::atom(atom.clone()),
                    }
                } else {
                    Poly::atom(atom.clone())
                };
                match prod.mul(&fpoly) {
                    Some(np) => prod = np,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                out = out.add(&prod);
            } else {
                out = out.add(&Poly::from_mono(mono.clone(), coeff));
            }
        }
        out
    }

    /// Least upper bound of a single atom at `pos`, from active facts of
    /// the shape `atom + c <= R` with constant `R`.
    fn upper_atom(&self, atom: &str, pos: usize) -> Option<i64> {
        let ap = Poly::atom(atom.to_string());
        let mut best: Option<i64> = None;
        for fa in self.active_facts(pos) {
            let l = self.subst(&fa.lhs, pos, SUBST_DEPTH);
            let r = self.subst(&fa.rhs, pos, SUBST_DEPTH);
            let (Some(c), Some(rc)) = (l.sub(&ap).as_const(), r.as_const()) else {
                continue;
            };
            let bound = rc - c - i64::from(fa.strict);
            best = Some(best.map_or(bound, |b| b.min(bound)));
        }
        best
    }

    fn upper_mono(&self, mono: &[String], pos: usize) -> Option<i64> {
        let mut acc: i64 = 1;
        for atom in mono {
            let u = self.upper_atom(atom, pos)?.max(0);
            acc = acc.checked_mul(u)?;
        }
        Some(acc)
    }

    /// Guaranteed minimum of `p` at `pos` under `atom >= 0` for every atom
    /// and fact-derived upper bounds; `None` when a negative-coefficient
    /// mono has no finite upper bound.
    fn worst_min(&self, p: &Poly, pos: usize) -> Option<i64> {
        let mut min = p.const_term();
        for (mono, &c) in &p.terms {
            if mono.is_empty() || c >= 0 {
                continue; // nonneg monos bottom out at 0
            }
            let u = self.upper_mono(mono, pos)?;
            min = min.saturating_add(c.saturating_mul(u));
        }
        Some(min)
    }

    /// True when `p >= 0` is provable, either by worst-case interval
    /// arithmetic or assisted by one active fact (`p >= p - (R-L) + strict`).
    /// `exclude_start` skips the fact born at that token index, so an
    /// assert's own conjunct cannot discharge its internal arithmetic.
    fn nonneg(&self, p: &Poly, pos: usize, exclude_start: Option<usize>) -> bool {
        if self.worst_min(p, pos).is_some_and(|m| m >= 0) {
            return true;
        }
        for fa in self.active_facts(pos) {
            if Some(fa.start) == exclude_start {
                continue;
            }
            let gap = self.subst(&fa.rhs, pos, SUBST_DEPTH).sub(&self.subst(
                &fa.lhs,
                pos,
                SUBST_DEPTH,
            ));
            let q = p.sub(&gap);
            if self
                .worst_min(&q, pos)
                .is_some_and(|m| m + i64::from(fa.strict) >= 0)
            {
                return true;
            }
        }
        false
    }

    /// A fact whose (substituted) left side dominates `p` — evidence that
    /// a dominating check already evaluated a quantity at least as large.
    fn checked(&self, p: &Poly, pos: usize, exclude_start: Option<usize>) -> Option<&Fact> {
        self.active_facts(pos).find(|fa| {
            if Some(fa.start) == exclude_start {
                return false;
            }
            let l = self.subst(&fa.lhs, pos, SUBST_DEPTH);
            self.worst_min(&l.sub(p), pos).is_some_and(|m| m >= 0)
        })
    }

    /// Discharges the offset expression `[lo, hi)` used at `pos` against
    /// `recv.len()`: finds an active fact `L <= R` with `E <= L` (by
    /// worst-case slack) and `R <= recv.len() + c`, `c` constant, such
    /// that the combined margin proves `E < recv.len()`.
    pub fn discharge_index(
        &self,
        file: &FileModel,
        lo: usize,
        hi: usize,
        pos: usize,
        recv: &str,
    ) -> Result<Proof, String> {
        let e_info = parse_expr(&file.tokens, lo, hi);
        let e = self.subst(&e_info.poly, pos, SUBST_DEPTH);
        let len_atom = Poly::atom(format!("{recv}.len()"));
        for fa in self.active_facts(pos) {
            let l = self.subst(&fa.lhs, pos, SUBST_DEPTH);
            let r = self.subst(&fa.rhs, pos, SUBST_DEPTH);
            let Some(slack) = self.worst_min(&l.sub(&e), pos) else {
                continue;
            };
            if slack < 0 {
                continue;
            }
            let Some(c) = r.sub(&len_atom).as_const() else {
                continue;
            };
            if slack + (-c) + i64::from(fa.strict) >= 1 {
                return Ok(Proof {
                    witness: fa.text.clone(),
                    line: fa.line,
                });
            }
        }
        Err(format!(
            "offset `{}` (= {}) has no dominating check proving `{} < {recv}.len()`",
            render(&file.tokens, lo, hi),
            e,
            e
        ))
    }

    /// Proves the arithmetic in `[lo, hi)` non-wrapping at `pos`: every
    /// subtraction must be nonnegative and every `+`/`*` node must have a
    /// finite interval bound or be covered by a dominating check.
    pub fn prove_arith(
        &self,
        file: &FileModel,
        lo: usize,
        hi: usize,
        pos: usize,
        exclude_start: Option<usize>,
    ) -> Result<(), String> {
        let info = parse_expr(&file.tokens, lo, hi);
        for (l, r) in &info.subs {
            let d = self
                .subst(l, pos, SUBST_DEPTH)
                .sub(&self.subst(r, pos, SUBST_DEPTH));
            if !self.nonneg(&d, pos, exclude_start) {
                return Err(format!(
                    "subtraction `{l} - {r}` may underflow: no dominating fact proves `{l} >= {r}`"
                ));
            }
        }
        for (n, src) in &info.arith {
            let ns = self.subst(n, pos, SUBST_DEPTH);
            if ns.as_const().is_some() {
                continue;
            }
            let bounded = ns
                .terms
                .keys()
                .filter(|m| !m.is_empty())
                .all(|m| self.upper_mono(m, pos).is_some());
            if bounded || self.checked(&ns, pos, exclude_start).is_some() {
                continue;
            }
            return Err(format!(
                "arithmetic `{src}` (= {ns}) has no finite interval bound and no dominating check covers it"
            ));
        }
        Ok(())
    }
}

struct Builder<'a> {
    toks: &'a [Token],
    depth: &'a [u32],
    body_end: usize,
    facts: Vec<Fact>,
    defs: Vec<Def>,
    /// Loop bodies: `(body '{' index, exclusive close)`.
    loops: Vec<(usize, usize)>,
    /// Assignments / rebindings: `(var, token index)`.
    kills: Vec<(String, usize)>,
    /// Exclusive ends of currently-open brace groups.
    scopes: Vec<usize>,
}

impl Builder<'_> {
    fn run(mut self, body_start: usize) -> FnFlow {
        let mut i = body_start;
        while i < self.body_end {
            while self.scopes.last().is_some_and(|&e| e <= i) {
                self.scopes.pop();
            }
            let t = &self.toks[i];
            if t.is_punct('{') {
                self.scopes
                    .push(skip_group(self.toks, i).min(self.body_end));
                i += 1;
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "let" => self.handle_let(i),
                    "assert" | "debug_assert" => self.handle_assert(i, false),
                    "assert_eq" | "debug_assert_eq" => self.handle_assert(i, true),
                    "while" => self.handle_while(i),
                    "loop" => {
                        if let Some(bo) = self.find_body(i + 1) {
                            self.loops.push((bo, skip_group(self.toks, bo)));
                        }
                    }
                    "for" => self.handle_for(i),
                    "if" => self.handle_if(i),
                    _ => self.detect_kill(i),
                }
            }
            i += 1;
        }
        self.finish()
    }

    fn encl(&self) -> usize {
        self.scopes.last().copied().unwrap_or(self.body_end)
    }

    /// First `{` after `from` outside `()`/`[]` groups (a loop/if body).
    fn find_body(&self, from: usize) -> Option<usize> {
        let mut j = from;
        while j < self.body_end {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                j = skip_group(self.toks, j);
                continue;
            }
            if t.is_punct('{') {
                return Some(j);
            }
            if t.is_punct(';') {
                return None;
            }
            j += 1;
        }
        None
    }

    /// Extracts facts from every conjunct comparison in `[lo, hi)`.
    fn facts_from_cond(
        &mut self,
        lo: usize,
        hi: usize,
        end: usize,
        loop_guard_of: Option<usize>,
    ) {
        let Some(conjs) = conjunct_ranges(self.toks, lo, hi) else {
            return;
        };
        for (a, b) in conjs {
            let Some(cmp) = find_cmp(self.toks, a, b) else {
                continue;
            };
            let li = parse_expr(self.toks, cmp.lhs.0, cmp.lhs.1);
            let ri = parse_expr(self.toks, cmp.rhs.0, cmp.rhs.1);
            let text = render(self.toks, a, b);
            let line = self.toks[a].line;
            let push = |lhs: Poly, rhs: Poly, strict: bool, facts: &mut Vec<Fact>| {
                facts.push(Fact {
                    lhs,
                    rhs,
                    strict,
                    start: a,
                    end,
                    line,
                    text: text.clone(),
                    loop_guard_of,
                });
            };
            match cmp.op {
                CmpOp::Lt => push(li.poly, ri.poly, true, &mut self.facts),
                CmpOp::Le => push(li.poly, ri.poly, false, &mut self.facts),
                CmpOp::Gt => push(ri.poly, li.poly, true, &mut self.facts),
                CmpOp::Ge => push(ri.poly, li.poly, false, &mut self.facts),
                CmpOp::Eq => {
                    push(li.poly.clone(), ri.poly.clone(), false, &mut self.facts);
                    push(ri.poly, li.poly, false, &mut self.facts);
                }
                CmpOp::Ne => {}
            }
        }
    }

    fn handle_assert(&mut self, i: usize, is_eq: bool) {
        if !(self.toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && self.toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
        {
            return;
        }
        let open = i + 2;
        let close = skip_group(self.toks, open);
        if close <= open + 1 {
            return;
        }
        let (lo, hi) = (open + 1, close - 1);
        let end = self.encl();
        let args = split_args(self.toks, lo, hi);
        if is_eq {
            if args.len() < 2 {
                return;
            }
            let (a0, a1) = (args[0], args[1]);
            let li = parse_expr(self.toks, a0.0, a0.1);
            let ri = parse_expr(self.toks, a1.0, a1.1);
            let text = format!(
                "{} == {}",
                render(self.toks, a0.0, a0.1),
                render(self.toks, a1.0, a1.1)
            );
            let line = self.toks[a0.0].line;
            for (l, r) in [(li.poly.clone(), ri.poly.clone()), (ri.poly, li.poly)] {
                self.facts.push(Fact {
                    lhs: l,
                    rhs: r,
                    strict: false,
                    start: a0.0,
                    end,
                    line,
                    text: text.clone(),
                    loop_guard_of: None,
                });
            }
        } else {
            // The condition is the first macro argument; later arguments
            // are the panic message.
            let Some(&cond) = args.first() else { return };
            self.facts_from_cond(cond.0, cond.1, end, None);
        }
    }

    fn handle_while(&mut self, i: usize) {
        if self.toks.get(i + 1).is_some_and(|t| t.is_ident("let")) {
            if let Some(bo) = self.find_body(i + 2) {
                self.loops.push((bo, skip_group(self.toks, bo)));
            }
            return;
        }
        let Some(bo) = self.find_body(i + 1) else {
            return;
        };
        let close = skip_group(self.toks, bo);
        self.facts_from_cond(i + 1, bo, close, Some(bo));
        self.loops.push((bo, close));
    }

    fn handle_for(&mut self, i: usize) {
        let Some(bo) = self.find_body(i + 1) else {
            return;
        };
        let close = skip_group(self.toks, bo);
        self.loops.push((bo, close));
        // Locate the `in` keyword at top level before the body.
        let mut in_idx = None;
        let mut j = i + 1;
        while j < bo {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                j = skip_group(self.toks, j);
                continue;
            }
            if t.is_ident("in") {
                in_idx = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else { return };
        // Every identifier bound by the pattern is reassigned per
        // iteration: record kills.
        for k in i + 1..in_idx {
            if self.toks[k].kind == TokenKind::Ident && !self.toks[k].is_ident("mut") {
                self.kills.push((self.toks[k].text.clone(), i));
            }
        }
        // `for v in a..b` / `a..=b` with a single-ident pattern yields an
        // interval fact on `v`.
        if in_idx != i + 2 || self.toks[i + 1].kind != TokenKind::Ident {
            return;
        }
        let var = self.toks[i + 1].text.clone();
        let mut j = in_idx + 1;
        while j + 1 < bo {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                j = skip_group(self.toks, j);
                continue;
            }
            if t.is_punct('.') && self.toks[j + 1].is_punct('.') {
                let incl = self.toks.get(j + 2).is_some_and(|t| t.is_punct('='));
                let rhs_lo = j + 2 + usize::from(incl);
                if rhs_lo >= bo {
                    return;
                }
                let ri = parse_expr(self.toks, rhs_lo, bo);
                self.facts.push(Fact {
                    lhs: Poly::atom(var),
                    rhs: ri.poly,
                    strict: !incl,
                    start: i,
                    end: close,
                    line: self.toks[i].line,
                    text: render(self.toks, i + 1, bo),
                    loop_guard_of: Some(bo),
                });
                return;
            }
            j += 1;
        }
    }

    fn handle_if(&mut self, i: usize) {
        if self.toks.get(i + 1).is_some_and(|t| t.is_ident("let")) {
            return;
        }
        let Some(bo) = self.find_body(i + 1) else {
            return;
        };
        let close = skip_group(self.toks, bo);
        self.facts_from_cond(i + 1, bo, close, None);
        // `if cmp { … return; }` with no `else`: the negated comparison
        // dominates the rest of the enclosing block.
        if self.toks.get(close).is_some_and(|t| t.is_ident("else")) {
            return;
        }
        let Some(conjs) = conjunct_ranges(self.toks, i + 1, bo) else {
            return;
        };
        if conjs.len() != 1 {
            return;
        }
        let (a, b) = conjs[0];
        let Some(cmp) = find_cmp(self.toks, a, b) else {
            return;
        };
        let body_depth = self.depth.get(bo).copied().unwrap_or(0) + 1;
        let returns = (bo + 1..close.saturating_sub(1)).any(|j| {
            self.toks[j].is_ident("return") && self.depth.get(j).copied() == Some(body_depth)
        });
        if !returns {
            return;
        }
        let li = parse_expr(self.toks, cmp.lhs.0, cmp.lhs.1);
        let ri = parse_expr(self.toks, cmp.rhs.0, cmp.rhs.1);
        // Negations: !(a < b) is b <= a, !(a <= b) is b < a, and so on.
        let (lhs, rhs, strict) = match cmp.op {
            CmpOp::Lt => (ri.poly, li.poly, false),
            CmpOp::Le => (ri.poly, li.poly, true),
            CmpOp::Gt => (li.poly, ri.poly, false),
            CmpOp::Ge => (li.poly, ri.poly, true),
            CmpOp::Eq | CmpOp::Ne => return,
        };
        self.facts.push(Fact {
            lhs,
            rhs,
            strict,
            start: close - 1,
            end: self.encl(),
            line: self.toks[i].line,
            text: format!("!({})", render(self.toks, a, b)),
            loop_guard_of: None,
        });
    }

    fn handle_let(&mut self, i: usize) {
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = self.toks.get(j) else {
            return;
        };
        if name_tok.kind != TokenKind::Ident {
            // Destructuring pattern: every bound ident is a rebinding.
            let mut k = j;
            while k < self.body_end
                && !self.toks[k].is_punct('=')
                && !self.toks[k].is_punct(';')
            {
                if self.toks[k].kind == TokenKind::Ident && !self.toks[k].is_ident("mut") {
                    self.kills.push((self.toks[k].text.clone(), i));
                }
                k += 1;
            }
            return;
        }
        let var = name_tok.text.clone();
        // Scan past an optional type annotation to `=` (or bail at `;`).
        let mut k = j + 1;
        let mut eq = None;
        while k < self.body_end {
            let t = &self.toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                k = skip_group(self.toks, k);
                continue;
            }
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('=') && !self.toks.get(k + 1).is_some_and(|n| n.is_punct('=')) {
                eq = Some(k);
                break;
            }
            k += 1;
        }
        self.kills.push((var.clone(), i));
        let Some(eq) = eq else { return };
        // The statement ends at the next top-level `;`.
        let mut semi = eq + 1;
        while semi < self.body_end {
            let t = &self.toks[semi];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                semi = skip_group(self.toks, semi);
                continue;
            }
            if t.is_punct(';') {
                break;
            }
            semi += 1;
        }
        if semi >= self.body_end {
            return;
        }
        let info = parse_expr(self.toks, eq + 1, semi);
        let end = self.encl();
        self.defs.push(Def {
            var: var.clone(),
            poly: info.poly,
            has_arith: !info.arith.is_empty() || !info.subs.is_empty(),
            rhs: (eq + 1, semi),
            start: semi,
            end,
            line: self.toks[i].line,
        });
        // `.clamp(lo, hi)` in the binding seeds interval facts on the var.
        let mut c = eq + 1;
        while c + 2 < semi {
            if self.toks[c].is_punct('.')
                && self.toks[c + 1].is_ident("clamp")
                && self.toks[c + 2].is_punct('(')
            {
                let close = skip_group(self.toks, c + 2);
                let args = split_args(self.toks, c + 3, close.saturating_sub(1));
                if args.len() == 2 {
                    let lo_p = parse_expr(self.toks, args[0].0, args[0].1).poly;
                    let hi_p = parse_expr(self.toks, args[1].0, args[1].1).poly;
                    let text = render(self.toks, eq + 1, semi);
                    let line = self.toks[i].line;
                    for (l, r) in [
                        (lo_p, Poly::atom(var.clone())),
                        (Poly::atom(var.clone()), hi_p),
                    ] {
                        self.facts.push(Fact {
                            lhs: l,
                            rhs: r,
                            strict: false,
                            start: semi,
                            end,
                            line,
                            text: text.clone(),
                            loop_guard_of: None,
                        });
                    }
                }
                break;
            }
            c += 1;
        }
    }

    /// Detects plain (`v = …`), compound (`v += …`), and shift-compound
    /// (`v <<= …`) assignments.
    fn detect_kill(&mut self, i: usize) {
        let next = |k: usize| self.toks.get(i + k).filter(|_| i + k < self.body_end);
        let Some(n1) = next(1) else { return };
        let prev_blocks = i > 0
            && self.toks[i - 1].kind == TokenKind::Punct
            && matches!(
                self.toks[i - 1].text.as_str(),
                "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
            );
        let plain = n1.is_punct('=')
            && !next(2).is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
            && !prev_blocks;
        let compound = n1.kind == TokenKind::Punct
            && matches!(n1.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
            && next(2).is_some_and(|t| t.is_punct('='))
            // `a && b = …` never parses; exclude `&&`/`||` pairs anyway.
            && !(n1.is_punct('&') && next(2).is_some_and(|t| t.is_punct('&')))
            && !(n1.is_punct('|') && next(2).is_some_and(|t| t.is_punct('|')));
        let shift = n1.kind == TokenKind::Punct
            && matches!(n1.text.as_str(), "<" | ">")
            && next(2).is_some_and(|t| t.text == n1.text && t.kind == TokenKind::Punct)
            && next(3).is_some_and(|t| t.is_punct('='));
        if plain || compound || shift {
            self.kills.push((self.toks[i].text.clone(), i));
        }
    }

    fn finish(mut self) -> FnFlow {
        // Assignments truncate earlier facts/defs that mention the var.
        for (v, ki) in &self.kills {
            for fa in &mut self.facts {
                if fa.start < *ki && *ki < fa.end && (fa.lhs.mentions(v) || fa.rhs.mentions(v))
                {
                    fa.end = *ki;
                }
            }
            for d in &mut self.defs {
                if d.start < *ki && *ki < d.end && (d.var == *v || d.poly.mentions(v)) {
                    d.end = *ki;
                }
            }
        }
        // A fact established before a loop that reassigns a mentioned var
        // does not survive into the loop body (any iteration after the
        // first sees a changed value) — except the loop's own guard,
        // which re-establishes itself every iteration.
        for &(bo, bc) in &self.loops {
            let assigned: Vec<&String> = self
                .kills
                .iter()
                .filter(|(_, ki)| bo < *ki && *ki < bc)
                .map(|(v, _)| v)
                .collect();
            if assigned.is_empty() {
                continue;
            }
            for fa in &mut self.facts {
                if fa.loop_guard_of == Some(bo) {
                    continue;
                }
                if fa.start < bo
                    && bo < fa.end
                    && assigned
                        .iter()
                        .any(|v| fa.lhs.mentions(v) || fa.rhs.mentions(v))
                {
                    fa.end = bo;
                }
            }
            for d in &mut self.defs {
                if d.start < bo
                    && bo < d.end
                    && assigned.iter().any(|v| d.var == **v || d.poly.mentions(v))
                {
                    d.end = bo;
                }
            }
        }
        FnFlow {
            facts: self.facts,
            defs: self.defs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn model(src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("flow.rs"), src)
    }

    fn flow_of(m: &FileModel, name: &str) -> FnFlow {
        let f = m.fns.iter().find(|f| f.name == name).expect("fn");
        FnFlow::analyze(m, f)
    }

    /// Locates the argument range and use position of the first
    /// `.add(…)` after token `from`.
    fn add_site(m: &FileModel, from: usize) -> (usize, usize, usize) {
        let i = (from..m.tokens.len())
            .find(|&i| m.tokens[i].is_ident("add") && m.tokens[i + 1].is_punct('('))
            .expect("add site");
        let close = m.skip_group(i + 1);
        (i + 2, close - 1, i)
    }

    #[test]
    fn assert_fact_discharges_offset() {
        let m = model(
            "fn f(xs: &[f64], at: usize) {\n\
             debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);\n\
             let _p = unsafe { *xs.as_ptr().add(at) };\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let (lo, hi, pos) = add_site(&m, 0);
        let proof = fl
            .discharge_index(&m, lo, hi, pos, "xs")
            .expect("discharged");
        assert!(
            proof.witness.contains("at <= xs.len() - 2"),
            "{}",
            proof.witness
        );
    }

    #[test]
    fn wrong_variable_does_not_discharge() {
        let m = model(
            "fn f(xs: &[f64], at: usize, other: usize) {\n\
             debug_assert!(xs.len() >= 2 && other <= xs.len() - 2);\n\
             let _p = unsafe { *xs.as_ptr().add(at) };\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let (lo, hi, pos) = add_site(&m, 0);
        let err = fl.discharge_index(&m, lo, hi, pos, "xs").unwrap_err();
        assert!(err.contains("at"), "{err}");
    }

    #[test]
    fn while_guard_with_def_substitution_discharges() {
        let m = model(
            "fn f(a: &[f64]) {\n\
             let d = a.len();\n\
             let mut dim = 0;\n\
             while dim + 4 <= d {\n\
             let _p = unsafe { *a.as_ptr().add(dim) };\n\
             dim += 4;\n\
             }\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let (lo, hi, pos) = add_site(&m, 0);
        let proof = fl
            .discharge_index(&m, lo, hi, pos, "a")
            .expect("discharged");
        assert!(proof.witness.contains("dim + 4 <= d"), "{}", proof.witness);
    }

    #[test]
    fn guard_fact_dies_at_reassignment() {
        let m = model(
            "fn f(a: &[f64]) {\n\
             let mut dim = 0;\n\
             while dim + 4 <= a.len() {\n\
             dim += 4;\n\
             let _p = unsafe { *a.as_ptr().add(dim) };\n\
             }\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let (lo, hi, pos) = add_site(&m, 0);
        assert!(fl.discharge_index(&m, lo, hi, pos, "a").is_err());
    }

    #[test]
    fn inverted_guard_with_return_dominates_the_tail() {
        let m = model(
            "fn f(xs: &[f64], t: usize) {\n\
             if t >= xs.len() {\n\
             return;\n\
             }\n\
             let _p = unsafe { *xs.as_ptr().add(t) };\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let (lo, hi, pos) = add_site(&m, 0);
        let proof = fl
            .discharge_index(&m, lo, hi, pos, "xs")
            .expect("discharged");
        assert!(proof.witness.starts_with("!("), "{}", proof.witness);
    }

    #[test]
    fn for_range_interval_bounds_arithmetic() {
        let m = model(
            "fn f(a: &[f64], d: usize) {\n\
             let mut dim = 0;\n\
             while dim + 16 <= d {\n\
             for c in 0..4 {\n\
             let at = dim + 4 * c;\n\
             use_site(at);\n\
             }\n\
             dim += 16;\n\
             }\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        // Prove the def's rhs `dim + 4 * c` at the use site.
        let eq = m.tokens.iter().position(|t| t.is_ident("at")).expect("at");
        let semi = (eq..m.tokens.len())
            .find(|&i| m.tokens[i].is_punct(';'))
            .expect("semi");
        let use_pos = m
            .tokens
            .iter()
            .position(|t| t.is_ident("use_site"))
            .expect("use");
        fl.prove_arith(&m, eq + 2, semi, use_pos, None)
            .expect("bounded by guard + for interval");
    }

    #[test]
    fn legacy_add_k_guard_fails_prove_arith_but_rewrite_passes() {
        let m = model(
            "fn legacy(xs: &[f64], at: usize) {\n\
             debug_assert!(at + 2 <= xs.len());\n\
             }\n\
             fn rewritten(xs: &[f64], at: usize) {\n\
             debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);\n\
             }\n",
        );
        // Legacy: the `at + 2` inside the assert has no other cover.
        let fl = flow_of(&m, "legacy");
        let f = m.fns.iter().find(|f| f.name == "legacy").unwrap();
        let open = (f.body_start..f.body_end)
            .find(|&i| m.tokens[i].is_punct('('))
            .unwrap();
        let close = m.skip_group(open);
        let conjs = conjunct_ranges(&m.tokens, open + 1, close - 1).unwrap();
        let (a, b) = conjs[0];
        let cmp = find_cmp(&m.tokens, a, b).unwrap();
        assert!(fl
            .prove_arith(&m, cmp.lhs.0, cmp.lhs.1, b, Some(a))
            .is_err());

        // Rewritten: conjunct 1 proves conjunct 2's subtraction.
        let fl = flow_of(&m, "rewritten");
        let f = m.fns.iter().find(|f| f.name == "rewritten").unwrap();
        let open = (f.body_start..f.body_end)
            .find(|&i| m.tokens[i].is_punct('('))
            .unwrap();
        let close = m.skip_group(open);
        let conjs = conjunct_ranges(&m.tokens, open + 1, close - 1).unwrap();
        assert_eq!(conjs.len(), 2);
        for &(a, b) in &conjs {
            let cmp = find_cmp(&m.tokens, a, b).unwrap();
            for (lo, hi) in [cmp.lhs, cmp.rhs] {
                fl.prove_arith(&m, lo, hi, b, Some(a))
                    .expect("overflow-safe form");
            }
        }
    }

    #[test]
    fn clamp_seeds_an_upper_bound() {
        let m = model(
            "fn f(lanes: usize, pad: usize) {\n\
             let w = (lanes / pad * pad).clamp(16, 4096);\n\
             let x = 4 * w;\n\
             use_site(x);\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let use_pos = m
            .tokens
            .iter()
            .position(|t| t.is_ident("use_site"))
            .expect("use");
        // `4 * w` is bounded because clamp pins w <= 4096.
        let eq = m.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let semi = (eq..m.tokens.len())
            .find(|&i| m.tokens[i].is_punct(';'))
            .unwrap();
        fl.prove_arith(&m, eq + 2, semi, use_pos, None)
            .expect("clamped var is bounded");
    }

    #[test]
    fn loop_entry_truncates_prior_facts_about_reassigned_vars() {
        let m = model(
            "fn f(a: &[f64]) {\n\
             let mut t = 0;\n\
             debug_assert!(t < a.len());\n\
             while keep_going() {\n\
             let _p = unsafe { *a.as_ptr().add(t) };\n\
             t += 1;\n\
             }\n\
             }\n",
        );
        let fl = flow_of(&m, "f");
        let (lo, hi, pos) = add_site(&m, 0);
        // The assert held on entry but t changes inside the loop.
        assert!(fl.discharge_index(&m, lo, hi, pos, "a").is_err());
    }

    #[test]
    fn poly_display_and_arith() {
        let p = Poly::atom("dim").add(&Poly::constant(4));
        assert_eq!(p.to_string(), "4 + dim");
        let q = Poly::atom("w").mul(&Poly::constant(3)).unwrap();
        assert_eq!(q.sub(&Poly::atom("w")).to_string(), "2*w");
        assert_eq!(Poly::constant(0).to_string(), "0");
        assert!(Poly::atom("a.len()").mentions("a"));
        assert!(!Poly::atom("ab").mentions("a"));
    }
}

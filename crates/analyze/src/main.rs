//! `hdsj-analyze` — the static invariant checker's standalone CLI.
//!
//! ```text
//! cargo run -p hdsj-analyze -- check [--root DIR] [--format human|jsonl|sarif] [--rules r7,r8]
//! cargo run -p hdsj-analyze -- list-rules
//! cargo run -p hdsj-analyze -- explain <rule>
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 deny-level findings,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(failed) => {
            if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("hdsj-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    if cmd == "list-rules" {
        print!("{}", hdsj_analyze::render_rule_list());
        return Ok(false);
    }
    if cmd == "explain" {
        let rule = args
            .get(1)
            .ok_or("explain needs a rule (e.g. r10 or lifecycle_poll)")?;
        print!("{}", hdsj_analyze::render_explain(rule)?);
        return Ok(false);
    }
    if cmd != "check" {
        return Err(format!("unknown command {cmd:?}\n{}", usage()));
    }
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut rules: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                // `jsonl` names what the output actually is; `json` stays
                // as the original spelling.
                Some("json") | Some("jsonl") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => return Err(format!("--format {other:?}: expected human|jsonl|sarif")),
            },
            "--rules" => {
                rules = Some(
                    it.next()
                        .ok_or("--rules needs a value (e.g. r7,r8)")?
                        .clone(),
                );
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    let report = match &rules {
        Some(spec) => hdsj_analyze::check_workspace_filtered(&root, spec)?,
        None => hdsj_analyze::check_workspace(&root).map_err(|e| e.to_string())?,
    };
    match format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
        Format::Sarif => print!("{}", report.render_sarif()),
    }
    Ok(report.failed())
}

fn usage() -> String {
    "usage: hdsj-analyze check [--root DIR] [--format human|jsonl|sarif] [--rules r7,r8] | list-rules | explain <rule>"
        .to_string()
}

//! A light structural pass over the token stream.
//!
//! The rules don't need a syntax tree — they need to know four structural
//! facts about every token: its brace depth, whether it lives in test-only
//! code, which function body encloses it, and whether a suppression
//! comment covers its line. [`FileModel`] precomputes exactly that.

use crate::lexer::{self, Comment, Token, TokenKind};
use std::path::PathBuf;

/// A function item: its name and the token range of its body.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    /// Token index of the opening `{` of the body.
    pub body_start: usize,
    /// Token index one past the matching `}`.
    pub body_end: usize,
}

/// Lexed file plus derived structure; the unit every rule consumes.
#[derive(Debug)]
pub struct FileModel {
    /// Path as reported in diagnostics (workspace-relative when walked).
    pub path: PathBuf,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Brace depth *before* each token.
    pub depth: Vec<u32>,
    /// Line ranges (inclusive) of items gated to test builds:
    /// `#[cfg(test)]` items and `#[test]` functions.
    pub test_ranges: Vec<(u32, u32)>,
    pub fns: Vec<FnSpan>,
}

impl FileModel {
    pub fn parse(path: PathBuf, src: &str) -> FileModel {
        let lexer::Lexed { tokens, comments } = lexer::lex(src);
        let depth = compute_depths(&tokens);
        let test_ranges = find_test_ranges(&tokens);
        let fns = find_fns(&tokens);
        FileModel {
            path,
            tokens,
            comments,
            depth,
            test_ranges,
            fns,
        }
    }

    /// True when `line` belongs to a test-only item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when a comment `allow(hdsj::<rule>)` covers `line` (same line
    /// or up to two lines above — one for the comment itself, one for an
    /// attribute between comment and expression).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        let needle = format!("allow(hdsj::{rule})");
        self.comments.iter().any(|c| {
            c.text.contains(&needle)
                && (c.line == line || (c.end_line < line && c.end_line + 2 >= line))
        })
    }

    /// Index one past the group closed by the delimiter opened at `open`
    /// (`(`, `[` or `{`). Returns `tokens.len()` when unbalanced.
    pub fn skip_group(&self, open: usize) -> usize {
        skip_group(&self.tokens, open)
    }

    /// The function body (if any) containing token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_start <= i && i < f.body_end)
            .max_by_key(|f| f.body_start)
    }
}

fn compute_depths(tokens: &[Token]) -> Vec<u32> {
    let mut depth = 0u32;
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        out.push(depth);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
        }
    }
    out
}

fn matching_close(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

pub(crate) fn skip_group(tokens: &[Token], open: usize) -> usize {
    let Some(tok) = tokens.get(open) else {
        return tokens.len();
    };
    let open_c = tok.text.chars().next().unwrap_or('(');
    let close_c = matching_close(open_c);
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_c) {
            depth += 1;
        } else if tokens[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// True when the attribute body tokens mark the following item as
/// test-only. `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` qualify;
/// `#[cfg(not(test))]` and unrelated attributes do not.
fn is_test_attr(body: &[Token]) -> bool {
    let has_test = body.iter().any(|t| t.is_ident("test"));
    let has_not = body.iter().any(|t| t.is_ident("not"));
    has_test && !has_not
}

fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![…]`: applies to the enclosing scope, never a
        // test marker for the next item.
        let mut j = i + 1;
        let inner = tokens.get(j).is_some_and(|t| t.is_punct('!'));
        if inner {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_end = skip_group(tokens, j);
        if inner || !is_test_attr(&tokens[j + 1..attr_end.saturating_sub(1)]) {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end;
        while tokens.get(k).is_some_and(|t| t.is_punct('#'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            k = skip_group(tokens, k + 1);
        }
        // The item extends to its `{…}` body or to a terminating `;`,
        // whichever comes first.
        let start_line = tokens[i].line;
        let mut end = k;
        while end < tokens.len() {
            if tokens[end].is_punct(';') {
                break;
            }
            if tokens[end].is_punct('{') {
                end = skip_group(tokens, end) - 1;
                break;
            }
            end += 1;
        }
        let end_line = tokens
            .get(end.min(tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(start_line);
        ranges.push((start_line, end_line));
        i = end + 1;
    }
    ranges
}

fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn")
            && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // The body is the first `{` after the signature; a `;` first
            // means a bodiless declaration (trait method, extern). `(…)`
            // and `[…]` groups are skipped whole so a `;` inside an array
            // type (`-> [f64; 4]`) does not truncate the signature.
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                if tokens[j].is_punct('(') || tokens[j].is_punct('[') {
                    j = skip_group(tokens, j);
                    continue;
                }
                if tokens[j].is_punct(';') {
                    break;
                }
                if tokens[j].is_punct('{') {
                    body = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(start) = body {
                let end = skip_group(tokens, start);
                fns.push(FnSpan {
                    name,
                    line,
                    body_start: start,
                    body_end: end,
                });
                // Continue scanning *inside* the body too (closures and
                // nested fns) — just advance past the `fn` keyword.
            }
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn cfg_test_module_is_a_test_range() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n";
        let m = model(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn test_fn_attribute_marks_only_that_fn() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn lib() {}\n";
        let m = model(src);
        assert!(m.is_test_line(3));
        assert!(!m.is_test_line(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let m = model("#[cfg(not(test))]\nfn live() { x(); }\n");
        assert!(!m.is_test_line(2));
    }

    #[test]
    fn inner_attr_is_ignored() {
        let m = model("#![cfg_attr(not(test), warn(clippy::all))]\nfn live() {}\n");
        assert!(!m.is_test_line(2));
    }

    #[test]
    fn fn_bodies_are_found() {
        let m = model("fn a() { let x = 1; }\nimpl T { fn b(&self) -> u32 { 2 } }\n");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn array_types_in_signatures_do_not_truncate_the_fn() {
        let m = model("fn spill(v: u64) -> [f64; 4] { mark(); [0.0; 4] }\n");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["spill"], "`;` inside `[f64; 4]` is not an end");
        let mark = m.tokens.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(m.enclosing_fn(mark).map(|f| f.name.as_str()), Some("spill"));
    }

    #[test]
    fn suppression_comments_cover_nearby_lines() {
        let src = "// allow(hdsj::no_panic)\nx.unwrap();\ny.unwrap();\n";
        let m = model(src);
        assert!(m.suppressed("no_panic", 2));
        assert!(m.suppressed("no_panic", 3), "two-line reach");
        assert!(!m.suppressed("lock_order", 2), "rule name must match");
    }

    #[test]
    fn enclosing_fn_resolves_nesting() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let m = model(src);
        let mark = m
            .tokens
            .iter()
            .position(|t| t.is_ident("mark"))
            .expect("mark token");
        assert_eq!(m.enclosing_fn(mark).map(|f| f.name.as_str()), Some("inner"));
    }
}

//! R1 `no_panic` — no `unwrap`/`expect`/`panic!`/`unreachable!` (or
//! `todo!`/`unimplemented!`) in non-test library code.
//!
//! Library code must surface failures as typed `Error` values: the chaos
//! suite (PR 2) injects disk faults into every layer, and a single stray
//! `.unwrap()` turns a recoverable `Error::Storage` into a process abort.
//! Test code (`#[cfg(test)]` items, `#[test]` functions) is exempt —
//! panicking is how tests fail.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;

pub const RULE: &str = "no_panic";

/// Methods that panic on the error/none path.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
/// Macros that unconditionally panic when reached.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        let line = tok.line;
        if file.is_test_line(line) {
            continue;
        }
        let as_method = PANICKY_METHODS.contains(&tok.text.as_str())
            && i > 0
            && file.tokens[i - 1].is_punct('.')
            && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let as_macro = PANICKY_MACROS.contains(&tok.text.as_str())
            && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if !(as_method || as_macro) {
            continue;
        }
        if file.suppressed(RULE, line) {
            continue;
        }
        let what = if as_macro {
            format!("`{}!`", tok.text)
        } else {
            format!("`.{}()`", tok.text)
        };
        out.push(Diagnostic {
            rule: RULE,
            level: Level::Deny,
            path: file.path.clone(),
            line,
            message: format!(
                "{what} in non-test code: return a typed `Error` instead \
                 (or annotate with `// allow(hdsj::{RULE})` and justify)"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from("t.rs"), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_macros_outside_tests() {
        let d = run("fn f() { x.unwrap(); panic!(\"no\"); }");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn spares_tests_and_lookalikes() {
        let d = run("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n\
             fn g() { x.unwrap_or(0); x.unwrap_or_else(f); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suppression_comment_silences() {
        let d = run(
            "fn f() {\n    // allow(hdsj::no_panic): chaos failpoint\n    panic!(\"x\");\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn strings_and_docs_do_not_count() {
        let d = run("/// call .unwrap() freely\nfn f() { let s = \"panic!\"; }");
        assert!(d.is_empty(), "{d:?}");
    }
}

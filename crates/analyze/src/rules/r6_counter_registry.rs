//! R6 `counter_registry` — obs counter/gauge/histogram names referenced
//! by string literal must exist in the registry
//! (`crates/obs/src/names.rs`).
//!
//! Metric names are stringly-typed at the call sites
//! (`tracer.counter("msj.refine.pairs")`,
//! `tracer.histogram("pool.read_ns")`) and again in tests and the trace
//! reporter (`sink.counter_value("pool.hits")`,
//! `sink.hist_snapshot("exec.chunk_ns")`). A typo on either side
//! silently records (or asserts on) a counter nobody else writes. The
//! registry file is the single source of truth; this rule cross-checks
//! every literal reference against it. Dynamically built names
//! (`format!("{prefix}.{field}")`) are out of lexical reach and are
//! skipped — keep their parts in the registry by convention.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;
use std::collections::BTreeSet;

pub const RULE: &str = "counter_registry";

/// Methods whose first string-literal argument is a metric name.
const NAME_SINKS: &[&str] = &[
    "counter",
    "counter_value",
    "gauge",
    "histogram",
    "hist_snapshot",
];

/// Extracts the registry: every string literal in the names file.
pub fn load_registry(names_file: &FileModel) -> BTreeSet<String> {
    names_file
        .tokens
        .iter()
        .filter(|t| t.kind == crate::lexer::TokenKind::Str)
        .filter_map(|t| unquote(&t.text))
        .collect()
}

/// Strips the quotes from a plain string literal token (`"x"` → `x`);
/// raw/byte strings in the registry are not expected.
fn unquote(text: &str) -> Option<String> {
    text.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
}

pub fn check(file: &FileModel, registry: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_sink = NAME_SINKS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_sink {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        if arg.kind != crate::lexer::TokenKind::Str {
            continue; // dynamic name: out of lexical reach
        }
        let Some(name) = unquote(&arg.text) else {
            continue;
        };
        if registry.contains(&name) {
            continue;
        }
        let line = arg.line;
        // Unit tests may exercise the tracer with synthetic names.
        if file.is_test_line(line) || file.suppressed(RULE, line) {
            continue;
        }
        out.push(Diagnostic {
            rule: RULE,
            level: Level::Deny,
            path: file.path.clone(),
            line,
            message: format!(
                "metric name {name:?} is not in the registry \
                 (crates/obs/src/names.rs): add it there or fix the typo"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn registry_of(src: &str) -> BTreeSet<String> {
        load_registry(&FileModel::parse(PathBuf::from("names.rs"), src))
    }

    fn run(src: &str, reg: &BTreeSet<String>) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from("t.rs"), src);
        let mut out = Vec::new();
        check(&m, reg, &mut out);
        out
    }

    #[test]
    fn registered_names_pass_and_typos_fail() {
        let reg = registry_of("pub const A: &str = \"msj.refine.pairs\";");
        let ok = run(
            "fn f(t: &Tracer) { t.counter(\"msj.refine.pairs\").incr(); }",
            &reg,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(
            "fn f(t: &Tracer) { t.counter(\"msj.refine.pair\").incr(); }",
            &reg,
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("msj.refine.pair"));
    }

    #[test]
    fn dynamic_names_are_skipped() {
        let reg = registry_of("pub const A: &str = \"pool.reads\";");
        let d = run(
            "fn f(t: &Tracer) { t.counter(format!(\"{p}.reads\")).incr(); }",
            &reg,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn counter_value_and_gauge_are_checked() {
        let reg = registry_of("pub const A: &str = \"pool.hits\";");
        let d = run(
            "fn f(s: &MemorySink, t: &Tracer) { s.counter_value(\"pool.hit\"); \
             t.gauge(\"pool.hits\", 0.5); }",
            &reg,
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn histogram_and_hist_snapshot_are_checked() {
        let reg = registry_of("pub const A: &str = \"pool.read_ns\";");
        let ok = run(
            "fn f(t: &Tracer, s: &MemorySink) { t.histogram(\"pool.read_ns\").record(1); \
             s.hist_snapshot(\"pool.read_ns\"); }",
            &reg,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(
            "fn f(t: &Tracer, s: &MemorySink) { t.histogram(\"pool.read_latency\").record(1); \
             s.hist_snapshot(\"pool.reads_ns\"); }",
            &reg,
        );
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[0].message.contains("pool.read_latency"));
        assert!(bad[1].message.contains("pool.reads_ns"));
    }
}

//! R15 `unchecked_arith` — integer arithmetic feeding a raw-pointer
//! offset in `core::simd` must be provably non-overflowing under the
//! dataflow engine's propagated intervals, or carry a justified
//! `// BOUND:` comment.
//!
//! Three obligation sources:
//!
//! 1. The offset expression of a raw site (`.as_ptr().add(e)`,
//!    `.get_unchecked(e)`): a compound `e` is proved at the use; a plain
//!    `e` bound by a `let` with arithmetic is proved at its definition
//!    (the deny points at the `let`, where the wrap would happen).
//! 2. Arguments passed into same-file *sink helpers* — functions whose
//!    body offsets a raw pointer by one of their parameters (`load2`,
//!    `load4`). The unchecked arithmetic happens at the call site, before
//!    the helper's own `debug_assert` can see it.
//! 3. Arithmetic *inside* `assert!`/`debug_assert!` conditions: a bounds
//!    check of the shape `at + k <= xs.len()` wraps before it checks in
//!    release-mode arithmetic, so the check itself must be overflow-safe
//!    (`xs.len() >= k && at <= xs.len() - k`). An assert's own conjunct
//!    cannot discharge itself; earlier conjuncts can.
//!
//! Escape hatch: a `// BOUND: <why>` comment on the flagged line (or up
//! to two lines above) records a justified bound the engine cannot see —
//! e.g. "dims × width is allocated, so the product fits usize".

use super::r13_unsafe_bounds::raw_offset_sites;
use super::Analysis;
use crate::dataflow::{conjunct_ranges, find_cmp, render, split_args, FnFlow};
use crate::diag::{Diagnostic, Level};
use crate::lexer::TokenKind;
use crate::parse::FileModel;
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "unchecked_arith";

/// Path fragment selecting the unsafe SIMD layer.
const SCOPE: &str = "core/src/simd";

/// True when a `// BOUND:` justification covers `line` (same reach as the
/// `allow(hdsj::…)` suppression syntax).
fn bound_justified(file: &FileModel, line: u32) -> bool {
    file.comments.iter().any(|c| {
        c.text.contains("BOUND:")
            && (c.line == line || (c.end_line < line && c.end_line + 2 >= line))
    })
}

/// True when `line` needs no diagnostic (test code, suppression, BOUND).
fn exempt(file: &FileModel, line: u32) -> bool {
    file.is_test_line(line) || file.suppressed(RULE, line) || bound_justified(file, line)
}

fn flow_for<'m>(
    flows: &'m mut BTreeMap<usize, FnFlow>,
    file: &FileModel,
    body_start: usize,
) -> Option<&'m FnFlow> {
    let f = file.fns.iter().find(|f| f.body_start == body_start)?;
    Some(
        flows
            .entry(body_start)
            .or_insert_with(|| FnFlow::analyze(file, f)),
    )
}

pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for (fi, file) in a.files.iter().enumerate() {
        if !file.path.to_string_lossy().contains(SCOPE) {
            continue;
        }
        let toks = &file.tokens;
        let mut flows: BTreeMap<usize, FnFlow> = BTreeMap::new();
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        let push = |seen: &mut BTreeSet<(u32, String)>,
                    out: &mut Vec<Diagnostic>,
                    line: u32,
                    message: String| {
            if seen.insert((line, message.clone())) {
                out.push(Diagnostic {
                    rule: RULE,
                    level: Level::Deny,
                    path: file.path.clone(),
                    line,
                    message,
                });
            }
        };
        let sites = raw_offset_sites(file);

        // Obligation 1: raw-site offset expressions.
        for &(lo, hi, pos, _) in &sites {
            let line = toks[pos].line;
            if file.is_test_line(line) || file.suppressed(RULE, line) {
                continue;
            }
            let Some(f) = file.enclosing_fn(pos) else {
                continue;
            };
            let body_start = f.body_start;
            let Some(flow) = flow_for(&mut flows, file, body_start) else {
                continue;
            };
            let single_ident = hi - lo == 1 && toks[lo].kind == TokenKind::Ident;
            if single_ident {
                let Some(def) = flow.def_of(&toks[lo].text, pos) else {
                    continue;
                };
                if !def.has_arith || exempt(file, def.line) {
                    continue;
                }
                // Proved at the def site — that is where the wrap would
                // happen, before any later check can see the value.
                if let Err(e) = flow.prove_arith(file, def.rhs.0, def.rhs.1, def.rhs.1, None) {
                    push(
                        &mut seen,
                        out,
                        def.line,
                        format!(
                            "offset `{}` is defined by unchecked arithmetic: {e}; bound it or justify with `// BOUND:`",
                            toks[lo].text
                        ),
                    );
                }
            } else if !bound_justified(file, line) {
                if let Err(e) = flow.prove_arith(file, lo, hi, pos, None) {
                    push(
                        &mut seen,
                        out,
                        line,
                        format!("{e}; bound it or justify with `// BOUND:`"),
                    );
                }
            }
        }

        // Sink helpers: same-file fns whose raw-site offset is one of
        // their own parameters, by parameter position.
        let mut sink_params: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
        for sym in a.symbols.fns.iter().filter(|s| s.file == fi && !s.is_test) {
            for &(lo, hi, pos, _) in &sites {
                if pos <= sym.body_start || pos >= sym.body_end || hi - lo != 1 {
                    continue;
                }
                if toks[lo].kind != TokenKind::Ident {
                    continue;
                }
                if let Some(ix) = sym.params.iter().position(|p| p.name == toks[lo].text) {
                    sink_params.entry(&sym.name).or_default().insert(ix);
                }
            }
        }

        // Obligation 2: arithmetic arguments at sink-helper call sites.
        for i in 0..toks.len() {
            if toks[i].kind != TokenKind::Ident {
                continue;
            }
            let Some(ixs) = sink_params.get(toks[i].text.as_str()) else {
                continue;
            };
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if i > 0
                && (toks[i - 1].is_punct('.')
                    || toks[i - 1].is_punct(':')
                    || toks[i - 1].is_ident("fn"))
            {
                continue;
            }
            let line = toks[i].line;
            if file.is_test_line(line) || file.suppressed(RULE, line) {
                continue;
            }
            let Some(f) = file.enclosing_fn(i) else {
                continue;
            };
            let body_start = f.body_start;
            let close = file.skip_group(i + 1);
            let args = split_args(toks, i + 2, close.saturating_sub(1));
            let Some(flow) = flow_for(&mut flows, file, body_start) else {
                continue;
            };
            for &ix in ixs {
                let Some(&(alo, ahi)) = args.get(ix) else {
                    continue;
                };
                let single_ident = ahi - alo == 1 && toks[alo].kind == TokenKind::Ident;
                if single_ident {
                    let Some(def) = flow.def_of(&toks[alo].text, i) else {
                        continue;
                    };
                    if !def.has_arith || exempt(file, def.line) {
                        continue;
                    }
                    if let Err(e) =
                        flow.prove_arith(file, def.rhs.0, def.rhs.1, def.rhs.1, None)
                    {
                        push(
                            &mut seen,
                            out,
                            def.line,
                            format!(
                                "`{}` flows into sink `{}` but is defined by unchecked arithmetic: {e}; bound it or justify with `// BOUND:`",
                                toks[alo].text, toks[i].text
                            ),
                        );
                    }
                } else if !bound_justified(file, line) {
                    if let Err(e) = flow.prove_arith(file, alo, ahi, i, None) {
                        push(
                            &mut seen,
                            out,
                            line,
                            format!(
                                "argument `{}` to sink `{}`: {e}; bound it or justify with `// BOUND:`",
                                render(toks, alo, ahi),
                                toks[i].text
                            ),
                        );
                    }
                }
            }
        }

        // Obligation 3: arithmetic inside assert conditions.
        for i in 0..toks.len() {
            let is_assert = toks[i].is_ident("assert")
                || toks[i].is_ident("debug_assert")
                || toks[i].is_ident("assert_eq")
                || toks[i].is_ident("debug_assert_eq");
            if !is_assert
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            let line = toks[i].line;
            if exempt(file, line) {
                continue;
            }
            let Some(f) = file.enclosing_fn(i) else {
                continue;
            };
            let body_start = f.body_start;
            let close = file.skip_group(i + 2);
            let inner = (i + 3, close.saturating_sub(1));
            let Some(flow) = flow_for(&mut flows, file, body_start) else {
                continue;
            };
            let args = split_args(toks, inner.0, inner.1);
            let Some(&cond) = args.first() else {
                continue;
            };
            let conjuncts = if toks[i].text.ends_with("_eq") {
                // Both compared expressions, proved independently.
                args.iter().take(2).map(|&(a, b)| (a, b)).collect()
            } else {
                conjunct_ranges(toks, cond.0, cond.1).unwrap_or_default()
            };
            for &(ca, cb) in &conjuncts {
                let sides = match find_cmp(toks, ca, cb) {
                    Some(cmp) => vec![cmp.lhs, cmp.rhs],
                    None => vec![(ca, cb)],
                };
                for (slo, shi) in sides {
                    if let Err(e) = flow.prove_arith(file, slo, shi, cb, Some(ca)) {
                        push(
                            &mut seen,
                            out,
                            line,
                            format!(
                                "unchecked arithmetic inside a bounds check: {e}; use the overflow-safe form (`len >= k && i <= len - k`) or justify with `// BOUND:`"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![FileModel::parse(
            PathBuf::from("crates/core/src/simd/x.rs"),
            src,
        )];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn legacy_assert_form_denies_and_rewrite_passes() {
        let d = run("fn legacy(xs: &[f64], at: usize) -> f64 {\n\
             debug_assert!(at + 2 <= xs.len());\n\
             unsafe { *xs.as_ptr().add(at) }\n\
             }\n\
             fn rewritten(xs: &[f64], at: usize) -> f64 {\n\
             debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);\n\
             unsafe { *xs.as_ptr().add(at) }\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("bounds check"), "{d:?}");
    }

    #[test]
    fn arithmetic_def_feeding_an_offset_denies_at_the_let() {
        let d = run("fn gather(xs: &[f64], i: usize, stride: usize) -> f64 {\n\
             let o = i * stride;\n\
             unsafe { *xs.as_ptr().add(o) }\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2, "deny points at the let: {d:?}");
    }

    #[test]
    fn guard_bounded_arithmetic_passes() {
        let d = run("fn sum(a: &[f64]) -> f64 {\n\
             let d = a.len();\n\
             let mut dim = 0;\n\
             let mut acc = 0.0;\n\
             while dim + 4 <= d {\n\
             acc += unsafe { *a.as_ptr().add(dim + 2) };\n\
             dim += 4;\n\
             }\n\
             acc\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sink_helper_call_arguments_are_checked() {
        let d = run("fn load2(xs: &[f64], at: usize) -> f64 {\n\
             debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);\n\
             unsafe { *xs.as_ptr().add(at) }\n\
             }\n\
             fn column(data: &[f64], dim: usize, width: usize) -> f64 {\n\
             load2(data, dim * width)\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
        assert!(d[0].message.contains("sink `load2`"), "{d:?}");
    }

    #[test]
    fn bound_comment_justifies_the_arithmetic() {
        let d = run("fn load2(xs: &[f64], at: usize) -> f64 {\n\
             debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);\n\
             unsafe { *xs.as_ptr().add(at) }\n\
             }\n\
             fn column(data: &[f64], dim: usize, width: usize) -> f64 {\n\
             // BOUND: data is dims*width long, so the product fits usize.\n\
             load2(data, dim * width)\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }
}

//! R8 `determinism` — the modules whose output PR 4 promises is
//! byte-identical at every thread count must not consume any
//! nondeterministic source. Inside the result-producing paths of
//! `core::kernels`, `bruteforce`, `msj`, `sortmerge`, and `storage::sort`
//! this rule denies:
//!
//! * `HashMap` / `HashSet` — iteration order depends on `RandomState`'s
//!   per-process seed, so anything folded out of it varies run to run.
//!   Use `BTreeMap`/`BTreeSet` or sort before folding.
//! * `RandomState` — the seed source itself.
//! * `Instant::now` — wall-clock readings braided into results (or into
//!   tie-breaking) destroy replayability. Timing for *observability* is
//!   fine, but must be suppressed with a reason so the exemption is
//!   reviewable.
//! * `thread::current` / `ThreadId` — thread-identity-dependent branching
//!   makes output a function of scheduling.
//!
//! The scope is path-based: only files under the byte-deterministic
//! modules are checked, so the bench harness, CLI, and obs crate may keep
//! their clocks and maps.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;

pub const RULE: &str = "determinism";

/// Path fragments selecting the byte-deterministic modules. PR 7's
/// resume paths joined the list: lifecycle checkpoint decisions and
/// manifest replay must be a function of the recorded state alone, or a
/// resumed run diverges from the run it claims to continue. The SIMD
/// dispatch and kernel tiers joined with the vectorization PR: every
/// tier's output is part of the byte-determinism promise (results must
/// not depend on which tier ran), and the SoA tiling must not braid any
/// nondeterministic source into lane order. The batch refinement paths
/// (`core::refine`) joined with the dataflow PR: refinement reorders
/// candidate batches for SIMD, and its accept/reject stream feeds the
/// same byte-determinism promise.
const SCOPE: &[&str] = &[
    "crates/core/src/kernels",
    "crates/core/src/lifecycle",
    "crates/core/src/refine",
    "crates/core/src/simd",
    "crates/core/src/soa",
    "crates/bruteforce/src",
    "crates/msj/src",
    "crates/sortmerge/src",
    "crates/storage/src/manifest",
    "crates/storage/src/sort",
];

/// Bare identifiers that are nondeterministic wherever they appear.
const BANNED_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "HashMap iteration order is seeded per process; use BTreeMap or sort before folding",
    ),
    (
        "HashSet",
        "HashSet iteration order is seeded per process; use BTreeSet or sort before folding",
    ),
    (
        "RandomState",
        "RandomState is a per-process random seed source",
    ),
    (
        "ThreadId",
        "branching on thread identity makes output a function of scheduling",
    ),
];

/// `a::b` token sequences that are nondeterministic calls.
const BANNED_PATHS: &[(&str, &str, &str)] = &[
    (
        "Instant",
        "now",
        "wall-clock readings in a result-producing path destroy replayability",
    ),
    (
        "thread",
        "current",
        "branching on thread identity makes output a function of scheduling",
    ),
];

fn in_scope(file: &FileModel) -> bool {
    let p = file.path.to_string_lossy();
    SCOPE.iter().any(|frag| p.contains(frag))
}

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    if !in_scope(file) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let line = t.line;
        let mut hit: Option<(String, &str)> = None;
        if let Some(&(name, why)) = BANNED_IDENTS.iter().find(|(n, _)| t.is_ident(n)) {
            hit = Some((format!("`{name}`"), why));
        } else if let Some(&(head, tail, why)) = BANNED_PATHS.iter().find(|(head, tail, _)| {
            t.is_ident(head)
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(tail))
        }) {
            hit = Some((format!("`{head}::{tail}`"), why));
        }
        let Some((what, why)) = hit else { continue };
        if file.is_test_line(line) || file.suppressed(RULE, line) {
            continue;
        }
        out.push(Diagnostic {
            rule: RULE,
            level: Level::Deny,
            path: file.path.clone(),
            line,
            message: format!("{what} in a byte-deterministic module: {why}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from(path), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn hashmap_in_scope_is_flagged() {
        let d = run(
            "crates/msj/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d[0].message.contains("BTreeMap"), "{d:?}");
    }

    #[test]
    fn instant_now_in_scope_is_flagged() {
        let d = run(
            "crates/sortmerge/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("replayability"), "{d:?}");
    }

    #[test]
    fn thread_current_in_scope_is_flagged() {
        let d = run(
            "crates/bruteforce/src/x.rs",
            "fn f() { let id = std::thread::current().id(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let d = run(
            "crates/bench/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); let m = std::collections::HashMap::<u8, u8>::new(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suppression_with_reason_is_honoured() {
        let d = run(
            "crates/msj/src/x.rs",
            "fn f() {\n    // allow(hdsj::determinism): timing feeds obs only, never results.\n    let t = std::time::Instant::now();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run(
            "crates/msj/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let t = std::time::Instant::now(); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn simd_dispatch_and_soa_are_in_scope() {
        let d = run(
            "crates/core/src/simd/mod.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        let d = run("crates/core/src/soa.rs", "use std::collections::HashMap;");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn lifecycle_and_manifest_resume_paths_are_in_scope() {
        let d = run(
            "crates/core/src/lifecycle.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        let d = run(
            "crates/storage/src/manifest.rs",
            "use std::collections::HashMap;",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn refine_batch_paths_are_in_scope() {
        let d = run(
            "crates/core/src/refine.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn deterministic_collections_are_clean() {
        let d = run(
            "crates/msj/src/x.rs",
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

//! R14 `target_feature_gate` — vendor intrinsics stay behind their CPU
//! feature gates, and gated functions stay behind the runtime dispatcher.
//!
//! Two halves:
//!
//! 1. Every non-baseline vendor intrinsic (`_mm256_*`, `_mm512_*`) must be
//!    written inside a function carrying a matching
//!    `#[target_feature(enable = "…")]` attribute. Baseline features
//!    (`sse2` via `_mm_*`, `neon` via `v*q_*`) compile unconditionally on
//!    their targets and need no gate.
//! 2. Every `#[target_feature]`-gated function with a non-baseline feature
//!    may only be entered from (a) another function gated on the same
//!    feature, (b) a dispatch shim in `simd/mod.rs` that branches on the
//!    probed `level()`, or (c) a probe wrapper that asserts the
//!    `*_available()` runtime check and is itself called only from those
//!    shims. Only *precise* call-graph edges are trusted, refined by
//!    module plausibility (a by-name edge from `neon::f` to `avx2::f` is
//!    discarded), so the deny means a real unguarded entry path.

use super::Analysis;
use crate::diag::{Diagnostic, Level};
use crate::lexer::TokenKind;
use crate::parse::FileModel;
use std::collections::BTreeSet;

pub const RULE: &str = "target_feature_gate";

/// Features that are part of the compilation baseline for the targets the
/// workspace builds for; intrinsics and gates at this level are exempt.
const BASELINE: &[&str] = &["sse", "sse2", "neon"];

/// Gate features accepted for each intrinsic family. `None` marks a
/// baseline (or unrecognized) name.
fn required_features(name: &str) -> Option<&'static [&'static str]> {
    if name.starts_with("_mm512_") {
        Some(&["avx512f"])
    } else if name.starts_with("_mm256_") {
        Some(&["avx2", "avx"])
    } else {
        None
    }
}

/// Token ranges (inclusive) covered by `use` declarations. An intrinsic
/// name in an import list brings the symbol into scope; it is not a use
/// of the intrinsic, so half 1 skips these ranges.
fn use_ranges(file: &FileModel) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct(';') {
            if toks[j].is_punct('{') {
                j = file.skip_group(j);
            } else {
                j += 1;
            }
        }
        out.push((start, j));
        i = j + 1;
    }
    out
}

/// Per-file `mod name { … }` spans: (name, open token, one past close).
fn mod_spans(file: &FileModel) -> Vec<(String, usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("mod")
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            out.push((toks[i + 1].text.clone(), i + 2, file.skip_group(i + 2)));
        }
    }
    out
}

/// Innermost `mod` containing token `pos`, if any.
fn innermost_mod(mods: &[(String, usize, usize)], pos: usize) -> Option<&str> {
    mods.iter()
        .filter(|(_, o, c)| *o < pos && pos < *c)
        .max_by_key(|(_, o, _)| *o)
        .map(|(n, _, _)| n.as_str())
}

/// `gates[fn_id]` — the feature strings from `#[target_feature(enable=…)]`
/// attributes on each function.
fn gate_map(a: &Analysis) -> Vec<Vec<String>> {
    let mut gates = vec![Vec::new(); a.symbols.fns.len()];
    for (fi, f) in a.files.iter().enumerate() {
        let toks = &f.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
                i += 1;
                continue;
            }
            let end = f.skip_group(i + 1);
            let body = &toks[i + 2..end.saturating_sub(1).max(i + 2)];
            if body.first().is_some_and(|t| t.is_ident("target_feature")) {
                let feats: Vec<String> = body
                    .iter()
                    .filter(|t| t.kind == TokenKind::Str)
                    .map(|t| t.text.trim_matches('"').to_string())
                    .collect();
                let target = a
                    .symbols
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.file == fi && s.body_start >= end)
                    .min_by_key(|(_, s)| s.body_start)
                    .map(|(id, _)| id);
                if let Some(id) = target {
                    gates[id].extend(feats);
                }
            }
            i = end;
        }
    }
    gates
}

/// The `mod`-path qualifier written before a call (`x86::f(…)` → `x86`).
fn qualifier(file: &FileModel, name_tok: usize) -> Option<&str> {
    let toks = &file.tokens;
    (name_tok >= 3
        && toks[name_tok - 1].is_punct(':')
        && toks[name_tok - 2].is_punct(':')
        && toks[name_tok - 3].kind == TokenKind::Ident)
        .then(|| toks[name_tok - 3].text.as_str())
}

/// Module-plausibility refinement over a precise by-name edge: the written
/// path must actually be able to denote the target function. Kills the
/// false `neon::f` → `avx2::f` edges the name-based resolver produces.
fn plausible(
    a: &Analysis,
    mods: &[Vec<(String, usize, usize)>],
    caller: usize,
    site_tok: usize,
    target: usize,
) -> bool {
    let c = &a.symbols.fns[caller];
    let t = &a.symbols.fns[target];
    let t_mod = innermost_mod(&mods[t.file], t.body_start);
    match qualifier(&a.files[c.file], site_tok) {
        Some("crate") | Some("self") | Some("super") => true,
        Some(q) => match t_mod {
            Some(m) => q == m,
            None => {
                let stem = a.files[t.file]
                    .path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("");
                q == stem
            }
        },
        None => c.file == t.file && innermost_mod(&mods[c.file], site_tok) == t_mod,
    }
}

/// A dispatch shim: lives in `simd/mod.rs` and branches on the probed
/// `level()`.
fn is_shim(a: &Analysis, f: usize) -> bool {
    a.files[a.symbols.fns[f].file]
        .path
        .to_string_lossy()
        .ends_with("simd/mod.rs")
        && a.graph.calls_name(f, "level")
}

/// A probe wrapper: asserts a `*_available()` runtime check and is only
/// ever entered from dispatch shims (zero callers is fine).
fn is_probe(a: &Analysis, mods: &[Vec<(String, usize, usize)>], f: usize) -> bool {
    if !a.graph.calls[f]
        .iter()
        .any(|s| s.name.ends_with("_available"))
    {
        return false;
    }
    for f2 in 0..a.symbols.fns.len() {
        if a.symbols.fns[f2].is_test {
            continue;
        }
        for site in &a.graph.calls[f2] {
            if site.resolved
                && site.targets.contains(&f)
                && plausible(a, mods, f2, site.tok, f)
                && !is_shim(a, f2)
            {
                return false;
            }
        }
    }
    true
}

pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let gates = gate_map(a);
    let mods: Vec<_> = a.files.iter().map(mod_spans).collect();

    // Half 1: non-baseline intrinsics sit inside a matching gated fn.
    for (fi, f) in a.files.iter().enumerate() {
        let uses = use_ranges(f);
        for (ti, t) in f.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let Some(feats) = required_features(&t.text) else {
                continue;
            };
            if uses.iter().any(|&(lo, hi)| lo <= ti && ti <= hi) {
                continue;
            }
            if f.is_test_line(t.line) || f.suppressed(RULE, t.line) {
                continue;
            }
            let gated = f
                .enclosing_fn(ti)
                .and_then(|s| a.symbols.fn_id_at(fi, s.body_start))
                .is_some_and(|id| feats.iter().any(|ft| gates[id].iter().any(|g| g == ft)));
            if !gated {
                out.push(Diagnostic {
                    rule: RULE,
                    level: Level::Deny,
                    path: f.path.clone(),
                    line: t.line,
                    message: format!(
                        "intrinsic `{}` used outside a `#[target_feature(enable = \"{}\")]` function",
                        t.text, feats[0]
                    ),
                });
            }
        }
    }

    // Half 2: gated fns are entered only via gated callers, dispatch
    // shims, or probe wrappers.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for g in 0..a.symbols.fns.len() {
        if a.symbols.fns[g].is_test {
            continue;
        }
        let nb: Vec<&str> = gates[g]
            .iter()
            .map(|s| s.as_str())
            .filter(|ft| !BASELINE.contains(ft))
            .collect();
        if nb.is_empty() {
            continue;
        }
        #[allow(clippy::needless_range_loop)] // `f` indexes three tables
        for f in 0..a.symbols.fns.len() {
            if f == g || a.symbols.fns[f].is_test {
                continue;
            }
            for site in &a.graph.calls[f] {
                if !site.resolved || !site.targets.contains(&g) {
                    continue;
                }
                if !plausible(a, &mods, f, site.tok, g) {
                    continue;
                }
                let cfile = &a.files[a.symbols.fns[f].file];
                if cfile.is_test_line(site.line) || cfile.suppressed(RULE, site.line) {
                    continue;
                }
                let caller_gated = nb.iter().all(|ft| gates[f].iter().any(|c| c == ft));
                if caller_gated || is_shim(a, f) || is_probe(a, &mods, f) {
                    continue;
                }
                if !seen.insert((f, site.tok)) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: RULE,
                    level: Level::Deny,
                    path: cfile.path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` (gated on \"{}\") called from `{}`, which is neither gated, a `simd/mod.rs` dispatch shim, nor a probe wrapper behind one",
                        a.symbols.fns[g].name, nb[0], a.symbols.fns[f].name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(p, s)| FileModel::parse(PathBuf::from(p), s))
            .collect();
        let a = Analysis::build(&models);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn ungated_avx2_intrinsic_denies_and_gated_passes() {
        let d = run(&[(
            "crates/core/src/simd/x.rs",
            "fn bare() { unsafe { let _ = _mm256_setzero_pd(); } }\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn gated() { let _ = _mm256_setzero_pd(); }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("_mm256_setzero_pd"), "{d:?}");
    }

    #[test]
    fn imported_intrinsic_names_are_not_uses() {
        let d = run(&[(
            "crates/core/src/simd/x.rs",
            "use std::arch::x86_64::{__m256d, _mm256_setzero_pd};\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn gated() { let _ = _mm256_setzero_pd(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn baseline_sse2_intrinsics_need_no_gate() {
        let d = run(&[(
            "crates/core/src/simd/x.rs",
            "fn bare() { unsafe { let _ = _mm_setzero_pd(); } }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gated_fn_called_from_ungated_non_shim_denies() {
        let d = run(&[(
            "crates/core/src/simd/x.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             unsafe fn kern() { let _ = _mm256_setzero_pd(); }\n\
             fn sneaky() { unsafe { kern(); } }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("sneaky"), "{d:?}");
    }

    #[test]
    fn dispatch_shim_and_probe_wrapper_paths_are_allowed() {
        let d = run(&[(
            "crates/core/src/simd/mod.rs",
            "fn level() -> u8 { 2 }\n\
             fn avx2_available() -> bool { true }\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn kern() { let _ = _mm256_setzero_pd(); }\n\
             fn wrapper() {\n\
             debug_assert!(avx2_available());\n\
             unsafe { kern(); }\n\
             }\n\
             pub fn dispatch() { if level() == 2 { wrapper(); } }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cross_module_by_name_edges_are_not_plausible() {
        // `neon::f` must not count as an entry into `avx2::f`.
        let d = run(&[(
            "crates/core/src/simd/x.rs",
            "mod avx2 {\n\
             #[target_feature(enable = \"avx2\")]\n\
             pub unsafe fn f() { let _ = _mm256_setzero_pd(); }\n\
             }\n\
             mod neon {\n\
             pub fn f() {}\n\
             }\n\
             fn go() { neon::f(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}

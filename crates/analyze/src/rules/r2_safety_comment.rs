//! R2 `safety_comment` — every `unsafe` block or `unsafe fn` carries a
//! `// SAFETY:` comment within the three lines above it (or on the same
//! line). `unsafe impl`/`unsafe trait` declarations are judged at their
//! implementation sites, not the keyword, and are exempt here.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;

pub const RULE: &str = "safety_comment";

/// How many lines above the `unsafe` keyword a SAFETY comment may sit.
const REACH: u32 = 3;

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        // `unsafe impl Send …` / `unsafe trait` — marker declarations.
        if file
            .tokens
            .get(i + 1)
            .is_some_and(|t| t.is_ident("impl") || t.is_ident("trait"))
        {
            continue;
        }
        let line = tok.line;
        let documented = file.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && (c.line == line || (c.end_line < line && c.end_line + REACH >= line))
        });
        if documented || file.suppressed(RULE, line) {
            continue;
        }
        out.push(Diagnostic {
            rule: RULE,
            level: Level::Deny,
            path: file.path.clone(),
            line,
            message: "`unsafe` without a `// SAFETY:` comment explaining why the \
                      invariants hold"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from("t.rs"), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let d = run("fn f() { let x = unsafe { *p }; }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn safety_comment_satisfies() {
        let d = run("fn f() {\n    // SAFETY: p is valid for reads, checked above.\n    let x = unsafe { *p };\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_impl_is_exempt() {
        let d = run("unsafe impl Send for T {}");
        assert!(d.is_empty(), "{d:?}");
    }
}

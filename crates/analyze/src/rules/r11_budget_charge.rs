//! R11 `budget_charge` — storage functions that touch disk primitives
//! must charge the I/O budget, directly or through every caller.
//!
//! PR 7 added `LifecycleCtx::charge_io` / `charge_pages` so a query's
//! disk traffic is metered against its budget and its deadline check
//! fires on the I/O path. A raw `read_page`/`write_all` that bypasses
//! the charge makes the budget a lie: the query does unmetered I/O and
//! the accounting in `hdsj-analyze`'s own metrics under-reports. This is
//! inherently a *call-graph* property — the charge does not have to sit
//! next to the syscall; it is fine for `Pool::retrying` to charge once
//! and for everything below it to stay raw. The rule:
//!
//! * **Scope** — `crates/storage/src`. Only storage owns raw disk
//!   handles; other crates reach disk through the pool, which charges.
//! * **Primitives** — `read_page`, `write_page`, `read_exact_at`,
//!   `write_all_at`, `read_exact`, `write_all`, `read_to_end`,
//!   `sync_all` call sites.
//! * **Covered** — a function is covered when (a) its own transitive
//!   closure reaches `charge_io`/`charge_pages`, (b) it *is* a named
//!   boundary (`read_page`/`write_page`/`sync` — the `Disk` trait
//!   surface, whose callers charge by construction and which the pool
//!   wraps), or (c) every non-test caller is covered. A function with
//!   primitives and *no* callers at all is uncovered — dead entry
//!   points must still declare their budget story.
//!
//! Resume-time and bootstrap paths that legitimately run before a
//! budget is armed carry `// allow(hdsj::budget_charge): <reason>`.

use crate::diag::{Diagnostic, Level};
use crate::rules::Analysis;

pub const RULE: &str = "budget_charge";

const SCOPE: &str = "crates/storage/src";

/// Raw disk primitives whose call sites must be budget-covered.
const PRIMS: &[&str] = &[
    "read_page",
    "write_page",
    "read_exact_at",
    "write_all_at",
    "read_exact",
    "write_all",
    "read_to_end",
    "sync_all",
];

/// Functions that *are* the metered boundary: the `Disk` trait surface.
/// Their callers (the pool's `retrying`, the engine) charge by
/// construction, and charging inside each impl would double-count.
const BOUNDARY: &[&str] = &["read_page", "write_page", "sync"];

pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let n = a.symbols.fns.len();
    let mut covered: Vec<Option<bool>> = vec![None; n];
    for fid in 0..n {
        let f = &a.symbols.fns[fid];
        let file = &a.files[f.file];
        if f.is_test || !file.path.to_string_lossy().contains(SCOPE) {
            continue;
        }
        let prims: Vec<&crate::callgraph::CallSite> = a.graph.calls[fid]
            .iter()
            .filter(|s| PRIMS.contains(&s.name.as_str()))
            .collect();
        if prims.is_empty() {
            continue;
        }
        if is_covered(a, fid, &mut covered, &mut Vec::new()) {
            continue;
        }
        let witness = root_caller(a, fid, &mut covered);
        for s in &prims {
            if file.is_test_line(s.line) || file.suppressed(RULE, s.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line: s.line,
                message: format!(
                    "`{}` calls disk primitive `{}` but no path through it charges the \
                     I/O budget (reached from `{}` without `charge_io`/`charge_pages`); \
                     charge here, charge in every caller, or justify with \
                     `// allow(hdsj::budget_charge): <reason>`",
                    f.name, s.name, witness
                ),
            });
        }
    }
}

/// Does `fid` charge itself, sit on the metered boundary, or have only
/// covered callers? Memoized; on-stack queries (caller cycles) resolve
/// to `true` so a recursive pair whose entry charges stays accepted.
fn is_covered(
    a: &Analysis,
    fid: usize,
    memo: &mut Vec<Option<bool>>,
    stack: &mut Vec<usize>,
) -> bool {
    if let Some(v) = memo[fid] {
        return v;
    }
    if stack.contains(&fid) {
        return true;
    }
    let f = &a.symbols.fns[fid];
    let charges =
        |g: usize| a.graph.calls_name(g, "charge_io") || a.graph.calls_name(g, "charge_pages");
    let v = if a.graph.reaches(fid, charges) || BOUNDARY.contains(&f.name.as_str()) {
        true
    } else {
        let callers: Vec<usize> = a.graph.callers[fid]
            .iter()
            .copied()
            .filter(|&c| !a.symbols.fns[c].is_test)
            .collect();
        if callers.is_empty() {
            // No non-test caller: either dead code or an entry point —
            // neither establishes a charge, so demand one here. A fn
            // reached only from tests is covered (tests run unbudgeted).
            !a.graph.callers[fid].is_empty()
        } else {
            stack.push(fid);
            let all = callers.iter().all(|&c| is_covered(a, c, memo, stack));
            stack.pop();
            all
        }
    };
    memo[fid] = Some(v);
    v
}

/// A caller-chain witness for the diagnostic: walk up caller edges,
/// preferring uncovered callers (the chain that actually breaks coverage),
/// until a root with no further callers is reached.
fn root_caller(a: &Analysis, fid: usize, memo: &mut Vec<Option<bool>>) -> String {
    let mut cur = fid;
    let mut seen = vec![fid];
    loop {
        let candidates: Vec<usize> = a.graph.callers[cur]
            .iter()
            .copied()
            .filter(|c| !a.symbols.fns[*c].is_test && !seen.contains(c))
            .collect();
        let next = candidates
            .iter()
            .copied()
            .find(|&c| !is_covered(a, c, memo, &mut Vec::new()))
            .or_else(|| candidates.first().copied());
        match next {
            Some(c) => {
                seen.push(c);
                cur = c;
            }
            None => return a.symbols.fns[cur].name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::rules::Analysis;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![FileModel::parse(
            PathBuf::from("crates/storage/src/x.rs"),
            src,
        )];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn uncharged_primitive_is_flagged_with_a_root_witness() {
        let d = run(
            "fn spill(file: &File, buf: &[u8]) { file.write_all(buf); }\n\
             fn driver(file: &File, buf: &[u8]) { spill(file, buf); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("`driver`"), "{d:?}");
    }

    #[test]
    fn direct_charge_covers() {
        let d = run("fn spill(lc: &LifecycleCtx, file: &File, buf: &[u8]) {\n\
                 lc.charge_io(1);\n\
                 file.write_all(buf);\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn charging_caller_covers_a_raw_helper() {
        let d = run("fn raw(file: &File, buf: &[u8]) { file.write_all(buf); }\n\
             fn driver(lc: &LifecycleCtx, file: &File, buf: &[u8]) {\n\
                 lc.charge_io(1);\n\
                 raw(file, buf);\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn one_uncharged_caller_breaks_coverage() {
        let d = run(
            "fn raw(file: &File, buf: &[u8]) { file.write_all(buf); }\n\
             fn good(lc: &LifecycleCtx, file: &File, buf: &[u8]) { lc.charge_io(1); raw(file, buf); }\n\
             fn bad(file: &File, buf: &[u8]) { raw(file, buf); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`bad`"), "{d:?}");
    }

    #[test]
    fn boundary_fns_are_exempt() {
        let d = run("impl FileDisk {\n\
                 fn read_page(&self, buf: &mut [u8]) { self.file.read_exact_at(buf, 0); }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_only_callers_cover() {
        let src = "fn raw(file: &File, buf: &[u8]) { file.write_all(buf); }\n\
                   #[cfg(test)]\n\
                   mod t {\n\
                       fn exercise(file: &File, buf: &[u8]) { super::raw(file, buf); }\n\
                   }\n";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_comment_is_honoured() {
        let d = run("fn replay(file: &mut File, buf: &mut Vec<u8>) {\n\
                 // allow(hdsj::budget_charge): replay runs before a budget is armed.\n\
                 file.read_to_end(buf);\n\
             }\n\
             fn open(file: &mut File, buf: &mut Vec<u8>) { replay(file, buf); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let files = vec![FileModel::parse(
            PathBuf::from("crates/obs/src/x.rs"),
            "fn dump(file: &File, buf: &[u8]) { file.write_all(buf); }",
        )];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
